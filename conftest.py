"""Ensure ``src`` is importable when running pytest from the repo root,
even without an installed distribution (the CI image has no ``wheel``,
so editable installs fall back to a ``.pth`` file)."""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
