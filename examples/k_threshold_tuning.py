#!/usr/bin/env python
"""Choosing TCP-TRIM's K threshold (Section III.B, Eq. 22).

Walks through the paper's analysis for a concrete deployment, then
sweeps K on the fluid model to show the utilization/queueing trade-off
the guideline balances: too small a K starves the bottleneck after a
synchronized back-off; a larger K only adds standing queue.

Run:  python examples/k_threshold_tuning.py [--bandwidth-gbps 1]
"""

import argparse

from repro.core import kguide
from repro.core.model import SteadyStateModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bandwidth-gbps", type=float, default=1.0)
    parser.add_argument("--base-rtt-us", type=float, default=1000.0)
    parser.add_argument("--flows", type=int, default=10)
    args = parser.parse_args()

    capacity = args.bandwidth_gbps * 1e9 / (8 * 1460)  # packets/s
    base_rtt = args.base_rtt_us * 1e-6
    n = args.flows

    print(f"Deployment: C = {capacity:,.0f} pkt/s "
          f"({args.bandwidth_gbps:g} Gbps of MSS packets), "
          f"D = {base_rtt * 1e6:.0f} us, N = {n} synchronized trains\n")

    k_star = kguide.k_threshold(capacity, base_rtt)
    n_star = kguide.f_stationary_point(capacity, base_rtt)
    print(f"Eq. 19 worst-case flow count  N* = {n_star:8.1f}")
    print(f"Eq. 21 supremum of F(N)          = {kguide.f_max(capacity, base_rtt) * 1e6:8.1f} us")
    print(f"Eq. 22 guideline threshold    K* = {k_star * 1e6:8.1f} us")
    print(f"Eq. 4  target queue at K*        = "
          f"{kguide.desired_queue_pkts(capacity, k_star, base_rtt):8.1f} pkts")
    print(f"Eq. 5  per-flow steady window    = "
          f"{kguide.steady_window_pkts(capacity, k_star, n):8.1f} pkts\n")

    print(f"{'K/K*':>6s} {'K (us)':>9s} {'min queue':>10s} {'max queue':>10s} "
          f"{'Eq.12 holds':>12s}")
    for mult in (0.5, 0.7, 0.9, 1.0, 1.25, 1.5, 2.0):
        k = max(base_rtt, k_star * mult)
        trace = SteadyStateModel(capacity, base_rtt, n, k).run(300)
        exact = kguide.utilization_holds(capacity, k, base_rtt, n)
        print(f"{mult:6.2f} {k * 1e6:9.1f} {trace.min_queue:10.1f} "
              f"{trace.max_queue:10.1f} {str(exact):>12s}")

    print(
        "\nTwo things to read off the sweep:\n"
        "  * standing queue (added latency) grows linearly with K — the\n"
        "    only cost of over-provisioning the threshold;\n"
        "  * the exact utilization condition (Eq. 12) admits smaller K\n"
        "    than the paper's closed form: Eq. 22 bounds the decrement\n"
        "    sum by N-1, a deliberately conservative sufficient\n"
        "    condition that is safe for EVERY flow count N at once."
    )


if __name__ == "__main__":
    main()
