#!/usr/bin/env python
"""The window-inheritance trap, and how TCP-TRIM defuses it.

Reproduces the paper's Section II.B.1 story interactively: five servers
answer 200 small HTTP responses each over persistent connections, go
idle, then each ships a 2 MB long packet train at t = 0.5 s.

* Under TCP Reno the idle connections inherit windows near 900 segments
  into a path that holds ~118 packets: watch the drop counter and the
  RTO-driven finish time (Fig. 4).
* Under TCP-TRIM the two probe packets re-measure the path and Eq. (1)
  re-inherits a safe window: no drops, done before 0.6 s (Fig. 6).

Run:  python examples/window_inheritance.py [--protocol reno|gip|trim]
"""

import argparse

from repro.experiments.motivation import MotivationParams, run_motivation


def describe(result) -> None:
    print(f"protocol             : {result.protocol}")
    print(f"inherited cwnd @0.5s : {[round(c) for c in result.inherited_cwnd]}")
    print(f"timeouts/connection  : {result.timeouts_per_connection}")
    print(f"dropped packets      : {result.dropped_packets}")
    print(f"peak switch queue    : {result.peak_queue_pkts:.0f} packets")
    print(f"response ACT         : {result.response_act * 1e3:.2f} ms")
    lpts = ", ".join(f"{t * 1e3:.1f}" for t in result.lpt_completion_times)
    print(f"LPT completions (ms) : {lpts}")
    print(f"everything done at   : {result.all_done_time:.3f} s")

    # A compact view of one connection's window trace around the trap.
    trace = result.cwnd_traces[-1]
    print("\ncwnd of connection 5 (sampled):")
    for t_probe in (0.3, 0.499, 0.502, 0.51, 0.55):
        window = trace.window(t_probe - 5e-4, t_probe + 5e-4)
        if len(window):
            print(f"  t={t_probe:5.3f}s  cwnd={window.values[-1]:7.1f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--protocol", default=None,
                        choices=("reno", "gip", "trim"),
                        help="run a single protocol (default: compare all)")
    args = parser.parse_args()
    protocols = [args.protocol] if args.protocol else ["reno", "gip", "trim"]
    for protocol in protocols:
        print("=" * 60)
        describe(run_motivation(MotivationParams.paper(protocol)))
        print()


if __name__ == "__main__":
    main()
