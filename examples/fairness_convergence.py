#!/usr/bin/env python
"""Convergence to fair share as flows come and go (Fig. 10).

Five long transfers towards one receiver start one after another, then
stop one after another.  The example prints an ASCII strip chart of
per-flow throughput so the convergence behaviour is visible in a
terminal: TCP-TRIM's flows settle onto the fair share at every
arrival/departure epoch, while TCP wanders.

Run:  python examples/fairness_convergence.py [--protocol trim]
"""

import argparse

from repro.experiments.fairness import FairnessParams, run_fairness

GLYPHS = "12345"


def strip_chart(result, params) -> None:
    """One row per sample epoch; columns are Mbps scaled to 60 chars."""
    series = result.flow_series
    n_rows = 40
    t0 = min(s.times[0] for s in series if len(s))
    t1 = max(s.times[-1] for s in series if len(s))
    step = (t1 - t0) / n_rows
    peak = params.bottleneck_bps
    print(f"    time   {'throughput (0 .. bottleneck)':<62s} Jain")
    for row in range(n_rows):
        start, end = t0 + row * step, t0 + (row + 1) * step
        line = [" "] * 62
        shares = []
        for idx, s in enumerate(series):
            window = s.window(start, end)
            bps = window.mean() if len(window) else 0.0
            shares.append(bps)
            col = min(61, int(bps / peak * 60))
            line[col] = GLYPHS[idx % len(GLYPHS)]
        total = sum(shares)
        sq = sum(x * x for x in shares)
        jain = (total * total / (len(shares) * sq)) if sq else 1.0
        print(f"  {start:7.2f}s |{''.join(line)}| {jain:4.2f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--protocol", default=None,
                        choices=("reno", "cubic", "dctcp", "trim"))
    parser.add_argument("--paper-scale", action="store_true",
                        help="full 22 s at 1 Gbps (slow in pure Python)")
    args = parser.parse_args()
    protocols = [args.protocol] if args.protocol else ["reno", "trim"]

    for protocol in protocols:
        params = (FairnessParams.paper(protocol) if args.paper_scale
                  else FairnessParams.quick(protocol))
        result = run_fairness(params)
        print("=" * 78)
        print(f"{protocol}: flows start every {params.stagger:.2f}s, "
              f"stop from t={params.stop_start:.2f}s  "
              f"(digits 1-5 mark each flow's share)")
        strip_chart(result, params)
        shares = " ".join(f"{s / 1e6:.1f}" for s in result.plateau_shares)
        print(f"plateau shares (Mbps): [{shares}]  "
              f"Jain index {result.plateau_fairness:.4f}  "
              f"timeouts {result.timeouts}\n")


if __name__ == "__main__":
    main()
