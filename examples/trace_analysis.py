#!/usr/bin/env python
"""Packet-train analysis of live simulated traffic (Fig. 1 / Fig. 2).

Attaches a packet logger to the bottleneck link (the NS2 trace-file
substitute), replays an ON/OFF HTTP workload through a persistent
connection, then re-extracts the packet trains with the Section II.A
gap rule — the same pipeline the paper ran over its 2 TB campus trace.

Run:  python examples/trace_analysis.py [--seconds 5]
"""

import argparse

import numpy as np

from repro.http.apps import ScheduledResponder
from repro.http.packet_train import LPT_THRESHOLD_BYTES
from repro.http.workload import generate_onoff_schedule
from repro.metrics.ascii import sparkline
from repro.metrics.tracing import PacketLogger
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig, TcpSink
from repro.tcp.factory import create_source


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    sim = Simulator()
    star = build_star(sim, 1)
    source = create_source(
        "trim", sim, star.servers[0], star.frontend.node_id,
        flow_id=1,
        config=TcpConfig(min_rto=0.01, initial_rto=0.01),
        capacity_pps=1e9 / (8 * 1460),
    )
    TcpSink(sim, star.frontend, flow_id=1)
    logger = PacketLogger(star.bottleneck, flow_id=1)

    rng = np.random.default_rng(args.seed)
    schedule = generate_onoff_schedule(
        rng, duration=args.seconds, start_time=0.01, drain_rate_bps=1e9
    )
    ScheduledResponder(sim, source, schedule).start()
    sim.run(until=args.seconds + 0.5)

    print(f"wire trace: {len(logger)} packets, "
          f"{logger.total_bytes() / 1e6:.1f} MB over {args.seconds:.0f} s\n")

    # The paper's Fig. 1: the packet-sequence staircase.  A sparkline of
    # per-100ms packet counts shows the ON/OFF bursts.
    bins = np.histogram(
        logger.times, bins=int(args.seconds * 10),
        range=(0, args.seconds),
    )[0]
    print("packets per 100 ms (ON/OFF structure):")
    print(f"  {sparkline(bins, width=70)}\n")

    # Re-extract trains using the smoothed-RTT gap rule.
    gap = source.smooth_rtt.value or 1e-3
    trains = logger.trains(gap=max(gap, 2e-4) * 1.5)
    spts = [t for t in trains if not t.is_long]
    lpts = [t for t in trains if t.is_long]
    print(f"extracted {len(trains)} trains with gap rule "
          f"{max(gap, 2e-4) * 1.5 * 1e6:.0f} us:")
    print(f"  SPTs: {len(spts)} (median {int(np.median([t.n_packets for t in spts]))} "
          f"packets)" if spts else "  SPTs: 0")
    print(f"  LPTs (>= {LPT_THRESHOLD_BYTES // 1024} KB): {len(lpts)}")
    sizes = np.array([t.total_bytes for t in trains])
    for kb in (4, 64, 128):
        print(f"  P[train <= {kb:3d} KB] = {np.mean(sizes <= kb * 1024):.2f}")
    print("\nCompare with the Fig. 2 anchors: <=4 KB ~0.20, <=128 KB ~0.90.")
    print(f"sender stats: {source.probes_completed} probes, "
          f"{source.stats.timeouts} timeouts, "
          f"{source.stats.retransmits} retransmissions.")


if __name__ == "__main__":
    main()
