#!/usr/bin/env python
"""Partition/aggregation: a web-search response fan-in (incast).

Models the paper's motivating application: a front-end distributes a
user query to many workers (Partition) whose answers burst back at
nearly the same instant (Aggregation).  Long-lived background transfers
keep the shared buffer occupied, so the synchronized burst is exactly
the Fig. 5 / Fig. 7 concurrency impairment.

The metric a search operator cares about is the *slowest* worker — the
query is only answered when the last fragment arrives.

Run:  python examples/web_search_aggregation.py [--workers 12]
"""

import argparse

from repro.experiments.concurrency import ConcurrencyParams, run_concurrency


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=12,
                        help="number of aggregation workers (default 12)")
    parser.add_argument("--background", type=int, default=2,
                        help="long-lived background flows (default 2)")
    args = parser.parse_args()

    print(f"{args.workers} workers burst 10-packet fragments at one "
          f"front-end past {args.background} background transfer(s).\n")
    print(f"{'protocol':10s} {'mean (ms)':>10s} {'worst (ms)':>11s} "
          f"{'timeouts':>9s} {'drops':>6s}")
    for protocol in ("reno", "dctcp", "trim"):
        params = ConcurrencyParams.paper(
            protocol, n_lpts=args.background, deadline=4.0
        )
        case = run_concurrency(params, n_spts=args.workers)
        print(f"{protocol:10s} {case.act * 1e3:10.2f} {case.max_ct * 1e3:11.2f} "
              f"{case.spt_timeouts:9d} {case.dropped_packets:6d}")

    print("\nThe query latency is the 'worst' column: one RTO-struck "
          "worker holds the whole answer hostage — the paper's Fig. 5. "
          "TCP-TRIM's delay control leaves buffer headroom, so the burst "
          "is absorbed (Fig. 7).")


if __name__ == "__main__":
    main()
