#!/usr/bin/env python
"""Quickstart: one TCP-TRIM transfer through a many-to-one switch.

Builds the paper's default star (1 Gbps links, 50 µs latency, 100-packet
drop-tail buffer), opens one connection per protocol, pushes a 256 KB
HTTP response through each, and prints completion time, retransmissions,
and timeouts.

Run:  python examples/quickstart.py
"""

from repro import Simulator, TcpConfig, build_star, make_connection
from repro.experiments.scenarios import packets_per_second, path_base_rtt

BANDWIDTH = 1e9
DELAY = 50e-6
RESPONSE_BYTES = 256 * 1024


def run_one(protocol: str, contended: bool) -> None:
    sim = Simulator()
    star = build_star(sim, n_servers=3, bandwidth_bps=BANDWIDTH, delay_s=DELAY,
                      ecn_threshold_pkts=17)
    trim_kwargs = dict(
        capacity_pps=packets_per_second(BANDWIDTH),
        base_rtt=path_base_rtt([(DELAY, BANDWIDTH)] * 2),
    )
    config = TcpConfig(min_rto=0.01, initial_rto=0.01,
                       ecn_capable=protocol in ("dctcp", "l2dct"))
    if contended:
        # Two long-lived transfers of the same protocol occupy the
        # bottleneck before the measured response is sent.
        for i, server in enumerate(star.servers[1:], start=2):
            bg, _ = make_connection(
                protocol, sim, server, star.frontend, flow_id=i,
                config=TcpConfig(min_rto=0.01, initial_rto=0.01,
                                 initial_ssthresh=64,
                                 ecn_capable=config.ecn_capable),
                **(trim_kwargs if protocol == "trim" else {}),
            )
            bg.send_message(10_000_000)
    source, sink = make_connection(
        protocol, sim, star.servers[0], star.frontend, flow_id=1,
        config=config, **(trim_kwargs if protocol == "trim" else {}),
    )
    sim.run(until=0.05)  # let the background flows reach steady state
    message = source.send_bytes(RESPONSE_BYTES)
    sim.run(until=2.0)
    print(
        f"{protocol:6s}  completed in {message.completion_time * 1e3:7.3f} ms"
        f"  retransmits={source.stats.retransmits}"
        f"  timeouts={source.stats.timeouts}"
        f"  delivered={sink.delivered_bytes // 1024} KiB"
    )


def main() -> None:
    protocols = ("reno", "cubic", "dctcp", "l2dct", "gip", "trim")
    print(f"One {RESPONSE_BYTES // 1024} KB response on an idle "
          f"{BANDWIDTH / 1e9:.0f} Gbps star (protocols agree when "
          f"nothing contends):\n")
    for protocol in protocols:
        run_one(protocol, contended=False)
    print("\nThe same response behind two long-lived transfers "
          "(congestion control now matters):\n")
    for protocol in protocols:
        run_one(protocol, contended=True)
    print("\nEach protocol is a drop-in TcpSource; see the other examples "
          "for the paper's full scenarios.")


if __name__ == "__main__":
    main()
