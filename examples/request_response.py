#!/usr/bin/env python
"""A full request/response HTTP session over one persistent connection.

Uses :class:`repro.http.HttpSession`: the front-end issues requests, the
server answers once each request arrives, and the ON/OFF pattern — the
root of the paper's window-inheritance problem — emerges from request
spacing instead of being scripted.  A background transfer contends for
the bottleneck so congestion control matters.

Run:  python examples/request_response.py [--protocol trim]
"""

import argparse

import numpy as np

from repro.experiments.scenarios import packets_per_second, warm_config
from repro.http.apps import HttpSession, LongTrainSender
from repro.metrics.ascii import cdf_table
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig
from repro.tcp.factory import create_source, default_config
from repro.tcp.base import TcpSink


def run_session(protocol: str, n_requests: int, seed: int) -> list[float]:
    sim = Simulator()
    star = build_star(sim, 2, ecn_threshold_pkts=17)
    rng = np.random.default_rng(seed)

    # Background long transfer from the second server, running the same
    # protocol (the paper evaluates homogeneous deployments; a TRIM flow
    # sharing a drop-tail queue with loss-based TCP would be starved —
    # the classic delay-based coexistence caveat).
    bg_kwargs = {}
    if protocol == "trim":
        bg_kwargs["capacity_pps"] = packets_per_second(1e9)
    bg_config = warm_config(default_config(protocol, min_rto=0.01, initial_rto=0.01))
    bg = create_source(
        protocol, sim, star.servers[1], star.frontend.node_id,
        flow_id=9, config=bg_config, **bg_kwargs,
    )
    TcpSink(sim, star.frontend, flow_id=9)
    LongTrainSender(sim, bg, 0.0).start()

    kwargs = {}
    if protocol == "trim":
        kwargs["capacity_pps"] = packets_per_second(1e9)
    session = HttpSession(
        sim, star.frontend, star.servers[0], protocol,
        request_flow_id=1, response_flow_id=2,
        config=default_config(protocol, min_rto=0.01, initial_rto=0.01),
        service_time=200e-6,
        **kwargs,
    )

    # A think-time loop: the next request goes out a few ms after the
    # previous response — larger than the RTT, so OFF periods exist.
    def issue(_exchange=None):
        if len(session.exchanges) >= n_requests:
            return
        size = int(rng.uniform(8_000, 120_000))
        sim.schedule(
            float(rng.exponential(3e-3)),
            lambda: session.request(size, on_complete=issue),
        )

    issue()
    sim.run(until=20.0)
    return session.completion_times()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--protocol", default=None)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    protocols = [args.protocol] if args.protocol else ["reno", "trim"]

    for protocol in protocols:
        times = run_session(protocol, args.requests, args.seed)
        print(f"{protocol}: {len(times)} exchanges completed")
        for line in cdf_table(times):
            print(f"  {line}")
        print()


if __name__ == "__main__":
    main()
