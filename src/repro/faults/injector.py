"""Deterministic fault injection: compiling a plan onto the timeline.

The :class:`FaultInjector` resolves a :class:`~repro.faults.plan.FaultPlan`
against a built :class:`~repro.net.topology.Network`, attaches a seeded
:class:`LinkFaultState` to every targeted link, and schedules one kernel
event per ``(fault event, matched link)`` pair.  All stochastic
decisions — which deliveries a loss burst eats, how much jitter each
packet gets — are drawn from per-link generators derived from the
injector seed and the link *name*, so the same ``(seed, plan, topology)``
triple produces a byte-identical fault schedule and packet trace no
matter what else runs in the process.

Injected impairments are accounted separately from congestion: a queue
overflowing is the network's fault, a :class:`LossBurst` is ours, and
the metrics layer (:mod:`repro.metrics.faults`) reports the two side by
side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import TYPE_CHECKING, Callable, Optional

from repro.faults.plan import (
    BackgroundSurge,
    BufferResize,
    Corrupt,
    DelayJitter,
    FaultEvent,
    FaultPlan,
    LinkDown,
    LinkUp,
    LossBurst,
)
from repro.sim.randomness import derive_seed, seeded_rng

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.net.link import Link
    from repro.net.packet import Packet
    from repro.net.topology import Network
    from repro.sim.kernel import Simulator

__all__ = ["FaultInjector", "FaultStats", "LinkFaultState", "SurgeFactory"]

#: experiments hand the injector a factory for background-surge flows:
#: called once per flow with a running surge index, it starts the flow
#: and returns a stopper callable (or None for flows that need no stop).
SurgeFactory = Callable[[int], Optional[Callable[[], None]]]


@dataclass(slots=True)
class FaultStats:
    """What the injector did to one link (or, summed, to the run)."""

    injected_drops: int = 0  # LossBurst casualties
    corrupted: int = 0  # Corrupt casualties (dropped at checksum)
    delayed: int = 0  # deliveries given DelayJitter extra delay
    down_drops: int = 0  # deliveries lost to a LinkDown outage
    evictions: int = 0  # resident packets evicted by BufferResize
    outages: int = 0  # LinkDown events applied
    surge_flows: int = 0  # background flows started

    def __add__(self, other: "FaultStats") -> "FaultStats":
        return FaultStats(
            self.injected_drops + other.injected_drops,
            self.corrupted + other.corrupted,
            self.delayed + other.delayed,
            self.down_drops + other.down_drops,
            self.evictions + other.evictions,
            self.outages + other.outages,
            self.surge_flows + other.surge_flows,
        )

    @property
    def total_losses(self) -> int:
        """Packets the injector destroyed (drops + corruption + outages)."""
        return self.injected_drops + self.corrupted + self.down_drops


class LinkFaultState:
    """Per-link impairment windows, counters, and the seeded stream.

    Attached to a :class:`~repro.net.link.Link` by the injector; the
    link consults :meth:`filter_delivery` on every delivery.  Windows
    are absolute end times; a new burst of the same type replaces the
    previous window (bursts do not stack).
    """

    __slots__ = (
        "rng",
        "stats",
        "loss_rate",
        "loss_until",
        "corrupt_rate",
        "corrupt_until",
        "jitter_mean",
        "jitter_until",
    )

    def __init__(self, rng: "np.random.Generator") -> None:
        self.rng = rng
        self.stats = FaultStats()
        self.loss_rate = 0.0
        self.loss_until = -math.inf
        self.corrupt_rate = 0.0
        self.corrupt_until = -math.inf
        self.jitter_mean = 0.0
        self.jitter_until = -math.inf

    def filter_delivery(self, pkt: "Packet", now: float) -> float:
        """Fault verdict for one delivery at time ``now``.

        Returns a negative value to destroy the packet (counters already
        updated), ``0.0`` to deliver immediately, or a positive extra
        delay in seconds.  Draws from the seeded stream happen *only*
        inside an active window, so a link with no active fault consumes
        no randomness and perturbs nothing.
        """
        if now < self.loss_until and self.rng.random() < self.loss_rate:
            self.stats.injected_drops += 1
            return -1.0
        if now < self.corrupt_until and self.rng.random() < self.corrupt_rate:
            self.stats.corrupted += 1
            return -1.0
        if now < self.jitter_until:
            extra = float(self.rng.exponential(self.jitter_mean))
            if extra > 0.0:
                self.stats.delayed += 1
                return extra
        return 0.0


class FaultInjector:
    """Arms a :class:`FaultPlan` against a simulator and its network.

    Typical use, inside an experiment's ``run_point``::

        injector = FaultInjector(sim, star.network, plan, seed=seed)
        injector.arm()          # before sim.run(); schedules everything
        sim.run(until=horizon)
        report = injector.total_stats()

    ``surge_factory`` is required only when the plan contains
    :class:`BackgroundSurge` events; it is called once per surge flow.
    """

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        plan: FaultPlan,
        seed: int = 0,
        surge_factory: Optional[SurgeFactory] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.plan = plan
        self.seed = seed
        self.surge_factory = surge_factory
        #: link name -> attached fault state (populated by :meth:`arm`).
        self.states: dict[str, LinkFaultState] = {}
        self._links: dict[str, "Link"] = {}
        self._surge_index = 0
        self._surge_stats = FaultStats()
        self._armed = False

    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Resolve link globs and schedule every fault event.  Idempotence
        is deliberately refused: arming twice would double every fault."""
        if self._armed:
            raise RuntimeError("FaultInjector.arm() called twice")
        self._armed = True
        for event in self.plan:
            if isinstance(event, BackgroundSurge):
                if self.surge_factory is None:
                    raise ValueError(
                        "plan contains BackgroundSurge events but no "
                        "surge_factory was provided"
                    )
                self.sim.schedule_at(event.time, self._start_surge, event)
                continue
            links = self._match(event.link)
            if not links:
                names = ", ".join(
                    sorted(link.name for link in self.network.links)
                ) or "<none>"
                raise ValueError(
                    f"fault event {event!r} matches no link; links: {names}"
                )
            for link in links:
                self._state_for(link)  # attach before anything fires
                self.sim.schedule_at(event.time, self._apply, event, link)
        return self

    def total_stats(self) -> FaultStats:
        """Injector-wide counters (all links plus surge bookkeeping)."""
        total = self._surge_stats
        for state in self.states.values():
            total = total + state.stats
        return total

    # ------------------------------------------------------------------
    def _match(self, glob: str) -> "list[Link]":
        return [link for link in self.network.links if fnmatch(link.name, glob)]

    def _state_for(self, link: "Link") -> LinkFaultState:
        state = self.states.get(link.name)
        if state is None:
            state = LinkFaultState(
                seeded_rng(derive_seed(self.seed, f"faults/{link.name}"))
            )
            self.states[link.name] = state
            self._links[link.name] = link
            link.attach_fault_state(state)
        return state

    def _apply(self, event: FaultEvent, link: "Link") -> None:
        state = self.states[link.name]
        now = self.sim.now
        if isinstance(event, LinkDown):
            state.stats.outages += 1
            link.set_down()
            self.sim.notify_fault(f"link_down {link.name}")
        elif isinstance(event, LinkUp):
            link.set_up()
            self.sim.notify_fault(f"link_up {link.name}")
        elif isinstance(event, LossBurst):
            state.loss_rate = event.rate
            state.loss_until = now + event.duration
            self.sim.notify_fault(
                f"loss_burst {link.name} rate={event.rate} for {event.duration}s"
            )
        elif isinstance(event, Corrupt):
            state.corrupt_rate = event.rate
            state.corrupt_until = now + event.duration
            self.sim.notify_fault(
                f"corrupt {link.name} rate={event.rate} for {event.duration}s"
            )
        elif isinstance(event, DelayJitter):
            state.jitter_mean = event.mean_s
            state.jitter_until = now + event.duration
            self.sim.notify_fault(
                f"delay_jitter {link.name} mean={event.mean_s}s for {event.duration}s"
            )
        elif isinstance(event, BufferResize):
            state.stats.evictions += link.queue.resize(event.pkts)
            self.sim.notify_fault(f"buffer_resize {link.name} to {event.pkts} pkts")
        else:  # pragma: no cover - plan validation forbids this
            raise TypeError(f"unhandled fault event {event!r}")

    def _start_surge(self, event: BackgroundSurge) -> None:
        assert self.surge_factory is not None
        for _ in range(event.flows):
            stopper = self.surge_factory(self._surge_index)
            self._surge_index += 1
            self._surge_stats.surge_flows += 1
            if stopper is not None and math.isfinite(event.duration):
                self.sim.schedule(event.duration, stopper)
        self.sim.notify_fault(f"background_surge {event.flows} flows")
