"""Deterministic, schedule-driven fault injection.

The subsystem splits into plans-as-data and their execution:

* :mod:`repro.faults.plan` — typed :class:`FaultEvent` records
  (:class:`LinkDown`/:class:`LinkUp`, :class:`LossBurst`,
  :class:`Corrupt`, :class:`DelayJitter`, :class:`BufferResize`,
  :class:`BackgroundSurge`) collected into an immutable, JSON-round-
  tripping :class:`FaultPlan`;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that
  compiles a plan onto a simulator's timeline against a built topology,
  with per-link seeded randomness and per-fault accounting
  (:class:`FaultStats`).

Never mutate link state or queue capacities directly to model failures —
simlint's SIM008 flags that; express the failure as a plan event so it
is seeded, scheduled, and counted.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultStats,
    LinkFaultState,
    SurgeFactory,
)
from repro.faults.plan import (
    BackgroundSurge,
    BufferResize,
    Corrupt,
    DelayJitter,
    FaultEvent,
    FaultPlan,
    LinkDown,
    LinkUp,
    LossBurst,
)

__all__ = [
    "BackgroundSurge",
    "BufferResize",
    "Corrupt",
    "DelayJitter",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "LinkDown",
    "LinkFaultState",
    "LinkUp",
    "LossBurst",
    "SurgeFactory",
]
