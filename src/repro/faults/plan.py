"""Fault plans: typed, schedulable fault events as plain data.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records —
link outages, loss/corruption bursts, delay jitter windows, buffer
resizes, and background-traffic surges — that the
:class:`~repro.faults.injector.FaultInjector` compiles onto a
simulator's timeline.  Plans are *data*: picklable dataclasses with a
canonical JSON form, so they cross the sweep-worker process boundary,
participate in the result-cache key, and can be committed next to the
experiment that uses them.

Every event targets links by an ``fnmatch`` glob over ``Link.name``
(``"sw->frontend"``, ``"server*->sw"``, or ``"*"``), resolved against
the experiment's topology when the injector is armed.  All randomness a
plan implies (which packet a 30% loss burst hits, how much jitter a
delivery gets) is drawn from seeded per-link streams inside the
injector — the plan itself is fully deterministic.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

__all__ = [
    "BackgroundSurge",
    "BufferResize",
    "Corrupt",
    "DelayJitter",
    "FaultEvent",
    "FaultPlan",
    "LinkDown",
    "LinkUp",
    "LossBurst",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base record: something happens at ``time`` to links matching ``link``."""

    time: float
    link: str = "*"

    def validate(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise ValueError(f"{type(self).__name__}: time must be >= 0 and finite")
        if not self.link:
            raise ValueError(f"{type(self).__name__}: link glob cannot be empty")


@dataclass(frozen=True)
class LinkDown(FaultEvent):
    """Take the matched links down: transmission pauses, in-flight and
    newly transmitted packets are lost until the next :class:`LinkUp`."""


@dataclass(frozen=True)
class LinkUp(FaultEvent):
    """Bring the matched links back up and resume draining their queues."""


@dataclass(frozen=True)
class LossBurst(FaultEvent):
    """Drop each delivery with probability ``rate`` for ``duration`` seconds."""

    rate: float = 0.1
    duration: float = 0.01

    def validate(self) -> None:
        super().validate()
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("LossBurst: rate must be in (0, 1]")
        if self.duration <= 0:
            raise ValueError("LossBurst: duration must be positive")


@dataclass(frozen=True)
class Corrupt(FaultEvent):
    """Corrupt each delivery with probability ``rate`` for ``duration``
    seconds.  A corrupted packet fails its checksum at the receiver and
    is discarded — indistinguishable from loss to the transport, but
    counted separately by the injector."""

    rate: float = 0.01
    duration: float = 0.01

    def validate(self) -> None:
        super().validate()
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("Corrupt: rate must be in (0, 1]")
        if self.duration <= 0:
            raise ValueError("Corrupt: duration must be positive")


@dataclass(frozen=True)
class DelayJitter(FaultEvent):
    """Add exponentially distributed extra delay (mean ``mean_s``) to
    each delivery for ``duration`` seconds.  Jittered packets may
    reorder — exactly the stress the transport's SACK/dup-ACK machinery
    exists to absorb."""

    mean_s: float = 0.001
    duration: float = 0.01

    def validate(self) -> None:
        super().validate()
        if self.mean_s <= 0:
            raise ValueError("DelayJitter: mean_s must be positive")
        if self.duration <= 0:
            raise ValueError("DelayJitter: duration must be positive")


@dataclass(frozen=True)
class BufferResize(FaultEvent):
    """Resize the matched links' egress queues to ``pkts`` packets.
    Shrinking below the resident backlog evicts the newest packets
    (counted as ``evicted``, distinct from congestion drops)."""

    pkts: int = 8

    def validate(self) -> None:
        super().validate()
        if self.pkts < 1:
            raise ValueError("BufferResize: pkts must be >= 1")


@dataclass(frozen=True)
class BackgroundSurge(FaultEvent):
    """Start ``flows`` background traffic flows at ``time`` and stop
    them ``duration`` seconds later (never, when infinite).  The
    injector delegates flow construction to the experiment's
    ``surge_factory`` — the plan only says *when* and *how many*."""

    flows: int = 1
    duration: float = math.inf

    def validate(self) -> None:
        super().validate()
        if self.flows < 1:
            raise ValueError("BackgroundSurge: flows must be >= 1")
        if self.duration <= 0:
            raise ValueError("BackgroundSurge: duration must be positive")


#: JSON ``kind`` tag <-> event class, in a stable order.
EVENT_KINDS: dict[str, type[FaultEvent]] = {
    "link_down": LinkDown,
    "link_up": LinkUp,
    "loss_burst": LossBurst,
    "corrupt": Corrupt,
    "delay_jitter": DelayJitter,
    "buffer_resize": BufferResize,
    "background_surge": BackgroundSurge,
}
_KIND_BY_TYPE = {cls: kind for kind, cls in EVENT_KINDS.items()}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated schedule of fault events.

    Events are stored sorted by ``(time, insertion order)`` so a plan's
    identity (and therefore the sweep cache key it contributes to) does
    not depend on authoring order.
    """

    events: tuple = ()

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"not a FaultEvent: {event!r}")
            event.validate()
        ordered = sorted(
            enumerate(self.events), key=lambda pair: (pair[1].time, pair[0])
        )
        object.__setattr__(self, "events", tuple(e for _, e in ordered))

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def scaled(self, intensity: float) -> "FaultPlan":
        """The plan with every stochastic magnitude scaled by ``intensity``.

        ``intensity=0`` yields the empty (fault-free) plan; ``1`` the
        plan as written.  Probabilities clamp at 1.  Surge flow counts
        round up so any positive intensity keeps at least one flow.
        Discrete events (outages, resizes) are kept verbatim for any
        positive intensity — there is no "30% of a link going down".
        """
        if intensity < 0:
            raise ValueError("intensity must be >= 0")
        if intensity == 0:
            return FaultPlan()
        scaled: list[FaultEvent] = []
        for event in self.events:
            if isinstance(event, LossBurst):
                scaled.append(
                    dataclasses.replace(event, rate=min(1.0, event.rate * intensity))
                )
            elif isinstance(event, Corrupt):
                scaled.append(
                    dataclasses.replace(event, rate=min(1.0, event.rate * intensity))
                )
            elif isinstance(event, DelayJitter):
                scaled.append(
                    dataclasses.replace(event, mean_s=event.mean_s * intensity)
                )
            elif isinstance(event, BackgroundSurge):
                scaled.append(
                    dataclasses.replace(
                        event, flows=max(1, math.ceil(event.flows * intensity))
                    )
                )
            else:
                scaled.append(event)
        return FaultPlan(tuple(scaled))

    # ------------------------------------------------------------------
    # JSON form
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON document (see EXPERIMENTS.md "Fault scenarios")."""
        events = []
        for event in self.events:
            record: dict[str, Any] = {"kind": _KIND_BY_TYPE[type(event)]}
            for field in dataclasses.fields(event):
                value = getattr(event, field.name)
                if isinstance(value, float) and math.isinf(value):
                    continue  # infinite duration: omitted, restored by default
                record[field.name] = value
            events.append(record)
        return json.dumps({"events": events}, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        document = json.loads(text)
        raw_events: Sequence[Any]
        if isinstance(document, dict):
            raw_events = document.get("events", ())
        elif isinstance(document, list):  # a bare event list is accepted
            raw_events = document
        else:
            raise ValueError("fault plan JSON must be an object or a list")
        events = []
        for record in raw_events:
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(f"fault event needs a 'kind': {record!r}")
            kind = record["kind"]
            event_cls = EVENT_KINDS.get(kind)
            if event_cls is None:
                known = ", ".join(sorted(EVENT_KINDS))
                raise ValueError(f"unknown fault kind {kind!r}; known: {known}")
            field_names = {f.name for f in dataclasses.fields(event_cls)}
            kwargs = {k: v for k, v in record.items() if k != "kind"}
            unknown = set(kwargs) - field_names
            if unknown:
                raise ValueError(
                    f"{kind}: unknown field(s) {sorted(unknown)}; "
                    f"accepts {sorted(field_names)}"
                )
            events.append(event_cls(**kwargs))
        return cls(tuple(events))

    @classmethod
    def load(cls, path: "str | Path") -> "FaultPlan":
        """Read a plan from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def dump(self, path: "str | Path") -> Path:
        """Write the canonical JSON form; returns the path written."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def of(cls, events: Iterable[FaultEvent]) -> "FaultPlan":
        """Build a plan from any iterable of events."""
        return cls(tuple(events))
