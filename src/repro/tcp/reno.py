"""TCP Reno — the paper's "legacy TCP" baseline.

All Reno mechanics live in :class:`repro.tcp.base.TcpSource`; this class
exists so experiments can name the protocol explicitly and so the
factory has a concrete type per protocol.
"""

from __future__ import annotations

from repro.tcp.base import TcpSource

__all__ = ["RenoSource"]


class RenoSource(TcpSource):
    """Plain TCP Reno sender (see :class:`~repro.tcp.base.TcpSource`)."""

    protocol_name = "reno"
