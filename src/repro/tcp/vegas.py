"""TCP Vegas (Brakmo & Peterson, SIGCOMM 1994) — related work [21].

The original delay-based congestion controller: once per RTT the sender
compares the expected rate ``cwnd/BaseRTT`` with the actual rate
``cwnd/RTT`` and holds the difference (in packets buffered at the
bottleneck) between ``ALPHA`` and ``BETA`` by ±1 adjustments; slow
start doubles every *other* RTT and ends when the difference exceeds
``GAMMA``.

Vegas is included as an ablation baseline: it shares TCP-TRIM's
delay-based philosophy but has no inter-train probing, so it inherits
stale windows across HTTP OFF periods exactly like Reno — isolating the
probe mechanism's contribution.
"""

from __future__ import annotations

from typing import Any

from repro.net.packet import Packet
from repro.tcp.base import TcpSource

__all__ = ["VegasSource"]


class VegasSource(TcpSource):
    """TCP Vegas sender."""

    protocol_name = "vegas"

    ALPHA = 1.0  # packets queued: lower bound
    BETA = 3.0  # packets queued: upper bound
    GAMMA = 1.0  # slow-start exit threshold

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.base_rtt: float = float("inf")
        self._epoch_end: int = 0
        self._epoch_min_rtt: float = float("inf")
        self._ss_grow_this_epoch = True

    # ------------------------------------------------------------------
    def _on_rtt_sample(self, rtt: float, pkt: Packet) -> None:
        self.base_rtt = min(self.base_rtt, rtt)
        self._epoch_min_rtt = min(self._epoch_min_rtt, rtt)

    def _increase_window(self, newly_acked: int, pkt: Packet) -> None:
        """All growth happens at epoch (once-per-RTT) boundaries."""
        if pkt.ack < self._epoch_end or self._epoch_min_rtt == float("inf"):
            return
        rtt = self._epoch_min_rtt
        diff_pkts = self.cwnd * (1.0 - self.base_rtt / rtt)
        if self.cwnd < self.ssthresh:
            if diff_pkts > self.GAMMA:
                # Queue build-up detected: leave slow start.
                self.ssthresh = max(self.config.min_cwnd, self.cwnd)
                self.cwnd = max(self.config.min_cwnd, self.cwnd - 1.0)
            elif self._ss_grow_this_epoch:
                self.cwnd *= 2.0  # double every other RTT
            self._ss_grow_this_epoch = not self._ss_grow_this_epoch
        else:
            if diff_pkts < self.ALPHA:
                self.cwnd += 1.0
            elif diff_pkts > self.BETA:
                self.cwnd = max(self.config.min_cwnd, self.cwnd - 1.0)
        self._epoch_end = self.t_seqno
        self._epoch_min_rtt = float("inf")

    def _after_timeout(self) -> None:
        self._epoch_end = self.t_seqno
        self._epoch_min_rtt = float("inf")

    @property
    def diff_packets(self) -> float:
        """Current Vegas backlog estimate (diagnostics)."""
        if self.base_rtt == float("inf") or self._epoch_min_rtt == float("inf"):
            return 0.0
        return self.cwnd * (1.0 - self.base_rtt / self._epoch_min_rtt)
