"""Protocol registry: build a sender by name.

Experiments select protocols with strings (``"reno"``, ``"trim"``, ...)
so sweeps over protocols are data, not code.  TCP-TRIM itself lives in
:mod:`repro.core.trim`; it is registered here lazily to avoid a circular
import between the substrate and the contribution.
"""

from __future__ import annotations

from typing import Any, Optional, Type

from repro.net.node import Host
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig, TcpSink, TcpSource
from repro.tcp.cubic import CubicSource
from repro.tcp.d2tcp import D2tcpSource
from repro.tcp.dctcp import DctcpSource
from repro.tcp.gip import GipSource
from repro.tcp.l2dct import L2dctSource
from repro.tcp.reno import RenoSource
from repro.tcp.timely import TimelySource
from repro.tcp.tinybuffer import TinyBufferSource
from repro.tcp.tracks import TracksSource
from repro.tcp.vegas import VegasSource

__all__ = [
    "ECN_PROTOCOLS",
    "PROTOCOLS",
    "create_source",
    "make_connection",
    "source_class",
]

# A deliberate module-level registry: it maps names to *classes* (no
# per-simulation state), and its only mutation is the idempotent lazy
# registration of TrimSource below, which breaks the substrate↔core
# import cycle.  # simlint: disable=SIM005
PROTOCOLS: dict[str, Type[TcpSource]] = {
    "reno": RenoSource,
    "cubic": CubicSource,
    "dctcp": DctcpSource,
    "l2dct": L2dctSource,
    "gip": GipSource,
    "vegas": VegasSource,
    "d2tcp": D2tcpSource,
    "timely": TimelySource,
    "tinybuffer": TinyBufferSource,
    "tracks": TracksSource,
}

#: protocols that need the network built with an ECN marking threshold
ECN_PROTOCOLS = frozenset({"dctcp", "l2dct", "d2tcp"})


def _register_trim() -> None:
    if "trim" in PROTOCOLS:
        return
    from repro.core.trim import TrimSource

    PROTOCOLS["trim"] = TrimSource


def source_class(protocol: str) -> Type[TcpSource]:
    """The sender class registered under ``protocol``."""
    _register_trim()
    try:
        return PROTOCOLS[protocol]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise ValueError(f"unknown protocol {protocol!r}; known: {known}") from None


def default_config(protocol: str, **overrides: Any) -> TcpConfig:
    """A TcpConfig suited to ``protocol``.

    ECN protocols get ECT set; CUBIC models Linux and therefore gets
    NewReno-style partial-ACK recovery (a stand-in for SACK recovery —
    plain-Reno multi-loss windows would stall on RTOs that the real
    Linux stack avoids).  Tiny Buffer TCP is paced by definition and
    marks ECT so fairness queues can feed its rate estimator early.
    T-RACKs replaces duplicate-ACK counting with time-based detection:
    the threshold is pushed beyond any window (recovery is entered only
    through the RACK machinery) and partial-ACK repair is kept for
    multi-loss windows.
    """
    if protocol in ECN_PROTOCOLS:
        overrides.setdefault("ecn_capable", True)
    if protocol == "cubic":
        overrides.setdefault("recovery", "newreno")
    if protocol == "tinybuffer":
        overrides.setdefault("pacing", True)
        overrides.setdefault("ecn_capable", True)
        overrides.setdefault("recovery", "newreno")
    if protocol == "tracks":
        overrides.setdefault("dupack_threshold", 1 << 30)
        overrides.setdefault("recovery", "newreno")
    return TcpConfig(**overrides)


def create_source(
    protocol: str,
    sim: Simulator,
    host: Host,
    dst_id: int,
    *,
    flow_id: int = 1,
    config: Optional[TcpConfig] = None,
    **source_kwargs: Any,
) -> TcpSource:
    """Instantiate a sender of the requested protocol on ``host``.

    Signature convention (shared with :func:`make_connection`):
    protocol first, then the simulator and endpoints, then keyword-only
    ``flow_id``/``config`` and protocol extras such as TCP-TRIM's
    ``capacity_pps``/``base_rtt``.
    """
    cls = source_class(protocol)
    if config is None:
        config = default_config(protocol)
    return cls(sim, host, flow_id, dst_id, config=config, **source_kwargs)


def make_connection(
    protocol: str,
    sim: Simulator,
    src_host: Host,
    dst_host: Host,
    *,
    flow_id: int = 1,
    config: Optional[TcpConfig] = None,
    **source_kwargs: Any,
) -> tuple[TcpSource, TcpSink]:
    """Wire a source on ``src_host`` to a fresh sink on ``dst_host``.

    Same signature convention as :func:`create_source`: protocol, then
    sim and hosts, then keyword-only ``flow_id``/``config`` and
    protocol extras (``capacity_pps=``, ``base_rtt=``...).
    """
    source = create_source(
        protocol,
        sim,
        src_host,
        dst_host.node_id,
        flow_id=flow_id,
        config=config,
        **source_kwargs,
    )
    sink = TcpSink(sim, dst_host, flow_id=flow_id)
    return source, sink
