"""TCP CUBIC — the Linux default the paper's testbed compares against.

Implements the window-growth function of RFC 8312: after a loss the
window is cut to ``beta × cwnd`` and subsequently follows
``W(t) = C·(t − K)³ + W_max`` where ``K = ∛(W_max·(1 − beta)/C)``, with
fast convergence.  Slow start below ``ssthresh`` is unchanged.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.packet import Packet
from repro.tcp.base import TcpSource

__all__ = ["CubicSource"]


class CubicSource(TcpSource):
    """CUBIC sender."""

    protocol_name = "cubic"

    CUBIC_C = 0.4
    BETA = 0.7
    FAST_CONVERGENCE = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.w_max: float = 0.0
        self._epoch_start: Optional[float] = None
        self._origin: float = 0.0
        self._k: float = 0.0

    # ------------------------------------------------------------------
    def _halve_window_on_loss(self) -> float:
        """CUBIC multiplicative decrease with fast convergence."""
        if self.FAST_CONVERGENCE and self.cwnd < self.w_max:
            self.w_max = self.cwnd * (2.0 - self.BETA) / 2.0
        else:
            self.w_max = self.cwnd
        self._epoch_start = None
        return max(self.cwnd * self.BETA, self.config.min_cwnd)

    def _after_timeout(self) -> None:
        self.w_max = max(self.w_max, self.cwnd)
        self._epoch_start = None

    def _increase_window(self, newly_acked: int, pkt: Packet) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
            return
        now = self.sim.now
        if self._epoch_start is None:
            self._epoch_start = now
            if self.cwnd < self.w_max:
                self._origin = self.w_max
                self._k = ((self.w_max - self.cwnd) / self.CUBIC_C) ** (1.0 / 3.0)
            else:
                self._origin = self.cwnd
                self._k = 0.0
        # Target one smoothed RTT ahead, per the RFC's pacing guidance.
        t = now - self._epoch_start + (self.rtt.srtt or 0.0)
        target = self._origin + self.CUBIC_C * (t - self._k) ** 3
        if target > self.cwnd:
            self.cwnd += (target - self.cwnd) / self.cwnd
        else:
            self.cwnd += 0.01 / self.cwnd  # minimum probing growth
