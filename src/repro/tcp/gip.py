"""GIP-style conservative restart — the related-work baseline [13].

Zhang et al. (ICNP 2013) restart each transfer unit with congestion
window 2 to minimize incast loss.  The paper argues this underutilizes
the bottleneck when capacity is plentiful; TCP-TRIM's probe mechanism is
its answer.  We implement the restart using the same inter-train gap
detector TCP-TRIM uses (elapsed send gap > smoothed RTT), but the action
is simply ``cwnd ← 2`` with no probing — making this the natural
ablation baseline for the probe mechanism.
"""

from __future__ import annotations

from typing import Any

from repro.net.packet import Packet
from repro.tcp.base import TcpSource
from repro.tcp.rtt import EwmaRtt

__all__ = ["GipSource"]


class GipSource(TcpSource):
    """Restart-at-2 sender."""

    protocol_name = "gip"

    SMOOTH_ALPHA = 0.25

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.smooth_rtt = EwmaRtt(self.SMOOTH_ALPHA)

    def _on_rtt_sample(self, rtt: float, pkt: Packet) -> None:
        self.smooth_rtt.update(rtt)

    def _before_send_new(self) -> bool:
        gap_threshold = self.smooth_rtt.value
        if gap_threshold is None or self.last_send_time is None:
            return True
        if self.sim.now - self.last_send_time > gap_threshold:
            self.cwnd = self.config.min_cwnd
            self.ssthresh = max(self.ssthresh, self.config.initial_ssthresh)
        return True
