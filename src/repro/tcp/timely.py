"""TIMELY (SIGCOMM 2015) — related work [22], RTT-gradient control.

TIMELY adjusts the sending rate from the *gradient* of the RTT rather
than its absolute value: a rising RTT means the queue is building, a
falling RTT means it is draining — reacting before any threshold is
crossed.  The original is rate-based on NIC timestamps; this is the
standard window-based transliteration (window plays rate × RTT):

* RTT below ``t_low``: additive increase (the queue is empty enough);
* RTT above ``t_high``: multiplicative decrease proportional to the
  overshoot (``1 − BETA·(1 − t_high/RTT)``);
* otherwise: the gradient engine — normalized gradient ≤ 0 grows the
  window additively (with HAI after ``HAI_THRESH`` consecutive negative
  gradients), positive gradient decays it by ``1 − BETA·gradient``.

Like Vegas, TIMELY is included as a delay-based ablation: it has no
inter-train probe, so window inheritance across HTTP OFF periods is as
blind as Reno's.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.packet import Packet
from repro.tcp.base import TcpSource
from repro.tcp.rtt import EwmaRtt

__all__ = ["TimelySource"]


class TimelySource(TcpSource):
    """Window-based TIMELY sender."""

    protocol_name = "timely"

    BETA = 0.8
    ADD_STEP = 1.0  # segments per RTT
    EWMA_ALPHA = 0.3  # gradient smoothing
    HAI_THRESH = 5  # consecutive negative gradients before HAI
    HAI_STEP = 5.0
    #: t_low/t_high default to these multiples of the observed min RTT
    T_LOW_FACTOR = 1.1
    T_HIGH_FACTOR = 2.5

    def __init__(
        self,
        *args: Any,
        t_low: Optional[float] = None,
        t_high: Optional[float] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        if t_low is not None and t_high is not None and t_low >= t_high:
            raise ValueError("t_low must be below t_high")
        self._t_low_cfg = t_low
        self._t_high_cfg = t_high
        self.min_rtt: float = float("inf")
        self._prev_rtt: Optional[float] = None
        self._gradient = EwmaRtt(self.EWMA_ALPHA)
        self._neg_gradient_streak = 0
        self._epoch_end = 0
        self._epoch_last_rtt: Optional[float] = None

    @property
    def t_low(self) -> float:
        if self._t_low_cfg is not None:
            return self._t_low_cfg
        return self.T_LOW_FACTOR * self.min_rtt

    @property
    def t_high(self) -> float:
        if self._t_high_cfg is not None:
            return self._t_high_cfg
        return self.T_HIGH_FACTOR * self.min_rtt

    # ------------------------------------------------------------------
    def _on_rtt_sample(self, rtt: float, pkt: Packet) -> None:
        self.min_rtt = min(self.min_rtt, rtt)
        if self._prev_rtt is not None:
            # EwmaRtt requires non-negative samples; shift the delta by
            # min_rtt so it carries sign information around that origin.
            self._gradient.update(max(0.0, rtt - self._prev_rtt + self.min_rtt))
        self._prev_rtt = rtt
        self._epoch_last_rtt = rtt

    def normalized_gradient(self) -> float:
        if self._gradient.value is None or self.min_rtt == float("inf"):
            return 0.0
        return (self._gradient.value - self.min_rtt) / self.min_rtt

    def _increase_window(self, newly_acked: int, pkt: Packet) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0  # slow start until the first delay signal
            return
        if pkt.ack < self._epoch_end or self._epoch_last_rtt is None:
            return
        self._apply_gradient_update(self._epoch_last_rtt)
        self._epoch_end = self.t_seqno

    def _apply_gradient_update(self, rtt: float) -> None:
        if rtt < self.t_low:
            self.cwnd += self.ADD_STEP
            self._neg_gradient_streak = 0
            return
        if rtt > self.t_high:
            self.cwnd = max(
                self.config.min_cwnd,
                self.cwnd * (1.0 - self.BETA * (1.0 - self.t_high / rtt)),
            )
            self._neg_gradient_streak = 0
            return
        gradient = self.normalized_gradient()
        if gradient <= 0:
            self._neg_gradient_streak += 1
            step = (
                self.HAI_STEP
                if self._neg_gradient_streak >= self.HAI_THRESH
                else self.ADD_STEP
            )
            self.cwnd += step
        else:
            self._neg_gradient_streak = 0
            self.cwnd = max(
                self.config.min_cwnd,
                self.cwnd * (1.0 - self.BETA * min(1.0, gradient)),
            )

    def _on_ack_pre_increase(self, newly_acked: int, pkt: Packet) -> bool:
        """Leaving slow start on the first above-t_low RTT: the delay
        signal is TIMELY's congestion indicator."""
        if (
            self.cwnd < self.ssthresh
            and self._epoch_last_rtt is not None
            and self.min_rtt != float("inf")
            and self._epoch_last_rtt > self.t_low
        ):
            self.ssthresh = max(self.cwnd, self.config.min_cwnd)
        return False

    def _after_timeout(self) -> None:
        self._epoch_end = self.t_seqno
        self._neg_gradient_streak = 0
