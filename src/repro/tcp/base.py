"""Segment-level TCP machinery: the sender (:class:`TcpSource`) and the
receiver (:class:`TcpSink`).

The base sender implements TCP Reno as NS2's ``Agent/TCP/Reno`` does:

* sequence numbers count segments, the window is a float number of
  segments;
* slow start (+1 per ACK) below ``ssthresh``, congestion avoidance
  (+1/cwnd per ACK) above — with *no* congestion-window validation, so
  an application-limited connection keeps inflating its window on every
  ACK.  That deliberate fidelity to legacy TCP is what reproduces the
  paper's "window near 900 inherited into the next ON period" pathology;
* fast retransmit on three duplicate ACKs with Reno fast recovery
  (window inflation, deflate-and-exit on the first new ACK) or optional
  NewReno partial-ACK retransmission;
* go-back-N retransmission after an RTO, with exponential backoff and
  Karn's rule.

Protocol variants subclass and override the small hook surface
(`_before_send_new`, `_on_ack_pre_increase`, `_increase_window`,
`_halve_window_on_loss`, `_after_timeout`).  Application data arrives in
*messages* (HTTP responses / packet trains) via :meth:`TcpSource.send_message`;
message completion is detected from cumulative ACKs, which is what the
paper's completion-time metrics measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.node import Host
from repro.net.packet import ACK, DATA, MSS_BYTES, Packet, make_ack
from repro.sim.kernel import Event, Simulator
from repro.tcp.rtt import RttEstimator

__all__ = ["Message", "TcpConfig", "TcpSink", "TcpSource"]

RENO = "reno"
NEWRENO = "newreno"


@dataclass
class TcpConfig:
    """Tunables shared by all protocol variants."""

    mss_bytes: int = MSS_BYTES
    initial_cwnd: float = 2.0
    #: effectively "slow start until first loss", matching the paper's
    #: observed window growth to ~900 segments.
    initial_ssthresh: float = 1e12
    max_cwnd: float = 1e12
    min_rto: float = 0.2
    initial_rto: float = 0.2
    max_rto: float = 60.0
    dupack_threshold: int = 3
    #: the paper sets TCP's minimum window to 2 (Sec. III.C).
    min_cwnd: float = 2.0
    cwnd_after_timeout: float = 2.0
    ecn_capable: bool = False
    recovery: str = RENO  # or NEWRENO
    #: selective acknowledgments: the sender keeps a scoreboard of
    #: receiver-held segments and retransmits one *unsacked* hole per
    #: incoming dupACK during recovery — repairing multi-loss windows in
    #: about one RTT, as Linux SACK recovery does.  Implies NewReno-style
    #: partial-ACK handling (a partial ACK cannot end recovery early).
    sack: bool = False
    #: packet pacing: instead of dumping every window-permitted segment
    #: back-to-back, new segments are spaced ``srtt / cwnd`` apart (the
    #: TIMELY-era rate shaping).  An ablation knob: pacing smears the
    #: inherited-window burst over an RTT but does not shrink it, so it
    #: softens — without fixing — the paper's inheritance problem.
    pacing: bool = False

    def __post_init__(self) -> None:
        if self.recovery not in (RENO, NEWRENO):
            raise ValueError(f"unknown recovery style {self.recovery!r}")
        if self.initial_cwnd < 1:
            raise ValueError("initial cwnd must be >= 1 segment")


@dataclass
class Message:
    """One application message (an HTTP response / packet train)."""

    message_id: int
    start_seq: int
    end_seq: int  # exclusive
    submit_time: float
    finish_time: Optional[float] = None
    on_complete: Optional[Callable[["Message"], None]] = None

    @property
    def n_segments(self) -> int:
        return self.end_seq - self.start_seq

    @property
    def completion_time(self) -> float:
        if self.finish_time is None:
            raise ValueError(f"message {self.message_id} has not completed")
        return self.finish_time - self.submit_time


@dataclass(slots=True)
class SourceStats:
    """Lifetime counters kept by a sender."""

    segments_sent: int = 0
    retransmits: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    acks_received: int = 0


class TcpSource:
    """A TCP sender attached to a host, talking to one sink.

    The application queues data with :meth:`send_message`; the source
    transmits as the congestion window allows and reports completion of
    each message when its last segment is cumulatively ACKed.
    """

    protocol_name = "reno"

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        dst_id: int,
        config: Optional[TcpConfig] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.dst_id = dst_id
        self.config = config or TcpConfig()
        self.name = name or f"{self.protocol_name}-{flow_id}"
        host.attach_agent(flow_id, self)

        cfg = self.config
        self.cwnd: float = cfg.initial_cwnd
        self.ssthresh: float = cfg.initial_ssthresh
        self.t_seqno: int = 0  # next segment to transmit
        self.highest_ack: int = -1  # highest cumulative ACK seen
        self.max_seq_sent: int = -1
        self.app_limit: int = 0  # total segments the app has queued
        self.dupacks: int = 0
        self.in_recovery: bool = False
        self.recover_seq: int = -1
        self.suspended: bool = False  # set by TCP-TRIM while probing
        self.last_send_time: Optional[float] = None
        self.rtt = RttEstimator(
            min_rto=cfg.min_rto, max_rto=cfg.max_rto, initial_rto=cfg.initial_rto
        )
        self.stats = SourceStats()
        self._sacked: set[int] = set()  # SACK scoreboard
        self._recovery_retx: set[int] = set()  # holes already resent
        #: receiver's advertised window from the latest ACK (segments)
        self.rwnd_segments: float = float("inf")
        self.messages: list[Message] = []
        self._pending_messages: list[Message] = []  # completion FIFO
        self._rtx_event: Optional[Event] = None
        self._pace_event: Optional[Event] = None
        self._next_pace_time: float = 0.0
        self._next_message_id = 0
        #: optional experiment hook fired on every RTO expiry
        self.on_timeout: Optional[Callable[["TcpSource"], None]] = None
        self._invariants = getattr(sim, "invariants", None)
        if self._invariants is not None:
            self._invariants.register_flow(self)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def send_message(
        self,
        n_segments: int,
        on_complete: Optional[Callable[[Message], None]] = None,
    ) -> Message:
        """Queue ``n_segments`` MSS-sized segments for transmission."""
        if n_segments < 1:
            raise ValueError("a message needs at least one segment")
        message = Message(
            message_id=self._next_message_id,
            start_seq=self.app_limit,
            end_seq=self.app_limit + n_segments,
            submit_time=self.sim.now,
            on_complete=on_complete,
        )
        self._next_message_id += 1
        self.app_limit += n_segments
        self.messages.append(message)
        self._pending_messages.append(message)
        self._try_send()
        return message

    def send_bytes(
        self,
        n_bytes: int,
        on_complete: Optional[Callable[[Message], None]] = None,
    ) -> Message:
        """Queue a message of ``ceil(n_bytes / mss)`` segments."""
        if n_bytes < 1:
            raise ValueError("a message needs at least one byte")
        segments = max(1, math.ceil(n_bytes / self.config.mss_bytes))
        return self.send_message(segments, on_complete=on_complete)

    def stop(self) -> None:
        """Stop offering new data: truncate the queued stream at the
        current send point.  Outstanding segments still retransmit until
        acknowledged; messages cut short never complete.  Used to model
        long-lived senders being switched off (Fig. 10's staggered
        stops)."""
        self.app_limit = min(self.app_limit, max(self.t_seqno, self.max_seq_sent + 1))
        self._pending_messages = [
            m for m in self._pending_messages if m.end_seq <= self.app_limit
        ]

    @property
    def flight(self) -> int:
        """Segments sent but not yet cumulatively acknowledged."""
        return self.t_seqno - (self.highest_ack + 1)

    @property
    def all_acked(self) -> bool:
        """True when every queued segment has been cumulatively ACKed."""
        return self.highest_ack + 1 >= self.app_limit

    @property
    def timeouts(self) -> int:
        return self.stats.timeouts

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _window_segments(self) -> int:
        """Effective send window: congestion window capped by the
        receiver's advertised window.  The one-segment floor under a
        zero window plays the role of the persist probe — the receiver
        discards what it cannot hold and keeps advertising."""
        window = min(self.cwnd, self.config.max_cwnd)
        if self.rwnd_segments < window:
            window = max(1.0, self.rwnd_segments)
        return int(window)

    def _try_send(self) -> None:
        """Transmit as many new segments as window, data — and when
        pacing is on, the ``srtt/cwnd`` send spacing — allow."""
        # Loop-invariant loads hoisted out of the send loop.  app_limit
        # and highest_ack cannot change mid-loop (no ACK can arrive
        # between our own sends); t_seqno and the window must stay live
        # because the _before_send_new hook mutates them (TCP-TRIM's
        # probe mode, GIP's window restart).
        pacing = self.config.pacing
        app_limit = self.app_limit
        base = self.highest_ack + 1
        while (
            not self.suspended
            and self.t_seqno < app_limit
            and self.t_seqno - base < self._window_segments()
        ):
            if self.t_seqno > self.max_seq_sent and not self._before_send_new():
                break
            if pacing and not self._pacing_permits():
                break
            self._send_segment(self.t_seqno)
            self.t_seqno += 1

    def _pacing_permits(self) -> bool:
        """True when the pacing clock allows a send now; otherwise a
        resume is scheduled and the send loop must stop."""
        srtt = self.rtt.srtt
        if srtt is None:
            return True  # no RTT estimate yet: first flight unpaced
        if self.sim.now + 1e-15 < self._next_pace_time:
            if self._pace_event is None:
                self._pace_event = self.sim.schedule_at(
                    self._next_pace_time, self._on_pace_timer
                )
            return False
        interval = srtt / max(self.cwnd, 1.0)
        self._next_pace_time = max(self._next_pace_time, self.sim.now) + interval
        return True

    def _on_pace_timer(self) -> None:
        self._pace_event = None
        self._try_send()

    def _send_segment(self, seq: int, probe: bool = False) -> None:
        is_retx = seq <= self.max_seq_sent
        pkt = Packet(
            flow_id=self.flow_id,
            src=self.host.node_id,
            dst=self.dst_id,
            kind=DATA,
            seq=seq,
            size_bytes=self.config.mss_bytes,
            ts=self.sim.now,
            is_retransmission=is_retx,
            is_probe=probe,
            ecn_capable=self.config.ecn_capable,
        )
        self.stats.segments_sent += 1
        if is_retx:
            self.stats.retransmits += 1
        self.max_seq_sent = max(self.max_seq_sent, seq)
        self.last_send_time = self.sim.now
        self._on_segment_sent(seq, is_retx, probe)
        if self._invariants is not None:
            self._invariants.on_flow_send(self)
        self.host.send(pkt)
        if self._rtx_event is None:
            self._set_rtx_timer()

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def receive_packet(self, pkt: Packet) -> None:
        if pkt.kind != ACK:
            raise RuntimeError(f"{self.name}: source received non-ACK packet")
        self.stats.acks_received += 1
        self.rwnd_segments = pkt.rwnd
        if self.config.sack:
            self._update_scoreboard(pkt)
        if pkt.ack > self.highest_ack:
            self._handle_new_ack(pkt)
        else:
            self._handle_dupack(pkt)

    def _update_scoreboard(self, pkt: Packet) -> None:
        for start, end in pkt.sack_blocks:
            self._sacked.update(range(start, end))
        if pkt.ack >= self.highest_ack:
            self._sacked = {s for s in self._sacked if s > pkt.ack}

    def _next_hole(self) -> Optional[int]:
        """Lowest segment inferred lost: below the highest SACKed
        segment (RFC 6675's loss inference — data above it has arrived,
        so the hole is not merely reordered), neither SACKed nor already
        resent this recovery episode."""
        if not self._sacked:
            return None
        bound = max(self._sacked)
        seq = self.highest_ack + 1
        while seq < bound:
            if seq not in self._sacked and seq not in self._recovery_retx:
                return seq
            seq += 1
        return None

    def _handle_new_ack(self, pkt: Packet) -> None:
        newly_acked = pkt.ack - self.highest_ack
        self.highest_ack = pkt.ack
        if self.t_seqno < self.highest_ack + 1:
            self.t_seqno = self.highest_ack + 1

        if not pkt.echo_retx:  # Karn's rule
            rtt_sample = self.sim.now - pkt.ts_echo
            self.rtt.sample(rtt_sample)
            self._on_rtt_sample(rtt_sample, pkt)
            tel = self.sim.telemetry
            if tel is not None:
                tel.on_rtt(self.sim.now, self.flow_id, rtt_sample)

        if self.in_recovery:
            self._new_ack_in_recovery(newly_acked, pkt)
        else:
            self.dupacks = 0
            suppress = self._on_ack_pre_increase(newly_acked, pkt)
            if not suppress:
                self._increase_window(newly_acked, pkt)

        self._clamp_cwnd()
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_cwnd(self.sim.now, self.flow_id, self.cwnd, self.ssthresh)
        self._complete_messages()
        if self.flight > 0:
            self._set_rtx_timer()
        else:
            self._cancel_rtx_timer()
        self._try_send()

    def _new_ack_in_recovery(self, newly_acked: int, pkt: Packet) -> None:
        partial_ack_repairs = (
            self.config.recovery == NEWRENO or self.config.sack
        )
        if partial_ack_repairs and pkt.ack < self.recover_seq:
            # Partial ACK: retransmit the next hole, stay in recovery.
            self.cwnd = max(self.config.min_cwnd, self.cwnd - newly_acked + 1)
            hole = self._next_hole() if self.config.sack else self.highest_ack + 1
            if hole is not None:
                self._send_segment(hole)
                self._recovery_retx.add(hole)
            self._set_rtx_timer()
            return
        # Full ACK (or plain Reno): deflate to ssthresh and exit.
        self.in_recovery = False
        self.dupacks = 0
        self._recovery_retx.clear()
        self.cwnd = max(self.config.min_cwnd, self.ssthresh)
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_state(self.sim.now, self.flow_id, "open")

    def _handle_dupack(self, pkt: Packet) -> None:
        if self.flight <= 0:
            return  # stale ACK, nothing outstanding
        self.dupacks += 1
        if self.in_recovery:
            self.cwnd += 1.0  # window inflation per extra dupack
            if self.config.sack:
                # Packet conservation: this ACK's transmission slot goes
                # to the next unsacked hole when one exists.
                hole = self._next_hole()
                if hole is not None:
                    self._send_segment(hole)
                    self._recovery_retx.add(hole)
                    return
            self._try_send()
        elif self.dupacks == self.config.dupack_threshold:
            self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        self.stats.fast_retransmits += 1
        self.in_recovery = True
        self.recover_seq = self.t_seqno - 1
        self._recovery_retx.clear()
        self.ssthresh = self._halve_window_on_loss()
        self.cwnd = self.ssthresh + self.config.dupack_threshold
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_state(self.sim.now, self.flow_id, "recovery")
            tel.on_cwnd(self.sim.now, self.flow_id, self.cwnd, self.ssthresh)
        self._send_segment(self.highest_ack + 1)
        self._recovery_retx.add(self.highest_ack + 1)
        self._set_rtx_timer()

    def _halve_window_on_loss(self) -> float:
        """New ssthresh after a fast-retransmit loss event (Reno: half)."""
        return max(self.flight / 2.0, self.config.min_cwnd)

    # ------------------------------------------------------------------
    # Retransmission timer
    # ------------------------------------------------------------------
    def _set_rtx_timer(self) -> None:
        self._cancel_rtx_timer()
        self._rtx_event = self.sim.schedule(self.rtt.rto, self._on_rtx_timeout)

    def _cancel_rtx_timer(self) -> None:
        if self._rtx_event is not None:
            self._rtx_event.cancel()
            self._rtx_event = None

    def _on_rtx_timeout(self) -> None:
        self._rtx_event = None
        if self.flight <= 0:
            return
        self.stats.timeouts += 1
        self.rtt.backoff()
        self.ssthresh = max(self.flight / 2.0, self.config.min_cwnd)
        self.cwnd = self.config.cwnd_after_timeout
        self.dupacks = 0
        self.in_recovery = False
        self._sacked.clear()  # conservative: forget SACK state on RTO
        self._recovery_retx.clear()
        self.t_seqno = self.highest_ack + 1  # go-back-N from the hole
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_state(self.sim.now, self.flow_id, "timeout")
            tel.on_rto(self.sim.now, self.flow_id, self.rtt.rto, self.cwnd)
            tel.on_cwnd(self.sim.now, self.flow_id, self.cwnd, self.ssthresh)
        self._after_timeout()
        if self.on_timeout is not None:
            self.on_timeout(self)
        self._set_rtx_timer()
        self._try_send()

    # ------------------------------------------------------------------
    # Message accounting
    # ------------------------------------------------------------------
    def _complete_messages(self) -> None:
        while self._pending_messages and (
            self.highest_ack >= self._pending_messages[0].end_seq - 1
        ):
            message = self._pending_messages.pop(0)
            message.finish_time = self.sim.now
            if message.on_complete is not None:
                message.on_complete(message)

    # ------------------------------------------------------------------
    # Hooks for protocol variants
    # ------------------------------------------------------------------
    def _before_send_new(self) -> bool:
        """Called before transmitting a never-sent segment.

        Return False to abort the send loop (TCP-TRIM uses this to
        switch into probe mode).  The base protocol always proceeds.
        """
        return True

    def _on_segment_sent(self, seq: int, is_retx: bool, probe: bool) -> None:
        """Called after every (re)transmission is stamped and counted.

        T-RACKs records per-segment send times here so loss detection
        can compare transmit times instead of counting duplicate ACKs.
        """

    def _on_rtt_sample(self, rtt: float, pkt: Packet) -> None:
        """Called for each valid RTT sample (after the RTO estimator)."""

    def _on_ack_pre_increase(self, newly_acked: int, pkt: Packet) -> bool:
        """Called on each new ACK outside recovery, before the window
        increase.  Return True to suppress the increase (used by DCTCP's
        marked-window cut and TCP-TRIM's delay-based back-off)."""
        return False

    def _increase_window(self, newly_acked: int, pkt: Packet) -> None:
        """Reno ACK-counted growth: slow start then 1/cwnd per ACK."""
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / self.cwnd

    def _after_timeout(self) -> None:
        """Called after RTO state reset, before retransmission."""

    def _clamp_cwnd(self) -> None:
        self.cwnd = min(max(self.cwnd, self.config.min_cwnd), self.config.max_cwnd)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}({self.name}, cwnd={self.cwnd:.1f}, "
            f"seq={self.t_seqno}, ack={self.highest_ack})"
        )


class TcpSink:
    """Receiver: cumulative ACKs with per-packet echo of RTT/ECN/probe.

    By default every data packet is acknowledged immediately (NS2's
    default, and what the paper's RTT-measurement algorithms assume).
    ``delayed_ack=True`` enables RFC 1122-style delayed ACKs: every
    second in-order segment is acknowledged, or a timer fires after
    ``delack_timeout``.  Out-of-order arrivals, duplicates, CE-marked
    packets (DCTCP needs the echo now), and probe packets (TCP-TRIM
    measures their RTT) are always acknowledged immediately.

    **Flow control**: ``receive_buffer_segments`` bounds how much
    undelivered-to-the-application data the sink holds; the application
    drains it at ``drain_rate_pps`` segments/second (None = instantly).
    Every ACK advertises the remaining window; in-order arrivals that
    find the buffer full are discarded (dup-ACKed with rwnd 0) — the
    sender's one-segment floor acts as the persist probe.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        name: str = "",
        delayed_ack: bool = False,
        delack_timeout: float = 1e-3,
        receive_buffer_segments: Optional[int] = None,
        drain_rate_pps: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.name = name or f"sink-{flow_id}"
        host.attach_agent(flow_id, self)
        self.next_expected: int = 0
        self._out_of_order: set[int] = set()
        self.delivered_segments: int = 0  # unique, in-order-or-buffered
        self.duplicate_segments: int = 0
        self.acks_sent: int = 0
        self.delayed_ack = delayed_ack
        self.delack_timeout = delack_timeout
        if receive_buffer_segments is not None and receive_buffer_segments < 1:
            raise ValueError("receive buffer must hold at least 1 segment")
        if drain_rate_pps is not None and drain_rate_pps <= 0:
            raise ValueError("drain rate must be positive")
        self.receive_buffer_segments = receive_buffer_segments
        self.drain_rate_pps = drain_rate_pps
        self.app_read_segments: int = 0  # drained to the application
        self.rwnd_overflow_drops: int = 0
        self._drain_event: Optional[Event] = None
        self._held_pkt: Optional[Packet] = None
        self._delack_event: Optional[Event] = None
        #: optional per-unique-delivery hook (seq, time): goodput monitors
        self.on_deliver: Optional[Callable[[Packet], None]] = None

    def receive_packet(self, pkt: Packet) -> None:
        if pkt.kind != DATA:
            raise RuntimeError(f"{self.name}: sink received non-data packet")
        in_order = False
        if pkt.seq == self.next_expected:
            if self._buffer_full():
                self.rwnd_overflow_drops += 1  # dup-ACK with rwnd 0 below
            else:
                in_order = True
                self.next_expected += 1
                self.delivered_segments += 1
                while self.next_expected in self._out_of_order:
                    self._out_of_order.remove(self.next_expected)
                    self.next_expected += 1
                self._deliver(pkt)
                self._schedule_drain()
        elif pkt.seq > self.next_expected:
            if pkt.seq in self._out_of_order:
                self.duplicate_segments += 1
            elif self._buffer_full():
                self.rwnd_overflow_drops += 1
            else:
                self._out_of_order.add(pkt.seq)
                self.delivered_segments += 1
                self._deliver(pkt)
        else:
            self.duplicate_segments += 1

        must_ack_now = (
            not self.delayed_ack
            or not in_order
            or pkt.ecn_ce
            or pkt.is_probe
            or self._held_pkt is not None  # this is the 2nd unacked segment
        )
        if must_ack_now:
            self._send_ack(pkt)
        else:
            self._held_pkt = pkt
            self._delack_event = self.sim.schedule(
                self.delack_timeout, self._on_delack_timer
            )

    def _send_ack(self, pkt: Packet) -> None:
        self._cancel_delack()
        ack = make_ack(
            pkt, self.next_expected - 1, self.sim.now, self._sack_blocks(),
            rwnd=self._advertised_window(),
        )
        self.acks_sent += 1
        self.host.send(ack)

    def _on_delack_timer(self) -> None:
        self._delack_event = None
        if self._held_pkt is not None:
            pkt, self._held_pkt = self._held_pkt, None
            ack = make_ack(
                pkt, self.next_expected - 1, self.sim.now, self._sack_blocks(),
                rwnd=self._advertised_window(),
            )
            self.acks_sent += 1
            self.host.send(ack)

    # ------------------------------------------------------------------
    # Flow control: receive buffer and application drain
    # ------------------------------------------------------------------
    def _buffered_segments(self) -> int:
        """Segments held for (but not yet read by) the application."""
        return (self.next_expected - self.app_read_segments) + len(
            self._out_of_order
        )

    def _buffer_full(self) -> bool:
        if self.receive_buffer_segments is None:
            return False
        return self._buffered_segments() >= self.receive_buffer_segments

    def _advertised_window(self) -> float:
        if self.receive_buffer_segments is None:
            return float("inf")
        return max(0, self.receive_buffer_segments - self._buffered_segments())

    def _schedule_drain(self) -> None:
        if self.drain_rate_pps is None:
            self.app_read_segments = self.next_expected
            return
        if self._drain_event is None and self.app_read_segments < self.next_expected:
            self._drain_event = self.sim.schedule(
                1.0 / self.drain_rate_pps, self._drain_one
            )

    def _drain_one(self) -> None:
        self._drain_event = None
        if self.app_read_segments < self.next_expected:
            self.app_read_segments += 1
            self._schedule_drain()

    def _sack_blocks(self, max_blocks: int = 3) -> tuple[tuple[int, int], ...]:
        """Contiguous ``(start, end_exclusive)`` runs of buffered data
        above the cumulative ACK — the SACK option (highest runs first,
        at most ``max_blocks``)."""
        if not self._out_of_order:
            return ()
        ordered = sorted(self._out_of_order)
        runs: list[tuple[int, int]] = []
        run_start = prev = ordered[0]
        for seq in ordered[1:]:
            if seq == prev + 1:
                prev = seq
                continue
            runs.append((run_start, prev + 1))
            run_start = prev = seq
        runs.append((run_start, prev + 1))
        return tuple(runs[-max_blocks:][::-1])

    def _cancel_delack(self) -> None:
        self._held_pkt = None
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None

    def _deliver(self, pkt: Packet) -> None:
        if self.on_deliver is not None:
            self.on_deliver(pkt)

    @property
    def delivered_bytes(self) -> int:
        return self.delivered_segments * MSS_BYTES
