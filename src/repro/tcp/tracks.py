"""T-RACKs (arXiv 2102.07477) — time-based loss detection and recovery.

Datacenter incast makes duplicate-ACK counting a poor loss detector:
short flows rarely have three segments in flight behind a hole, so tail
losses sit out a full (minimum) RTO.  T-RACKs — like Linux's RACK-TLP —
replaces the *count* signal with a *time* signal:

* every (re)transmission records its send time (via the
  :meth:`~repro.tcp.base.TcpSource._on_segment_sent` hook);
* every ACK advances a "most recently sent delivered segment" watermark
  from the echoed send timestamp (``pkt.ts_echo`` — Karn-free, because
  the echo carries the timestamp of the copy that actually arrived);
* a hole whose last transmission predates the watermark by more than a
  reorder window (``min_rtt / 4``) is declared lost and retransmitted
  immediately — no duplicate-ACK threshold involved;
* a per-flow tail timer a small multiple of srtt — far below the
  200 ms minimum RTO — catches losses that generate no further ACKs at
  all (the whole tail of a window).

The factory disables duplicate-ACK fast retransmit outright for this
protocol (``dupack_threshold`` is set beyond any window) so recovery is
entered exclusively through time-based detection; the standard RTO
remains the backstop of last resort.  Window reduction reuses the base
fast-recovery machinery: one halving per recovery episode, NewReno
partial-ACK repair for multi-loss windows.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.packet import ACK, Packet
from repro.sim.kernel import Event
from repro.tcp.base import TcpSource

__all__ = ["TracksSource"]


class TracksSource(TcpSource):
    """Sender with RACK-style time-based loss detection."""

    protocol_name = "tracks"

    #: reorder window as a fraction of min RTT (RACK's default quarter).
    REO_WND_FRACTION = 0.25
    #: tail timer: fire this many smoothed RTTs after the last ACK.
    TAIL_TIMER_FACTOR = 2.0
    #: floor of the tail timer, guarding against spurious retransmits
    #: when srtt collapses to microseconds on an idle path.
    TAIL_TIMER_FLOOR = 1e-3

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: latest send time of every not-yet-cumulatively-ACKed segment.
        self._send_time: dict[int, float] = {}
        #: send time of the most recently transmitted delivered segment.
        self._rack_time: float = float("-inf")
        self.min_rtt: float = float("inf")
        self._tail_event: Optional[Event] = None
        self._acks_at_arm = 0
        #: lifetime count of time-detected losses (telemetry/tests).
        self.time_detected_losses = 0

    # ------------------------------------------------------------------
    # Bookkeeping hooks
    # ------------------------------------------------------------------
    def _on_segment_sent(self, seq: int, is_retx: bool, probe: bool) -> None:
        self._send_time[seq] = self.sim.now
        if self._tail_event is None and self.flight > 0:
            self._arm_tail_timer()

    def _on_rtt_sample(self, rtt: float, pkt: Packet) -> None:
        if rtt > 0:
            self.min_rtt = min(self.min_rtt, rtt)

    def reo_wnd(self) -> float:
        """The reordering tolerance before a hole is declared lost."""
        if self.min_rtt == float("inf"):
            return self.TAIL_TIMER_FLOOR
        return self.min_rtt * self.REO_WND_FRACTION

    # ------------------------------------------------------------------
    # ACK path: advance the watermark, then detect expired holes
    # ------------------------------------------------------------------
    def receive_packet(self, pkt: Packet) -> None:
        if pkt.kind == ACK:
            # The echoed timestamp is the send time of the copy that
            # was delivered — exactly RACK's watermark, with Karn's
            # ambiguity resolved by construction.
            if pkt.ts_echo > self._rack_time:
                self._rack_time = pkt.ts_echo
            prev_ack = self.highest_ack
            super().receive_packet(pkt)
            for seq in range(prev_ack + 1, self.highest_ack + 1):
                self._send_time.pop(seq, None)
            self._detect_expired_holes()
            self._arm_tail_timer()
            return
        super().receive_packet(pkt)

    def _detect_expired_holes(self) -> None:
        """Retransmit the first hole whose last transmission predates
        the delivery watermark by more than the reorder window."""
        if self.flight <= 0:
            return
        hole = self.highest_ack + 1
        if hole >= self.t_seqno:
            return
        if self.config.sack and hole in self._sacked:
            return
        sent = self._send_time.get(hole)
        if sent is None:
            return
        if self._rack_time - sent >= self.reo_wnd():
            self._time_based_retransmit(hole)

    def _time_based_retransmit(self, seq: int) -> None:
        """Enter (or continue) recovery and resend ``seq`` now.

        One window reduction per episode: re-detections inside an open
        recovery resend without halving again, mirroring how the base
        machinery treats extra duplicate ACKs.
        """
        if not self.in_recovery:
            self.stats.fast_retransmits += 1
            self.in_recovery = True
            self.recover_seq = self.t_seqno - 1
            self._recovery_retx.clear()
            self.ssthresh = self._halve_window_on_loss()
            self.cwnd = max(self.config.min_cwnd, self.ssthresh)
            tel = self.sim.telemetry
            if tel is not None:
                tel.on_state(self.sim.now, self.flow_id, "recovery")
                tel.on_cwnd(self.sim.now, self.flow_id, self.cwnd, self.ssthresh)
        if seq in self._recovery_retx:
            return
        self.time_detected_losses += 1
        self._send_segment(seq)
        self._recovery_retx.add(seq)
        self._set_rtx_timer()

    # ------------------------------------------------------------------
    # Tail timer: the T-RACKs per-flow timer, far below min RTO
    # ------------------------------------------------------------------
    def _tail_delay(self) -> float:
        srtt = self.rtt.srtt
        base = srtt if srtt is not None else self.config.initial_rto / 2.0
        return max(self.TAIL_TIMER_FLOOR, self.TAIL_TIMER_FACTOR * base)

    def _arm_tail_timer(self) -> None:
        self._cancel_tail_timer()
        if self.flight <= 0:
            return
        self._acks_at_arm = self.stats.acks_received
        self._tail_event = self.sim.schedule(self._tail_delay(), self._on_tail_timer)

    def _cancel_tail_timer(self) -> None:
        if self._tail_event is not None:
            self._tail_event.cancel()
            self._tail_event = None

    def _on_tail_timer(self) -> None:
        self._tail_event = None
        if self.flight <= 0:
            return
        if self.stats.acks_received != self._acks_at_arm:
            # ACKs arrived since arming; they re-armed detection already.
            self._arm_tail_timer()
            return
        # Silent tail: nothing has been delivered for a tail period, so
        # the head-of-line segment is presumed lost.  Retransmitting it
        # re-arms the timer through _on_segment_sent.
        self._time_based_retransmit(self.highest_ack + 1)

    def _after_timeout(self) -> None:
        # The RTO's go-back-N supersedes fine-grained tracking; sends
        # will re-arm the tail timer as they restamp their entries.
        self._cancel_tail_timer()
