"""D²TCP (SIGCOMM 2012) — deadline-aware DCTCP, related work [15].

D²TCP keeps DCTCP's ECN machinery but gamma-corrects the back-off with
a per-flow urgency factor ``d``: the penalty applied to a marked window
is ``p = alpha^d`` and the cut ``cwnd ← cwnd·(1 − p/2)``.  A
far-deadline flow (d < 1) backs off *more* than DCTCP; a near-deadline
flow (d > 1) backs off less, releasing bandwidth from the patient flows
to the urgent ones.  ``d`` is the ratio of the time the flow still
needs (remaining data at the current rate) to the time its deadline
leaves, clamped to [0.5, 2] as in the paper.  Flows without a deadline
behave exactly like DCTCP (d = 1).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.packet import Packet
from repro.tcp.dctcp import DctcpSource

__all__ = ["D2tcpSource"]


class D2tcpSource(DctcpSource):
    """D²TCP sender."""

    protocol_name = "d2tcp"

    D_MIN = 0.5
    D_MAX = 2.0

    def __init__(
        self, *args: Any, deadline: Optional[float] = None, **kwargs: Any
    ) -> None:
        super().__init__(*args, **kwargs)
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (absolute sim time)")
        #: absolute simulation time by which all queued data should be
        #: delivered; None = deadline-less (plain DCTCP behaviour).
        self.deadline = deadline

    def urgency(self) -> float:
        """The deadline-imminence factor d, clamped to [0.5, 2]."""
        if self.deadline is None:
            return 1.0
        remaining_segments = self.app_limit - (self.highest_ack + 1)
        if remaining_segments <= 0:
            return 1.0
        time_left = self.deadline - self.sim.now
        if time_left <= 0:
            return self.D_MAX  # already late: maximum urgency
        srtt = self.rtt.srtt
        if srtt is None or self.cwnd <= 0:
            return 1.0
        # Time needed at the current rate (cwnd segments per RTT).
        time_needed = remaining_segments / self.cwnd * srtt
        return min(self.D_MAX, max(self.D_MIN, time_needed / time_left))

    def _on_ack_pre_increase(self, newly_acked: int, pkt: Packet) -> bool:
        self._acked_in_window += newly_acked
        if pkt.ece:
            self._marked_in_window += newly_acked
        if pkt.ack < self._window_end:
            return False
        fraction = (
            self._marked_in_window / self._acked_in_window
            if self._acked_in_window
            else 0.0
        )
        self.alpha = (1.0 - self.G) * self.alpha + self.G * fraction
        cut = self._marked_in_window > 0
        if cut:
            penalty = self.alpha ** self.urgency()  # the gamma correction
            self.cwnd = max(
                self.config.min_cwnd, self.cwnd * (1.0 - penalty / 2.0)
            )
            self.ssthresh = self.cwnd
        self._window_end = self.t_seqno
        self._acked_in_window = 0
        self._marked_in_window = 0
        return cut
