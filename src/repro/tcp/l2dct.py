"""L2DCT (INFOCOM 2013) — DCTCP plus Least-Attained-Service weighting.

L2DCT keeps DCTCP's ECN machinery but scales congestion-window growth by
a per-flow weight ``w_c`` that decays as the flow transmits more data,
approximating LAS scheduling: short flows ramp quickly, long flows yield.

We model the weight exactly as the L2DCT paper's control law describes
qualitatively: ``w_c`` starts at ``W_MAX`` (2.5) and decreases to
``W_MIN`` (0.125) as the flow's sent bytes approach a large-flow
threshold; congestion avoidance adds ``w_c`` per RTT (i.e. ``w_c/cwnd``
per ACK) and slow start adds ``w_c`` per ACK.  The marked-window
decrease additionally steepens for heavier flows via the same weight,
as in the paper's ``b``-scaled back-off.  This is a documented
approximation (see DESIGN.md): we did not port their exact piecewise
weight table, but the behaviour — short transfers finish faster and
long flows back off harder — matches.
"""

from __future__ import annotations

from repro.net.packet import Packet
from repro.tcp.dctcp import DctcpSource

__all__ = ["L2dctSource"]


class L2dctSource(DctcpSource):
    """L2DCT sender."""

    protocol_name = "l2dct"

    W_MAX = 2.5
    W_MIN = 0.125
    #: bytes after which a flow is treated as "large" (weight floor);
    #: the L2DCT evaluation centres on flows up to ~1 MB.
    LARGE_FLOW_BYTES = 1_000_000

    def _weight(self) -> float:
        sent_bytes = (self.highest_ack + 1) * self.config.mss_bytes
        progress = min(1.0, max(0.0, sent_bytes / self.LARGE_FLOW_BYTES))
        return self.W_MAX - (self.W_MAX - self.W_MIN) * progress

    def _increase_window(self, newly_acked: int, pkt: Packet) -> None:
        w_c = self._weight()
        if self.cwnd < self.ssthresh:
            self.cwnd += min(w_c, 1.0)  # slow start never exceeds Reno's rate
        else:
            self.cwnd += w_c / self.cwnd

    def _on_ack_pre_increase(self, newly_acked: int, pkt: Packet) -> bool:
        """DCTCP window accounting with weight-steepened back-off."""
        self._acked_in_window += newly_acked
        if pkt.ece:
            self._marked_in_window += newly_acked
        if pkt.ack < self._window_end:
            return False
        fraction = (
            self._marked_in_window / self._acked_in_window
            if self._acked_in_window
            else 0.0
        )
        self.alpha = (1.0 - self.G) * self.alpha + self.G * fraction
        cut = self._marked_in_window > 0
        if cut:
            # Heavier flows (small w_c) back off closer to alpha/2 · K,
            # lighter flows more gently; bounded by DCTCP's cut.
            k = 0.5 + 0.5 * (1.0 - self._weight() / self.W_MAX)
            factor = 1.0 - min(0.5, (self.alpha / 2.0) * (2.0 * k))
            self.cwnd = max(self.config.min_cwnd, self.cwnd * factor)
            self.ssthresh = self.cwnd  # the cut ends slow start, as in DCTCP
        self._window_end = self.t_seqno
        self._acked_in_window = 0
        self._marked_in_window = 0
        return cut
