"""Tiny Buffer TCP (arXiv 1909.05392) — paced, low-occupancy control.

The tiny-buffer line of work observes that shallow-buffered commodity
switches (a few packets per port) collapse under loss-based TCP because
slow start and ACK-clocked bursts overshoot the buffer by an entire
bandwidth-delay product.  The remedy is to (a) pace every transmission
so the wire sees at most one packet per ``srtt/cwnd`` interval, and
(b) bound the window near the path's BDP estimated from the delivery
rate, leaving only a few segments of headroom for the switch to absorb.

This transliteration keeps the estimator deliberately simple and fully
deterministic:

* ``min_rtt`` is the running minimum of Karn-valid RTT samples;
* the delivery rate is an EWMA of ``newly_acked / inter_ack_gap``
  (segments per second measured at the ACK clock);
* the target window is ``rate × min_rtt + headroom`` segments, never
  below the configured floor.

Growth is standard slow start / congestion avoidance *clamped to the
target*: once the window reaches the BDP estimate it holds there
instead of inflating (no congestion-window validation pathology — a
tiny-buffer sender never inherits a 900-segment window into the next
ON period).  A loss event returns the window to the BDP target rather
than blindly halving below it: with a paced, low-occupancy window the
loss was the buffer's fault, not the pipe's.

``tcp/factory.py`` turns pacing on by default for this protocol; the
class also forces it in the constructor so a directly-built source is
paced too.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.packet import Packet
from repro.tcp.base import TcpSource
from repro.tcp.rtt import EwmaRtt

__all__ = ["TinyBufferSource"]


class TinyBufferSource(TcpSource):
    """Paced, BDP-bounded sender for tiny switch buffers."""

    protocol_name = "tinybuffer"

    #: segments of slack above the measured BDP: enough to keep the
    #: pipe full across ACK jitter, small enough to fit a tiny buffer.
    HEADROOM_SEGMENTS = 2.0
    #: EWMA gain of the delivery-rate estimator.
    RATE_ALPHA = 0.25

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if not self.config.pacing:
            # Pacing is the mechanism, not an option, for this protocol.
            self.config.pacing = True
        self.min_rtt: float = float("inf")
        #: delivery rate in segments per second, EWMA over ACK arrivals.
        self._rate = EwmaRtt(self.RATE_ALPHA)
        self._last_ack_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Estimators
    # ------------------------------------------------------------------
    def target_cwnd(self) -> Optional[float]:
        """The BDP-plus-headroom window, or None before any estimate."""
        if self._rate.value is None or self.min_rtt == float("inf"):
            return None
        bdp = self._rate.value * self.min_rtt
        return max(self.config.min_cwnd, bdp + self.HEADROOM_SEGMENTS)

    def _on_rtt_sample(self, rtt: float, pkt: Packet) -> None:
        if rtt > 0:
            self.min_rtt = min(self.min_rtt, rtt)

    def _on_ack_pre_increase(self, newly_acked: int, pkt: Packet) -> bool:
        now = self.sim.now
        last = self._last_ack_time
        self._last_ack_time = now
        if last is not None and now > last:
            self._rate.update(newly_acked / (now - last))
        if pkt.ece:
            # Switch-assisted fair-share feedback (FairQueue CE-marks
            # over-share flows): shed one segment and skip the increase
            # — a gentle per-ACK decrease, not a multiplicative cut.
            self.cwnd = max(self.config.min_cwnd, self.cwnd - 1.0)
            return True
        return False

    # ------------------------------------------------------------------
    # Window policy
    # ------------------------------------------------------------------
    def _increase_window(self, newly_acked: int, pkt: Packet) -> None:
        target = self.target_cwnd()
        if target is None:
            # No estimate yet: the first flight behaves like slow start.
            super()._increase_window(newly_acked, pkt)
            return
        if self.cwnd >= target:
            # Hold at the BDP: the clamp doubles as the slow-start exit.
            self.ssthresh = min(self.ssthresh, max(target, self.config.min_cwnd))
            self.cwnd = target
            return
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + 1.0, target)
        else:
            self.cwnd = min(self.cwnd + 1.0 / self.cwnd, target)

    def _halve_window_on_loss(self) -> float:
        half = self.flight / 2.0
        target = self.target_cwnd()
        if target is not None:
            # A paced low-occupancy window that still lost a packet was
            # above what the buffer absorbs; return to the BDP estimate
            # instead of halving below it.
            half = min(half, target)
        return max(half, self.config.min_cwnd)
