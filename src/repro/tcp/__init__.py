"""Transport substrate: TCP senders, sinks, and the protocol registry.

The base machinery (:mod:`repro.tcp.base`) implements NS2-style
segment-level TCP Reno; variants subclass it:

* :class:`~repro.tcp.reno.RenoSource` — the paper's "legacy TCP".
* :class:`~repro.tcp.cubic.CubicSource` — Linux default, testbed baseline.
* :class:`~repro.tcp.dctcp.DctcpSource` — ECN-based comparison.
* :class:`~repro.tcp.l2dct.L2dctSource` — LAS-weighted DCTCP comparison.
* :class:`~repro.tcp.gip.GipSource` — restart-at-2 ablation baseline.
* ``TrimSource`` (in :mod:`repro.core.trim`) — the paper's contribution.
"""

from repro.tcp.base import Message, TcpConfig, TcpSink, TcpSource
from repro.tcp.cubic import CubicSource
from repro.tcp.d2tcp import D2tcpSource
from repro.tcp.dctcp import DctcpSource
from repro.tcp.factory import (
    ECN_PROTOCOLS,
    PROTOCOLS,
    create_source,
    default_config,
    make_connection,
    source_class,
)
from repro.tcp.gip import GipSource
from repro.tcp.l2dct import L2dctSource
from repro.tcp.reno import RenoSource
from repro.tcp.rtt import EwmaRtt, RttEstimator
from repro.tcp.timely import TimelySource
from repro.tcp.tinybuffer import TinyBufferSource
from repro.tcp.tracks import TracksSource
from repro.tcp.vegas import VegasSource

__all__ = [
    "CubicSource",
    "D2tcpSource",
    "DctcpSource",
    "ECN_PROTOCOLS",
    "EwmaRtt",
    "GipSource",
    "L2dctSource",
    "Message",
    "PROTOCOLS",
    "RenoSource",
    "RttEstimator",
    "TcpConfig",
    "TcpSink",
    "TcpSource",
    "TimelySource",
    "TinyBufferSource",
    "TracksSource",
    "VegasSource",
    "create_source",
    "default_config",
    "make_connection",
    "source_class",
]
