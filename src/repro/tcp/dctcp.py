"""DCTCP (SIGCOMM 2010) — the paper's primary ECN-based comparison.

The sender keeps a running estimate ``alpha`` of the fraction of its
packets that were CE-marked, updated once per window with gain ``g``:
``alpha ← (1 − g)·alpha + g·F``.  A window containing any marks is cut
once by ``cwnd ← cwnd·(1 − alpha/2)``.  Marking itself happens in
:class:`repro.net.queues.EcnQueue` (instantaneous threshold), and the
sink echoes CE per packet — the simplified echo the DCTCP paper uses in
its analysis.

Requires the network to be built with ``ecn_threshold_pkts`` so switch
queues actually mark; this mirrors the real deployment constraint the
paper holds against DCTCP (switch ECN support), which TCP-TRIM avoids.
"""

from __future__ import annotations

from typing import Any

from repro.net.packet import Packet
from repro.tcp.base import TcpConfig, TcpSource

__all__ = ["DctcpSource"]


class DctcpSource(TcpSource):
    """DCTCP sender."""

    protocol_name = "dctcp"

    G = 1.0 / 16.0  # alpha estimation gain, per the DCTCP paper

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        config = kwargs.get("config")
        if config is None:
            # ECN capability is mandatory for DCTCP.
            kwargs["config"] = TcpConfig(ecn_capable=True)
        elif not config.ecn_capable:
            raise ValueError("DCTCP requires an ECN-capable TcpConfig")
        super().__init__(*args, **kwargs)
        self.alpha: float = 1.0  # conservative start, per the paper
        self._window_end: int = 0
        self._acked_in_window: int = 0
        self._marked_in_window: int = 0

    def _on_ack_pre_increase(self, newly_acked: int, pkt: Packet) -> bool:
        self._acked_in_window += newly_acked
        if pkt.ece:
            self._marked_in_window += newly_acked
        if pkt.ack < self._window_end:
            return False
        # One window's worth of ACKs has arrived: update alpha, maybe cut.
        fraction = (
            self._marked_in_window / self._acked_in_window
            if self._acked_in_window
            else 0.0
        )
        self.alpha = (1.0 - self.G) * self.alpha + self.G * fraction
        cut = self._marked_in_window > 0
        if cut:
            self.cwnd = max(
                self.config.min_cwnd, self.cwnd * (1.0 - self.alpha / 2.0)
            )
            # Standard DCTCP: the cut ends slow start.
            self.ssthresh = self.cwnd
        self._window_end = self.t_seqno
        self._acked_in_window = 0
        self._marked_in_window = 0
        return cut  # a cut window skips this ACK's increase

    def _after_timeout(self) -> None:
        self._window_end = self.t_seqno
        self._acked_in_window = 0
        self._marked_in_window = 0
