"""RTT estimation and retransmission timeout computation.

Implements the classic Jacobson/Karels estimator with exponential
timer backoff.  Karn's rule (no samples from retransmitted segments) is
enforced by the caller, which knows whether the echoed segment was a
retransmission.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["EwmaRtt", "RttEstimator"]


class EwmaRtt:
    """The paper's smoothed RTT: ``s ← (1 − α)·s + α·sample`` (α = 0.25).

    Used by TCP-TRIM (and the GIP-style baseline) as the inter-train gap
    threshold and the probe deadline; distinct from the RTO estimator.
    """

    __slots__ = ("alpha", "value")

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value: Optional[float] = None

    def update(self, sample: float) -> float:
        if sample < 0:
            raise ValueError(f"negative RTT sample {sample!r}")
        if self.value is None:
            self.value = sample
        else:
            self.value = (1 - self.alpha) * self.value + self.alpha * sample
        return self.value


class RttEstimator:
    """Smoothed RTT, RTT variance, and the derived RTO.

    Parameters follow RFC 6298: gains 1/8 and 1/4, ``K = 4``.  Data
    center deployments shrink ``min_rto`` aggressively (the paper uses
    200 ms, 20 ms, and 1 ms in different experiments), so it is a
    constructor argument.
    """

    __slots__ = (
        "min_rto",
        "max_rto",
        "alpha",
        "beta",
        "k",
        "srtt",
        "rttvar",
        "latest_sample",
        "backoff_factor",
        "_base_rto",
    )

    def __init__(
        self,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        initial_rto: float = 1.0,
        alpha: float = 1.0 / 8.0,
        beta: float = 1.0 / 4.0,
        k: float = 4.0,
    ) -> None:
        if min_rto <= 0 or max_rto < min_rto:
            raise ValueError("require 0 < min_rto <= max_rto")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.latest_sample: Optional[float] = None
        self.backoff_factor: float = 1.0
        self._base_rto = max(initial_rto, min_rto)

    def sample(self, rtt: float) -> None:
        """Incorporate a valid (non-retransmitted-segment) RTT sample."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample {rtt!r}")
        self.latest_sample = rtt
        srtt = self.srtt
        if srtt is None:
            srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - self.beta) * self.rttvar + self.beta * abs(srtt - rtt)
            srtt = (1 - self.alpha) * srtt + self.alpha * rtt
        self.srtt = srtt
        # Karn/RFC 6298 order: a valid sample first retires the
        # exponential backoff, *then* the RTO is recomputed from the
        # fresh estimate — so the very next timer arms un-backed-off.
        self.backoff_factor = 1.0
        self._base_rto = srtt + self.k * self.rttvar

    def backoff(self) -> None:
        """Double the timeout after an expiry (capped at ``max_rto``)."""
        self.backoff_factor = min(self.backoff_factor * 2.0, 64.0)

    @property
    def rto(self) -> float:
        """Current retransmission timeout in seconds."""
        rto = max(self._base_rto, self.min_rto) * self.backoff_factor
        return min(rto, self.max_rto)
