"""Discrete-event simulation kernel.

The kernel is deliberately small: a :class:`Simulator` owns a binary heap
of :class:`Event` records ordered by ``(time, sequence)``.  Ties in time
are broken by scheduling order, which makes every run fully deterministic
for a given seed and call sequence — a property the test suite relies on.

Events are cancellable in O(1) by flagging; cancelled events are skipped
when popped (lazy deletion), which is the standard approach for
simulations with many retransmission timers that are usually cancelled.
"""

from __future__ import annotations

import heapq
import math
import os
from typing import Any, Callable, Optional

from repro.sim.invariants import InvariantMonitor

__all__ = ["Event", "Kernel", "SimulationError", "Simulator"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code only holds them to call
    :meth:`cancel` (e.g. when an ACK arrives before a retransmission
    timer fires).
    """

    __slots__ = ("time", "_seq", "fn", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., Any], args: tuple[Any, ...]
    ) -> None:
        self.time = time
        self._seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Exact equality is deliberate: both operands are *stored*
        # floats, and only byte-identical timestamps may fall through
        # to the sequence-number tie-break that keeps runs
        # deterministic.  # simlint: disable=SIM003
        if self.time != other.time:
            return self.time < other.time
        return self._seq < other._seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.9f}, fn={name}, {state})"


class Simulator:
    """Event-driven simulator clock and scheduler.

    Typical use::

        sim = Simulator()
        sim.schedule(0.1, app.start)
        sim.run(until=2.0)

    ``now`` is the current simulation time in seconds.  All network and
    transport components receive the simulator instance and schedule
    their own events on it.
    """

    def __init__(self, check_invariants: Optional[bool] = None) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running = False
        self.events_executed: int = 0
        if check_invariants is None:
            check_invariants = _invariants_default()
        #: runtime invariant checker; components self-register on it
        #: when present (see :mod:`repro.sim.invariants`).
        self.invariants: Optional[InvariantMonitor] = (
            InvariantMonitor(self) if check_invariants else None
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, before current time {self.now!r}"
            )
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order until the heap drains or ``until`` passes.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` on return even if the last event fired earlier, so
        monitors sampling at the horizon see a consistent clock.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        executed = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                event.fn(*event.args)
                executed += 1
                self.events_executed += 1
                if self.invariants is not None:
                    self.invariants.after_event(event.time)
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if self.invariants is not None:
            self.invariants.check_all()
        if until is not None and self.now < until:
            self.now = until

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn(*event.args)
            self.events_executed += 1
            if self.invariants is not None:
                self.invariants.after_event(event.time)
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)


#: alias matching the project's "sim kernel" vocabulary:
#: ``Kernel(check_invariants=True)`` reads as the feature is documented.
Kernel = Simulator


def _invariants_default() -> bool:
    """Process-wide default for ``check_invariants``.

    The CLI's ``--check-invariants`` flag sets ``REPRO_CHECK_INVARIANTS``
    in the environment, which sweep worker processes inherit — the only
    channel that survives the pickling boundary.
    """
    return os.environ.get("REPRO_CHECK_INVARIANTS", "").strip() not in ("", "0")
