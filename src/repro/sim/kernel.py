"""Discrete-event simulation kernel.

The kernel is deliberately small: a :class:`Simulator` owns a binary heap
of :class:`Event` records ordered by ``(time, sequence)``.  Ties in time
are broken by scheduling order, which makes every run fully deterministic
for a given seed and call sequence — a property the test suite relies on
(and the golden-trace fixtures under ``tests/golden/`` pin down).

Events are cancellable in O(1) by flagging; cancelled events are skipped
when popped (lazy deletion), which is the standard approach for
simulations with many retransmission timers that are usually cancelled.

Three hot-path mechanisms keep the loop fast without changing behavior:

* **Dispatch-selected run loop** — ``run()`` picks a tight loop with no
  invariant-monitor branch when checking is off, so the common case
  never pays for the opt-in diagnostics.
* **Timer wheel** — events scheduled at least one ``timer_granularity``
  ahead are parked in coarse time buckets instead of the heap; a bucket
  is spilled into the heap (preserving exact ``(time, sequence)`` order)
  only when the clock approaches it.  Retransmission timers — which are
  overwhelmingly cancelled long before expiry — therefore never touch
  the heap at all: O(1) in, O(1) cancelled, O(1) discarded at spill.
* **Event pool** — :meth:`Simulator.schedule_transient` schedules a
  callback *without returning a handle*; because the caller provably
  holds no reference, the kernel recycles the Event record through a
  free list, eliminating allocation churn on per-packet events.
"""

from __future__ import annotations

import heapq
import math
import os
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.invariants import InvariantMonitor

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.telemetry import Telemetry

__all__ = ["Event", "Kernel", "SimulationError", "Simulator"]

_INF = float("inf")

#: free-list bound: transient events alive at once scale with busy links
#: (two per link), so a small cap covers real topologies while bounding
#: worst-case idle memory.
_POOL_CAP = 1024


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


def _noop() -> None:  # pragma: no cover - placeholder for pooled records
    """Callback held by pooled Event records between uses."""


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code only holds them to call
    :meth:`cancel` (e.g. when an ACK arrives before a retransmission
    timer fires).
    """

    __slots__ = ("time", "_seq", "fn", "args", "cancelled", "_sim", "_transient")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., Any], args: tuple[Any, ...]
    ) -> None:
        self.time = time
        self._seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: owning simulator while the event is queued (heap or wheel);
        #: cleared on execution/cancellation so the live-event counter
        #: is decremented exactly once per event.
        self._sim: Optional["Simulator"] = None
        #: True for handle-less events eligible for pooling.
        self._transient = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                self._sim = None
                sim._pending -= 1

    def __lt__(self, other: "Event") -> bool:
        # Exact equality is deliberate: both operands are *stored*
        # floats, and only byte-identical timestamps may fall through
        # to the sequence-number tie-break that keeps runs
        # deterministic.  # simlint: disable=SIM003
        if self.time != other.time:
            return self.time < other.time
        return self._seq < other._seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.9f}, fn={name}, {state})"


class Simulator:
    """Event-driven simulator clock and scheduler.

    Typical use::

        sim = Simulator()
        sim.schedule(0.1, app.start)
        sim.run(until=2.0)

    ``now`` is the current simulation time in seconds.  All network and
    transport components receive the simulator instance and schedule
    their own events on it.

    ``timer_granularity`` is the timer-wheel bucket width in seconds:
    events at least one bucket in the future wait in the wheel instead
    of the heap.  It is a pure performance knob — execution order is
    byte-identical for any positive value — sized by default well below
    the smallest retransmission timeout the experiments configure.
    """

    def __init__(
        self,
        check_invariants: Optional[bool] = None,
        timer_granularity: float = 0.005,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        if not timer_granularity > 0:
            raise ValueError("timer_granularity must be positive")
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running = False
        self.events_executed: int = 0
        #: live (non-cancelled) events currently queued, maintained on
        #: schedule/cancel/pop so ``pending`` is O(1).
        self._pending: int = 0
        self._granularity = timer_granularity
        #: coarse timer wheel: bucket index -> events in insertion order.
        self._wheel: dict[int, list[Event]] = {}
        #: start time of the earliest non-empty bucket (inf when empty).
        self._wheel_next: float = _INF
        self._wheel_next_idx: int = 0
        #: free list of pooled transient Event records.
        self._pool: list[Event] = []
        if check_invariants is None:
            check_invariants = _invariants_default()
        #: runtime invariant checker; components self-register on it
        #: when present (see :mod:`repro.sim.invariants`).
        self.invariants: Optional[InvariantMonitor] = (
            InvariantMonitor(self) if check_invariants else None
        )
        if telemetry is None:
            telemetry = _telemetry_default()
        #: flight-recorder bus (:mod:`repro.obs`); None — the default —
        #: keeps every emit point at a single identity check.  The run
        #: loops never consult it: recording happens at the emit sites.
        self.telemetry: Optional["Telemetry"] = telemetry

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0 or not math.isfinite(delay):
            raise SimulationError(
                f"cannot schedule with negative or non-finite delay {delay!r}"
            )
        return self._schedule_event(self.now + delay, fn, args, False)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule at non-finite time {time!r}")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, before current time {self.now!r}"
            )
        return self._schedule_event(time, fn, args, False)

    def schedule_transient(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> None:
        """Schedule ``fn(*args)`` without returning a cancellation handle.

        Because the caller provably holds no reference to the event, the
        kernel recycles the underlying :class:`Event` record through a
        free list once it fires — the zero-allocation fast path for
        per-packet events that are never cancelled (link transmissions
        and deliveries).  Semantics are otherwise identical to
        :meth:`schedule`.
        """
        if delay < 0 or not math.isfinite(delay):
            raise SimulationError(
                f"cannot schedule with negative or non-finite delay {delay!r}"
            )
        self._schedule_event(self.now + delay, fn, args, True)

    def _schedule_event(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
        transient: bool,
    ) -> Event:
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event._seq = self._seq
            event.fn = fn
            event.args = args
            event._transient = transient
        else:
            event = Event(time, self._seq, fn, args)
            event._transient = transient
        self._seq += 1
        event._sim = self
        self._pending += 1
        if time - self.now >= self._granularity:
            # Far enough out for the wheel: park it in its time bucket.
            granularity = self._granularity
            bucket = int(time / granularity)
            start = bucket * granularity
            if start > time:  # float rounding pushed the start past time
                bucket -= 1
                start = bucket * granularity
            slot = self._wheel.get(bucket)
            if slot is None:
                self._wheel[bucket] = [event]
                if start < self._wheel_next:
                    self._wheel_next = start
                    self._wheel_next_idx = bucket
            else:
                slot.append(event)
            return event
        heapq.heappush(self._heap, event)
        return event

    def _flush_due(self, limit: float) -> None:
        """Spill wheel buckets starting at or before ``limit`` into the heap.

        Events keep their original ``(time, sequence)`` keys, so heap
        order — and therefore execution order — is byte-identical to a
        wheel-less kernel.  Cancelled events are discarded here without
        ever touching the heap (their counter was decremented by
        ``cancel``); that is the wheel's payoff for timer churn.
        """
        heap = self._heap
        push = heapq.heappush
        wheel = self._wheel
        while wheel and self._wheel_next <= limit:
            for event in wheel.pop(self._wheel_next_idx):
                if event.cancelled:
                    continue
                push(heap, event)
            if wheel:
                idx = min(wheel)
                self._wheel_next = idx * self._granularity
                self._wheel_next_idx = idx
            else:
                self._wheel_next = _INF

    def _recycle(self, event: Event) -> None:
        """Return a fired transient event to the free list."""
        if len(self._pool) < _POOL_CAP:
            event.fn = _noop
            event.args = ()
            event.cancelled = False
            event._sim = None
            self._pool.append(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order until the heap drains or ``until`` passes.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` on return even if the last event fired earlier, so
        monitors sampling at the horizon see a consistent clock.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            # Dispatch once, outside the loop: the fast loop carries no
            # invariant or event-budget branches.
            if self.invariants is None and max_events is None:
                self._run_fast(until)
            else:
                self._run_checked(until, max_events)
        finally:
            self._running = False
        if self.invariants is not None:
            self.invariants.check_all()
        if until is not None and self.now < until:
            self.now = until

    def _run_fast(self, until: Optional[float]) -> None:
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        try:
            while True:
                if heap:
                    event = heap[0]
                    time = event.time
                    if self._wheel_next <= time:
                        self._flush_due(time)
                        continue
                    if event.cancelled:
                        pop(heap)
                        continue
                    if until is not None and time > until:
                        return
                    pop(heap)
                    self._pending -= 1
                    event._sim = None
                    self.now = time
                    event.fn(*event.args)
                    executed += 1
                    if event._transient:
                        self._recycle(event)
                elif self._wheel:
                    if until is not None and self._wheel_next > until:
                        return
                    self._flush_due(self._wheel_next)
                else:
                    return
        finally:
            self.events_executed += executed

    def _run_checked(self, until: Optional[float], max_events: Optional[int]) -> None:
        heap = self._heap
        pop = heapq.heappop
        invariants = self.invariants
        executed = 0
        try:
            while True:
                if heap:
                    event = heap[0]
                    time = event.time
                    if self._wheel_next <= time:
                        self._flush_due(time)
                        continue
                    if event.cancelled:
                        pop(heap)
                        continue
                    if until is not None and time > until:
                        return
                    pop(heap)
                    self._pending -= 1
                    event._sim = None
                    self.now = time
                    event.fn(*event.args)
                    executed += 1
                    if invariants is not None:
                        invariants.after_event(time)
                    if event._transient:
                        self._recycle(event)
                    if max_events is not None and executed >= max_events:
                        return
                elif self._wheel:
                    if until is not None and self._wheel_next > until:
                        return
                    self._flush_due(self._wheel_next)
                else:
                    return
        finally:
            self.events_executed += executed

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none.

        Runs under the same reentrancy guard and invariant semantics as
        :meth:`run`: calling ``step()`` from inside an event handler
        raises, each executed event feeds the invariant monitor, and the
        full check sweep runs before returning.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        fired = False
        try:
            heap = self._heap
            while True:
                if heap:
                    event = heap[0]
                    if self._wheel_next <= event.time:
                        self._flush_due(event.time)
                        continue
                    heapq.heappop(heap)
                    if event.cancelled:
                        continue
                    self._pending -= 1
                    event._sim = None
                    self.now = event.time
                    event.fn(*event.args)
                    self.events_executed += 1
                    if self.invariants is not None:
                        self.invariants.after_event(event.time)
                    if event._transient:
                        self._recycle(event)
                    fired = True
                    break
                elif self._wheel:
                    self._flush_due(self._wheel_next)
                else:
                    break
        finally:
            self._running = False
        if self.invariants is not None:
            self.invariants.check_all()
        return fired

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        heap = self._heap
        while True:
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
            if heap:
                if self._wheel_next <= heap[0].time:
                    self._flush_due(heap[0].time)
                    continue
                return heap[0].time
            if self._wheel:
                self._flush_due(self._wheel_next)
                continue
            return None

    def notify_fault(self, description: str) -> None:
        """Report an injected fault (link outage, loss burst, buffer
        resize...) taking effect at the current simulation time.

        The fault-injection layer calls this as each fault event is
        applied, so the invariant monitor can keep an audit trail of
        deliberate impairments and distinguish them from genuine
        conservation violations.  A no-op when checking is off — chaos
        runs pay for the bookkeeping only when they asked for it.
        """
        if self.invariants is not None:
            self.invariants.on_fault(self.now, description)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_fault(self.now, description)

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued.  O(1)."""
        return self._pending

    def _pending_scan(self) -> int:
        """Brute-force recount of queued live events (testing aid).

        Walks the heap and every wheel bucket; the property-based kernel
        tests assert this always equals the O(1) ``pending`` counter.
        """
        count = sum(1 for e in self._heap if not e.cancelled)
        for events in self._wheel.values():
            count += sum(1 for e in events if not e.cancelled)
        return count


#: alias matching the project's "sim kernel" vocabulary:
#: ``Kernel(check_invariants=True)`` reads as the feature is documented.
Kernel = Simulator


def _invariants_default() -> bool:
    """Process-wide default for ``check_invariants``.

    The CLI's ``--check-invariants`` flag sets ``REPRO_CHECK_INVARIANTS``
    in the environment, which sweep worker processes inherit — the only
    channel that survives the pickling boundary.
    """
    return os.environ.get("REPRO_CHECK_INVARIANTS", "").strip() not in ("", "0")


def _telemetry_default() -> Optional["Telemetry"]:
    """Process-wide default telemetry bus, from ``REPRO_TRACE``.

    Mirrors :func:`_invariants_default`: the CLI's ``--trace`` flag sets
    the variable and sweep workers inherit it.  The import is deferred so
    an untraced simulation never loads :mod:`repro.obs` at all.
    """
    if not os.environ.get("REPRO_TRACE", "").strip():
        return None
    from repro.obs.capture import telemetry_from_env

    return telemetry_from_env()
