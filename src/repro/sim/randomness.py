"""Seeded random-number streams.

Every source of randomness in an experiment draws from a named stream so
that (a) runs are reproducible from a single integer seed, and (b) adding
a new random consumer does not perturb the draws seen by existing ones.
Streams are derived with :class:`numpy.random.SeedSequence` spawning,
which guarantees independence between streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent, named ``numpy`` generators.

    >>> streams = RandomStreams(seed=7)
    >>> g1 = streams.get("workload")
    >>> g2 = streams.get("workload")   # same object back
    >>> g1 is g2
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Stream identity depends only on the root seed and the name (not
        on creation order), via hashing the name into the spawn key.
        """
        if name not in self._streams:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_stable_hash(name),),
            )
            self._streams[name] = np.random.Generator(np.random.PCG64(child))
        return self._streams[name]


def _stable_hash(name: str) -> int:
    """A process-stable 63-bit hash of ``name`` (builtin hash is salted)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return value
