"""Seeded random-number streams.

Every source of randomness in an experiment draws from a named stream so
that (a) runs are reproducible from a single integer seed, and (b) adding
a new random consumer does not perturb the draws seen by existing ones.
Streams are derived with :class:`numpy.random.SeedSequence` spawning,
which guarantees independence between streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams", "derive_seed", "seeded_rng"]


class RandomStreams:
    """A family of independent, named ``numpy`` generators.

    >>> streams = RandomStreams(seed=7)
    >>> g1 = streams.get("workload")
    >>> g2 = streams.get("workload")   # same object back
    >>> g1 is g2
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Stream identity depends only on the root seed and the name (not
        on creation order), via hashing the name into the spawn key.
        """
        if name not in self._streams:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_stable_hash(name),),
            )
            self._streams[name] = np.random.Generator(np.random.PCG64(child))
        return self._streams[name]

    def spawn_seed(self, name: str) -> int:
        """An integer seed for ``name``, independent of every stream.

        Sweep runners use this to hand each dispatched point its own
        deterministic seed: the value depends only on the root seed and
        the name, never on process, worker count, or call order.
        """
        return derive_seed(self.seed, name)


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a deterministic integer seed for ``name`` from ``root_seed``.

    Uses the same :class:`numpy.random.SeedSequence` spawning scheme as
    :class:`RandomStreams`, so derived seeds are statistically
    independent of each other and of any named stream.  The result is a
    non-negative 63-bit integer, stable across processes and platforms.
    """
    child = np.random.SeedSequence(
        entropy=root_seed, spawn_key=(_stable_hash(name),)
    )
    low, high = (int(w) for w in child.generate_state(2, dtype=np.uint32))
    return (low | (high << 32)) & 0x7FFFFFFFFFFFFFFF


def seeded_rng(*entropy: int) -> np.random.Generator:
    """A PCG64 generator seeded from explicit integer entropy.

    The single blessed way to build a standalone generator outside the
    named-stream machinery (simlint's SIM001 forbids constructing one
    anywhere else).  Bit-identical to ``np.random.default_rng(entropy)``
    — both feed a :class:`numpy.random.SeedSequence` into PCG64 — so
    migrating a call site never perturbs recorded results.  Pass every
    coordinate that distinguishes the draw site (root seed, sweep
    coordinates, repeat index) so no two points share a stream.
    """
    if not entropy:
        raise ValueError("seeded_rng needs at least one entropy integer")
    seed = entropy[0] if len(entropy) == 1 else entropy
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))


def _stable_hash(name: str) -> int:
    """A process-stable 63-bit hash of ``name`` (builtin hash is salted)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return value
