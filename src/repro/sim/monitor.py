"""Time-series recording for simulations.

:class:`TimeSeries` is an append-only ``(time, value)`` log used by queue
monitors, throughput monitors, and congestion-window traces.
:class:`PeriodicSampler` drives a callback at a fixed period and records
its return value — the standard way to trace a queue length or compute a
windowed throughput, mirroring NS2's queue monitors.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from repro.sim.kernel import Event, Simulator

__all__ = ["PeriodicSampler", "TimeSeries"]


class TimeSeries:
    """An append-only sequence of ``(time, value)`` samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def last(self) -> tuple[float, float]:
        """The most recent sample.  Raises IndexError when empty."""
        return self.times[-1], self.values[-1]

    def max(self) -> float:
        return max(self.values)

    def min(self) -> float:
        return min(self.values)

    def mean(self) -> float:
        """Unweighted mean of the recorded values."""
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return sum(self.values) / len(self.values)

    def time_average(self) -> float:
        """Time-weighted average, treating samples as a step function.

        Each value is held from its own timestamp to the next sample's
        timestamp; the final sample gets zero weight (it has no known
        duration), so at least two samples are required.
        """
        if len(self.times) < 2:
            raise ValueError("time_average needs at least two samples")
        total = 0.0
        for i in range(len(self.times) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        span = self.times[-1] - self.times[0]
        if span <= 0:
            raise ValueError("samples span zero time")
        return total / span

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= time < end`` as a new series."""
        out = TimeSeries(self.name)
        for t, v in zip(self.times, self.values):
            if start <= t < end:
                out.record(t, v)
        return out


class PeriodicSampler:
    """Calls ``probe()`` every ``period`` seconds and logs the result.

    The sampler schedules itself; call :meth:`start` once (optionally at
    a time offset) and :meth:`stop` to end sampling.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        probe: Callable[[], float],
        name: str = "",
    ) -> None:
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.sim = sim
        self.period = period
        self.probe = probe
        self.series = TimeSeries(name)
        self._event: Optional[Event] = None
        self._stopped = False

    def start(self, at: Optional[float] = None) -> "PeriodicSampler":
        when = self.sim.now if at is None else at
        self._event = self.sim.schedule_at(when, self._tick)
        return self

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    def _tick(self) -> None:
        if self._stopped:
            return
        self.series.record(self.sim.now, float(self.probe()))
        self._event = self.sim.schedule(self.period, self._tick)


def rate_series(
    event_times: Sequence[float],
    event_sizes: Sequence[float],
    bin_width: float,
    start: float = 0.0,
    end: Optional[float] = None,
) -> TimeSeries:
    """Bin per-event sizes into a rate time series (units/second).

    Used to turn per-packet delivery logs into throughput curves, e.g.
    bits delivered per 10 ms bin → Mbps.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if end is None:
        end = max(event_times, default=start) + bin_width
    series = TimeSeries("rate")
    n_bins = max(1, int((end - start) / bin_width + 0.999999))
    totals = [0.0] * n_bins
    for t, s in zip(event_times, event_sizes):
        if t < start or t >= end:
            continue
        totals[min(int((t - start) / bin_width), n_bins - 1)] += s
    for i, total in enumerate(totals):
        series.record(start + i * bin_width, total / bin_width)
    return series
