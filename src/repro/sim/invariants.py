"""Runtime invariant checking for simulations.

An :class:`InvariantMonitor` attaches to a :class:`~repro.sim.kernel.Simulator`
created with ``check_invariants=True`` (or with the environment variable
``REPRO_CHECK_INVARIANTS=1``, which the experiment CLI's
``--check-invariants`` flag sets so worker processes inherit it).
Components self-register as they are built — links register their egress
queues, TCP sources register as flows — and the monitor then asserts,
while the simulation runs:

* **monotonic time** — executed events never move the clock backwards;
* **packet conservation** — for every registered queue,
  ``enqueued == dequeued + evicted + resident`` (drops are counted on
  arrival and never enter the FIFO; resident packets destroyed by an
  injected ``BufferResize`` are counted as ``evicted`` — so an
  uncounted drop or an unaccounted eviction breaks the balance);
* **protocol-state sanity** — per flow, ``cwnd >= 1`` segment (1 MSS),
  ``bytes_in_flight >= 0``, and flight never exceeding the high-water
  send window (+2 segments of slack for TCP-TRIM's probe pair, which
  Algorithm 1 emits below the minimum window on purpose).

The full sweep of queue/flow checks runs every
``check_every_events`` executed events and once more when ``run()``
returns; the per-event monotonicity check is O(1).  A violation raises
:class:`InvariantViolation` immediately — a corrupted simulation must
not produce a figure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.queues import DropTailQueue
    from repro.sim.kernel import Simulator
    from repro.tcp.base import TcpSource

__all__ = ["InvariantMonitor", "InvariantViolation"]

#: slack (segments) above the high-water window: TCP-TRIM's probe pair
#: is sent while the window is floored at the minimum, so flight may
#: legitimately exceed the largest window ever granted by two segments.
PROBE_SLACK_SEGMENTS = 2


class InvariantViolation(AssertionError):
    """A simulation broke a conservation or protocol-state invariant."""


class InvariantMonitor:
    """Asserts kernel, queue, and flow invariants during a run."""

    def __init__(self, sim: "Simulator", check_every_events: int = 256) -> None:
        if check_every_events < 1:
            raise ValueError("check_every_events must be >= 1")
        self.sim = sim
        self.check_every_events = check_every_events
        self.checks_run: int = 0
        self.events_seen: int = 0
        self._queues: list[tuple["DropTailQueue", str]] = []
        self._flows: list["TcpSource"] = []
        #: per-flow high-water effective send window, in segments.
        self._window_hwm: dict[int, float] = {}
        self._last_event_time: float = float("-inf")
        #: audit trail of injected faults: count and last application.
        self.faults_seen: int = 0
        self.last_fault: Optional[tuple[float, str]] = None
        self._last_fault_time: float = float("-inf")

    # ------------------------------------------------------------------
    # Registration (components call these from their constructors)
    # ------------------------------------------------------------------
    def register_queue(self, queue: Any, name: str = "") -> None:
        """Track ``queue`` (anything with ``stats`` and ``__len__``).

        Idempotent per queue object: links re-register through their
        ``queue`` setter on every swap, and a queue must not be checked
        (or counted) twice.
        """
        for registered, _ in self._queues:
            if registered is queue:
                return
        self._queues.append((queue, name or getattr(queue, "name", "") or "queue"))

    def register_flow(self, source: "TcpSource") -> None:
        self._flows.append(source)
        self._window_hwm[id(source)] = 0.0

    # ------------------------------------------------------------------
    # Hooks driven by the kernel and the sources
    # ------------------------------------------------------------------
    def after_event(self, event_time: float) -> None:
        """Called by the kernel after each executed event."""
        if event_time < self._last_event_time:
            raise InvariantViolation(
                f"event timestamps moved backwards: {event_time!r} after "
                f"{self._last_event_time!r}"
            )
        self._last_event_time = event_time
        self.events_seen += 1
        if self.events_seen % self.check_every_events == 0:
            self.check_all()

    def on_flow_send(self, source: "TcpSource") -> None:
        """Called by a source on every segment send (exact window hwm)."""
        hwm = self._window_hwm.get(id(source), 0.0)
        self._window_hwm[id(source)] = max(hwm, float(source._window_segments()))
        self._check_flow(source)

    def on_fault(self, time: float, description: str) -> None:
        """Called by the kernel when a fault event is applied.

        Keeps an audit trail (count + last fault) and asserts the fault
        schedule itself is monotonic — an injector applying faults out of
        order would silently break the determinism contract.
        """
        if time < self._last_fault_time:
            raise InvariantViolation(
                f"fault applied out of order: {description!r} at {time!r} "
                f"after a fault at {self._last_fault_time!r}"
            )
        self._last_fault_time = time
        self.faults_seen += 1
        self.last_fault = (time, description)

    # ------------------------------------------------------------------
    # The checks
    # ------------------------------------------------------------------
    def check_all(self) -> None:
        """Run every queue and flow check once."""
        self.checks_run += 1
        for queue, name in self._queues:
            self._check_queue(queue, name)
        for source in self._flows:
            self._window_hwm[id(source)] = max(
                self._window_hwm.get(id(source), 0.0),
                float(source._window_segments()),
            )
            self._check_flow(source)

    def _check_queue(self, queue: Any, name: str) -> None:
        stats = queue.stats
        resident = len(queue)
        evicted = getattr(stats, "evicted", 0)
        if stats.enqueued != stats.dequeued + evicted + resident:
            raise InvariantViolation(
                f"packet conservation broken at queue {name!r}: "
                f"enqueued={stats.enqueued} != dequeued={stats.dequeued} "
                f"+ evicted={evicted} + resident={resident} "
                f"(dropped={stats.dropped} arrivals were refused before "
                "admission and are accounted separately) — packets were "
                "created or destroyed"
            )
        if stats.enqueued < 0 or stats.dequeued < 0 or stats.dropped < 0:
            raise InvariantViolation(
                f"negative counter at queue {name!r}: {stats!r}"
            )

    def _check_flow(self, source: "TcpSource") -> None:
        mss = source.config.mss_bytes
        if source.cwnd < 1.0:
            raise InvariantViolation(
                f"flow {source.name}: cwnd={source.cwnd!r} segments fell "
                f"below 1 MSS ({mss} bytes)"
            )
        flight = source.flight
        if flight < 0:
            raise InvariantViolation(
                f"flow {source.name}: bytes_in_flight={flight * mss} < 0 "
                f"(t_seqno={source.t_seqno}, highest_ack={source.highest_ack})"
            )
        cap = self._window_hwm.get(id(source), 0.0) + PROBE_SLACK_SEGMENTS
        if flight > cap:
            raise InvariantViolation(
                f"flow {source.name}: {flight} segments in flight exceed "
                f"the high-water send window {cap} (cwnd={source.cwnd:.1f})"
            )

    @property
    def violations(self) -> int:
        """Violations observed so far.  Always 0: the monitor raises on
        the first violation, so a completed run implies a clean one."""
        return 0
