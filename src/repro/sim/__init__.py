"""Discrete-event simulation kernel.

This subpackage is the NS2 substitute's engine: a binary-heap event
scheduler (:mod:`repro.sim.kernel`), seeded random-number streams
(:mod:`repro.sim.randomness`), and time-series monitors
(:mod:`repro.sim.monitor`).
"""

from repro.sim.invariants import InvariantMonitor, InvariantViolation
from repro.sim.kernel import Event, Kernel, SimulationError, Simulator
from repro.sim.monitor import PeriodicSampler, TimeSeries, rate_series
from repro.sim.randomness import RandomStreams, derive_seed, seeded_rng

__all__ = [
    "Event",
    "InvariantMonitor",
    "InvariantViolation",
    "Kernel",
    "PeriodicSampler",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "TimeSeries",
    "derive_seed",
    "rate_series",
    "seeded_rng",
]
