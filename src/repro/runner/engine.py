"""The sweep-execution engine.

:class:`SweepRunner` takes ``(experiment, params)`` tasks, enumerates
their :class:`~repro.experiments.base.Point` lists, and resolves every
point — from the cache when possible, inline for serial runs, or on a
:class:`~concurrent.futures.ProcessPoolExecutor` otherwise — then folds
the per-point results back through each experiment's ``reduce``.

Determinism contract: each point's seed is derived from the root seed
and the point's ``"<experiment id>/<label>"`` name alone
(:func:`repro.sim.randomness.derive_seed`), and results are collected
by point index rather than completion order.  A sweep therefore
produces bit-identical payloads for any worker count, and protocol
variants of the same experiment see matched per-point draws (the same
scenario randomness under every protocol, as the paper's comparisons
require).

Failure contract: a point that keeps raising after ``retries``
re-submissions (or times out) degrades to a ``None`` result; ``reduce``
receives the partial result set and the failures are recorded on
:attr:`SweepRunner.last_stats`.  A timed-out point's worker cannot be
forcibly killed — the retry runs concurrently with the straggler, the
runner then waits on *all* of that point's submissions, and whichever
earliest-submitted attempt completes successfully wins (so the outcome
does not depend on the race); extra completed successes are counted in
:attr:`SweepStats.duplicate_results`.

Crash contract: give the runner a
:class:`~repro.runner.checkpoint.SweepCheckpoint` and every completed
point is journalled durably (flush + fsync) the moment it lands; after
a crash — including ``kill -9`` mid-sweep — re-running with
``resume=True`` replays the journalled points for free and executes
only the unfinished remainder, producing payloads identical to an
uninterrupted run.  ``KeyboardInterrupt`` is handled the same way but
gracefully: completed points are already on disk, and the runner raises
:class:`SweepInterrupted` carrying the partial payloads and stats so
callers can report before exiting non-zero.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.runner.cache import ResultCache
from repro.runner.checkpoint import SweepCheckpoint, digest_params
from repro.runner.progress import ProgressReporter
from repro.sim.randomness import derive_seed

__all__ = [
    "PointFailure",
    "SweepInterrupted",
    "SweepRunner",
    "SweepStats",
]


def _trace_capture() -> Any:
    """:mod:`repro.obs.capture` when ``REPRO_TRACE`` is set, else None.

    The env check happens *before* the import so an untraced sweep never
    loads the observability layer (in workers or inline).
    """
    if not os.environ.get("REPRO_TRACE", "").strip():
        return None
    from repro.obs import capture

    return capture


def _execute_point(experiment_id: str, params: Any, point: Any, seed: int) -> Any:
    """Worker entry: re-resolve the experiment by id and run one point.

    Only ``(experiment_id, params, point, seed)`` crosses the process
    boundary, so experiments never need to be picklable themselves —
    but they must be *registered* (importable via
    :mod:`repro.experiments.registry`) to run on a pool.

    When tracing is on (``REPRO_TRACE``), the simulators this point
    constructs register telemetry buses process-locally; their records
    are exported to the point's trace file here, *in the worker*, so
    nothing extra crosses the pool boundary.  A failed attempt discards
    its partial capture — only the successful run's trace survives.
    """
    from repro.experiments import registry

    capture = _trace_capture()
    if capture is None:
        return registry.get(experiment_id).run_point(params, point, seed)
    capture.discard_active()  # drop any stale buses from a prior point
    try:
        value = registry.get(experiment_id).run_point(params, point, seed)
    except BaseException:
        capture.discard_active()
        raise
    capture.export_point_trace(
        experiment_id, point.label, seed, digest_params(params)
    )
    return value


@dataclass
class PointFailure:
    """A point that produced no result after all attempts."""

    experiment_id: str
    label: str
    error: str
    attempts: int


@dataclass
class SweepStats:
    """Bookkeeping for the last :meth:`SweepRunner.run_many` call."""

    total_points: int = 0
    executed: int = 0
    cache_hits: int = 0
    #: points replayed from the checkpoint journal instead of executed.
    resumed: int = 0
    #: straggler results that completed after another attempt for the
    #: same point had already won (kept-first determinism; see the
    #: failure contract in the module docstring).
    duplicate_results: int = 0
    #: True when the sweep was cut short by KeyboardInterrupt; the
    #: payloads reduce whatever completed before the interrupt.
    interrupted: bool = False
    failures: list[PointFailure] = field(default_factory=list)
    elapsed: float = 0.0


class SweepInterrupted(KeyboardInterrupt):
    """A sweep stopped early on Ctrl-C, carrying its partial outcome.

    Subclasses :class:`KeyboardInterrupt` so naive callers still unwind
    as an interrupt; careful callers catch this first and read
    :attr:`payloads` (one reduced payload per task, built from the
    points that finished) and :attr:`stats` before exiting non-zero.
    """

    def __init__(self, payloads: list[Any], stats: SweepStats) -> None:
        super().__init__("sweep interrupted")
        self.payloads = payloads
        self.stats = stats


class _Entry:
    """One point's dispatch record inside a run."""

    __slots__ = (
        "task_index", "point_index", "experiment", "params", "point",
        "seed", "cache_key", "params_digest",
    )

    def __init__(self, task_index, point_index, experiment, params, point, seed,
                 params_digest=""):
        self.task_index = task_index
        self.point_index = point_index
        self.experiment = experiment
        self.params = params
        self.point = point
        self.seed = seed
        self.cache_key: Optional[str] = None
        #: folded into the journal key: protocol variants of one
        #: experiment share labels *and* per-point seeds by design.
        self.params_digest = params_digest

    @property
    def journal_key(self):
        return (self.experiment.id, self.point.label, self.seed,
                self.params_digest)


class SweepRunner:
    """Fan independent sweep points out to processes, cached and seeded.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs points inline in this
        process — bit-identical to any parallel run, and the mode to
        use under a debugger.
    cache:
        A :class:`~repro.runner.cache.ResultCache`, or None to disable
        caching.  Only successful results are cached; a re-run of an
        unchanged (version, params, point, seed) tuple is free.
    timeout:
        Seconds to wait for one point's result before retrying/failing
        it, or None to wait forever.  Enforced only on pool runs.
    retries:
        Re-submissions after a point raises or times out.
    progress:
        True to print per-point progress/ETA lines to stderr, or a
        :class:`~repro.runner.progress.ProgressReporter` to customize.
    checkpoint:
        A :class:`~repro.runner.checkpoint.SweepCheckpoint` journalling
        every completed point durably, or None to disable.  Without
        ``resume`` the journal is truncated at the start of each run.
    resume:
        Replay points already in the checkpoint journal instead of
        executing them (requires ``checkpoint``).
    executor_factory:
        ``max_workers -> Executor`` override for the worker pool
        (default: :class:`~concurrent.futures.ProcessPoolExecutor`).
        A seam for tests that need deterministic straggler timing via
        thread pools; production sweeps should not need it.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        progress: Any = False,
        label: str = "sweep",
        checkpoint: Optional[SweepCheckpoint] = None,
        resume: bool = False,
        executor_factory: Optional[
            Callable[[int], concurrent.futures.Executor]
        ] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint")
        self.jobs = int(jobs)
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, int(retries))
        if isinstance(progress, ProgressReporter):
            self._reporter: Optional[ProgressReporter] = progress
        elif progress:
            self._reporter = ProgressReporter(label)
        else:
            self._reporter = None
        self.checkpoint = checkpoint
        self.resume = bool(resume)
        self.executor_factory = executor_factory
        self.last_stats: Optional[SweepStats] = None
        #: set after the first run_many touches the journal, so an
        #: ``all``-style sequence of calls shares one journal (only the
        #: first non-resume call truncates it).
        self._checkpoint_used = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, experiment: Any, params: Any, *, seed: int = 0) -> Any:
        """Run one experiment's sweep and return its reduced payload."""
        return self.run_many([(experiment, params)], seed=seed)[0]

    def run_many(
        self, tasks: Sequence[tuple[Any, Any]], *, seed: int = 0
    ) -> list[Any]:
        """Run several sweeps as one flat dispatch; payloads in order.

        Points from every task share the worker pool, so e.g. the
        protocols of one figure (or several figures of an ``all`` run)
        parallelize against each other, not just within a sweep.
        """
        started = time.perf_counter()
        stats = SweepStats()
        all_points: list[list[Any]] = []
        results: list[list[Any]] = []
        entries: list[_Entry] = []
        for task_index, (experiment, params) in enumerate(tasks):
            points = list(experiment.points(params))
            labels = [p.label for p in points]
            if len(set(labels)) != len(labels):
                raise ValueError(
                    f"{experiment.id}: duplicate point labels in sweep"
                )
            all_points.append(points)
            results.append([None] * len(points))
            digest = (
                digest_params(params) if self.checkpoint is not None else ""
            )
            for point_index, point in enumerate(points):
                point_seed = derive_seed(seed, f"{experiment.id}/{point.label}")
                entries.append(
                    _Entry(task_index, point_index, experiment, params,
                           point, point_seed, digest)
                )
        stats.total_points = len(entries)
        if self._reporter is not None:
            self._reporter.start(len(entries))

        journalled: dict[tuple[str, str, int], Any] = {}
        if self.checkpoint is not None:
            if self.resume or self._checkpoint_used:
                journalled = self.checkpoint.load()
            else:
                # A fresh sweep must not inherit another run's records.
                self.checkpoint.reset()
            self._checkpoint_used = True

        pending: list[_Entry] = []
        for entry in entries:
            if journalled and entry.journal_key in journalled:
                value = journalled[entry.journal_key]
                results[entry.task_index][entry.point_index] = value
                stats.resumed += 1
                self._point_done(entry, cached=True)
                continue
            if self.cache is not None:
                entry.cache_key = self.cache.key(
                    entry.experiment.id, entry.params, entry.point, entry.seed
                )
                hit = self.cache.get(entry.cache_key)
                if hit is not None:
                    results[entry.task_index][entry.point_index] = hit
                    stats.cache_hits += 1
                    # A cache hit still lands in the journal: a later
                    # --resume must not depend on the shared cache
                    # retaining the entry.
                    self._journal(entry, hit)
                    self._point_done(entry, cached=True)
                    continue
            pending.append(entry)

        interrupted = False
        if pending:
            try:
                if self.jobs == 1 or len(pending) == 1:
                    self._run_inline(pending, results, stats)
                else:
                    self._run_pool(pending, results, stats)
            except KeyboardInterrupt:
                interrupted = True

        stats.elapsed = time.perf_counter() - started
        stats.interrupted = interrupted
        if self._reporter is not None:
            self._reporter.finish()
        self.last_stats = stats
        if stats.failures and not interrupted:
            warnings.warn(
                f"{len(stats.failures)} sweep point(s) failed; "
                "payloads reduce a partial result set",
                RuntimeWarning,
                stacklevel=2,
            )
        payloads: list[Any] = []
        for (experiment, params), points, task_results in zip(
            tasks, all_points, results
        ):
            if interrupted:
                # Best-effort partials: a reduce written for complete
                # sweeps may choke on the holes; the journal already
                # holds everything needed to resume either way.
                try:
                    payloads.append(experiment.reduce(params, points, task_results))
                except Exception:  # noqa: BLE001
                    payloads.append(None)
            else:
                payloads.append(experiment.reduce(params, points, task_results))
        if interrupted:
            raise SweepInterrupted(payloads, stats)
        return payloads

    # ------------------------------------------------------------------
    # Resolution paths
    # ------------------------------------------------------------------
    def _journal(self, entry: _Entry, value: Any) -> None:
        if self.checkpoint is not None and value is not None:
            self.checkpoint.record(
                entry.experiment.id, entry.point.label, entry.seed, value,
                params_digest=entry.params_digest,
            )

    def _record(self, entry: _Entry, value: Any, results, stats) -> None:
        results[entry.task_index][entry.point_index] = value
        stats.executed += 1
        if self.cache is not None and entry.cache_key is not None and value is not None:
            self.cache.put(entry.cache_key, value)
        self._journal(entry, value)
        self._point_done(entry)

    def _fail(self, entry: _Entry, error: str, attempts: int, stats) -> None:
        stats.failures.append(
            PointFailure(entry.experiment.id, entry.point.label, error, attempts)
        )
        self._point_done(entry, failed=True)

    def _point_done(self, entry: _Entry, cached=False, failed=False) -> None:
        if self._reporter is not None:
            self._reporter.point_done(entry.point.label, cached=cached, failed=failed)

    def _run_inline(self, pending, results, stats) -> None:
        capture = _trace_capture()
        for entry in pending:
            attempts = 0
            while True:
                attempts += 1
                if capture is not None:
                    capture.discard_active()  # failed attempts leave buses
                try:
                    value = entry.experiment.run_point(
                        entry.params, entry.point, entry.seed
                    )
                except KeyboardInterrupt:
                    raise
                except Exception as exc:  # noqa: BLE001 - degrade, don't die
                    if attempts > self.retries:
                        self._fail(
                            entry, f"{type(exc).__name__}: {exc}", attempts, stats
                        )
                        break
                    continue
                if capture is not None:
                    capture.export_point_trace(
                        entry.experiment.id, entry.point.label, entry.seed,
                        entry.params_digest or digest_params(entry.params),
                    )
                self._record(entry, value, results, stats)
                break

    def _make_pool(self, max_workers: int) -> concurrent.futures.Executor:
        if self.executor_factory is not None:
            return self.executor_factory(max_workers)
        return concurrent.futures.ProcessPoolExecutor(max_workers=max_workers)

    def _run_pool(self, pending, results, stats) -> None:
        max_workers = min(self.jobs, len(pending))
        pool = self._make_pool(max_workers)
        #: (entry, future) pairs still in flight after their entry was
        #: already decided — stragglers whose eventual successes are
        #: counted as duplicates, never recorded.
        leftovers: list[tuple[_Entry, concurrent.futures.Future]] = []
        try:
            # All attempts for an entry, in submission order.  The list
            # only grows (stragglers are never discarded), so "earliest
            # successful submission" is a deterministic choice however
            # the straggler/retry race resolves.
            futures: dict[int, list[concurrent.futures.Future]] = {
                id(entry): [pool.submit(
                    _execute_point, entry.experiment.id, entry.params,
                    entry.point, entry.seed,
                )]
                for entry in pending
            }
            for entry in pending:
                attempts = futures[id(entry)]
                while True:
                    # Wait only on attempts not yet finished — waiting on
                    # the full list would return immediately forever once
                    # one attempt has failed.
                    unfinished = [f for f in attempts if not f.done()]
                    progressed = False
                    if unfinished:
                        done_now, _ = concurrent.futures.wait(
                            unfinished,
                            timeout=self.timeout,
                            return_when=concurrent.futures.FIRST_COMPLETED,
                        )
                        progressed = bool(done_now)
                    winner = None
                    error = None
                    for future in attempts:  # submission order
                        if not future.done() or future.cancelled():
                            continue
                        exc = future.exception()
                        if exc is not None:
                            error = f"{type(exc).__name__}: {exc}"
                        elif winner is None:
                            winner = future
                        else:
                            stats.duplicate_results += 1
                    if winner is not None:
                        self._record(entry, winner.result(), results, stats)
                        leftovers.extend(
                            (entry, future) for future in attempts
                            if not future.done()
                        )
                        break
                    timed_out = bool(unfinished) and not progressed
                    if timed_out:
                        error = f"timed out after {self.timeout}s"
                    if len(attempts) <= self.retries:
                        try:
                            attempts.append(pool.submit(
                                _execute_point, entry.experiment.id,
                                entry.params, entry.point, entry.seed,
                            ))
                        except Exception as exc:  # pool broken beyond repair
                            self._fail(
                                entry,
                                f"retry submission failed: "
                                f"{type(exc).__name__}: {exc}",
                                len(attempts),
                                stats,
                            )
                            break
                        continue
                    still_running = [f for f in attempts if not f.done()]
                    if still_running and not timed_out:
                        # Submissions exhausted; an attempt just failed
                        # but stragglers remain in flight.  Grant them
                        # another timeout window — a late success still
                        # wins over a recorded failure.
                        continue
                    for future in still_running:
                        future.cancel()
                    self._fail(entry, error or "no result", len(attempts), stats)
                    break
        except KeyboardInterrupt:
            # Don't block the Ctrl-C on stragglers: drop queued work and
            # leave without waiting for running futures.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            if leftovers:
                # The pool shutdown below waits for these anyway; count
                # the straggler successes the race would have discarded.
                concurrent.futures.wait([future for _, future in leftovers])
                for _, future in leftovers:
                    if (future.done() and not future.cancelled()
                            and future.exception() is None):
                        stats.duplicate_results += 1
            pool.shutdown(wait=True)
