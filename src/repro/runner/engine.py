"""The sweep-execution engine.

:class:`SweepRunner` takes ``(experiment, params)`` tasks, enumerates
their :class:`~repro.experiments.base.Point` lists, and resolves every
point — from the cache when possible, inline for serial runs, or on a
:class:`~concurrent.futures.ProcessPoolExecutor` otherwise — then folds
the per-point results back through each experiment's ``reduce``.

Determinism contract: each point's seed is derived from the root seed
and the point's ``"<experiment id>/<label>"`` name alone
(:func:`repro.sim.randomness.derive_seed`), and results are collected
by point index rather than completion order.  A sweep therefore
produces bit-identical payloads for any worker count, and protocol
variants of the same experiment see matched per-point draws (the same
scenario randomness under every protocol, as the paper's comparisons
require).

Failure contract: a point that keeps raising after ``retries``
re-submissions (or times out) degrades to a ``None`` result; ``reduce``
receives the partial result set and the failures are recorded on
:attr:`SweepRunner.last_stats`.  A timed-out point's worker cannot be
forcibly killed — the retry simply runs concurrently with the straggler
and the straggler's eventual result is discarded.
"""

from __future__ import annotations

import concurrent.futures
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.runner.cache import ResultCache
from repro.runner.progress import ProgressReporter
from repro.sim.randomness import derive_seed

__all__ = ["PointFailure", "SweepRunner", "SweepStats"]


def _execute_point(experiment_id: str, params: Any, point: Any, seed: int) -> Any:
    """Worker entry: re-resolve the experiment by id and run one point.

    Only ``(experiment_id, params, point, seed)`` crosses the process
    boundary, so experiments never need to be picklable themselves —
    but they must be *registered* (importable via
    :mod:`repro.experiments.registry`) to run on a pool.
    """
    from repro.experiments import registry

    return registry.get(experiment_id).run_point(params, point, seed)


@dataclass
class PointFailure:
    """A point that produced no result after all attempts."""

    experiment_id: str
    label: str
    error: str
    attempts: int


@dataclass
class SweepStats:
    """Bookkeeping for the last :meth:`SweepRunner.run_many` call."""

    total_points: int = 0
    executed: int = 0
    cache_hits: int = 0
    failures: list[PointFailure] = field(default_factory=list)
    elapsed: float = 0.0


class _Entry:
    """One point's dispatch record inside a run."""

    __slots__ = (
        "task_index", "point_index", "experiment", "params", "point",
        "seed", "cache_key",
    )

    def __init__(self, task_index, point_index, experiment, params, point, seed):
        self.task_index = task_index
        self.point_index = point_index
        self.experiment = experiment
        self.params = params
        self.point = point
        self.seed = seed
        self.cache_key: Optional[str] = None


class SweepRunner:
    """Fan independent sweep points out to processes, cached and seeded.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs points inline in this
        process — bit-identical to any parallel run, and the mode to
        use under a debugger.
    cache:
        A :class:`~repro.runner.cache.ResultCache`, or None to disable
        caching.  Only successful results are cached; a re-run of an
        unchanged (version, params, point, seed) tuple is free.
    timeout:
        Seconds to wait for one point's result before retrying/failing
        it, or None to wait forever.  Enforced only on pool runs.
    retries:
        Re-submissions after a point raises or times out.
    progress:
        True to print per-point progress/ETA lines to stderr, or a
        :class:`~repro.runner.progress.ProgressReporter` to customize.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        progress: Any = False,
        label: str = "sweep",
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.jobs = int(jobs)
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, int(retries))
        if isinstance(progress, ProgressReporter):
            self._reporter: Optional[ProgressReporter] = progress
        elif progress:
            self._reporter = ProgressReporter(label)
        else:
            self._reporter = None
        self.last_stats: Optional[SweepStats] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, experiment: Any, params: Any, *, seed: int = 0) -> Any:
        """Run one experiment's sweep and return its reduced payload."""
        return self.run_many([(experiment, params)], seed=seed)[0]

    def run_many(
        self, tasks: Sequence[tuple[Any, Any]], *, seed: int = 0
    ) -> list[Any]:
        """Run several sweeps as one flat dispatch; payloads in order.

        Points from every task share the worker pool, so e.g. the
        protocols of one figure (or several figures of an ``all`` run)
        parallelize against each other, not just within a sweep.
        """
        started = time.perf_counter()
        stats = SweepStats()
        all_points: list[list[Any]] = []
        results: list[list[Any]] = []
        entries: list[_Entry] = []
        for task_index, (experiment, params) in enumerate(tasks):
            points = list(experiment.points(params))
            labels = [p.label for p in points]
            if len(set(labels)) != len(labels):
                raise ValueError(
                    f"{experiment.id}: duplicate point labels in sweep"
                )
            all_points.append(points)
            results.append([None] * len(points))
            for point_index, point in enumerate(points):
                point_seed = derive_seed(seed, f"{experiment.id}/{point.label}")
                entries.append(
                    _Entry(task_index, point_index, experiment, params,
                           point, point_seed)
                )
        stats.total_points = len(entries)
        if self._reporter is not None:
            self._reporter.start(len(entries))

        pending: list[_Entry] = []
        for entry in entries:
            if self.cache is not None:
                entry.cache_key = self.cache.key(
                    entry.experiment.id, entry.params, entry.point, entry.seed
                )
                hit = self.cache.get(entry.cache_key)
                if hit is not None:
                    results[entry.task_index][entry.point_index] = hit
                    stats.cache_hits += 1
                    self._point_done(entry, cached=True)
                    continue
            pending.append(entry)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                self._run_inline(pending, results, stats)
            else:
                self._run_pool(pending, results, stats)

        stats.elapsed = time.perf_counter() - started
        if self._reporter is not None:
            self._reporter.finish()
        self.last_stats = stats
        if stats.failures:
            warnings.warn(
                f"{len(stats.failures)} sweep point(s) failed; "
                "payloads reduce a partial result set",
                RuntimeWarning,
                stacklevel=2,
            )
        return [
            experiment.reduce(params, points, task_results)
            for (experiment, params), points, task_results in zip(
                tasks, all_points, results
            )
        ]

    # ------------------------------------------------------------------
    # Resolution paths
    # ------------------------------------------------------------------
    def _record(self, entry: _Entry, value: Any, results, stats) -> None:
        results[entry.task_index][entry.point_index] = value
        stats.executed += 1
        if self.cache is not None and entry.cache_key is not None and value is not None:
            self.cache.put(entry.cache_key, value)
        self._point_done(entry)

    def _fail(self, entry: _Entry, error: str, attempts: int, stats) -> None:
        stats.failures.append(
            PointFailure(entry.experiment.id, entry.point.label, error, attempts)
        )
        self._point_done(entry, failed=True)

    def _point_done(self, entry: _Entry, cached=False, failed=False) -> None:
        if self._reporter is not None:
            self._reporter.point_done(entry.point.label, cached=cached, failed=failed)

    def _run_inline(self, pending, results, stats) -> None:
        for entry in pending:
            attempts = 0
            while True:
                attempts += 1
                try:
                    value = entry.experiment.run_point(
                        entry.params, entry.point, entry.seed
                    )
                except Exception as exc:  # noqa: BLE001 - degrade, don't die
                    if attempts > self.retries:
                        self._fail(
                            entry, f"{type(exc).__name__}: {exc}", attempts, stats
                        )
                        break
                    continue
                self._record(entry, value, results, stats)
                break

    def _run_pool(self, pending, results, stats) -> None:
        max_workers = min(self.jobs, len(pending))
        with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                id(entry): pool.submit(
                    _execute_point, entry.experiment.id, entry.params,
                    entry.point, entry.seed,
                )
                for entry in pending
            }
            for entry in pending:
                attempts = 0
                while True:
                    attempts += 1
                    future = futures[id(entry)]
                    error = None
                    try:
                        value = future.result(timeout=self.timeout)
                    except concurrent.futures.TimeoutError:
                        future.cancel()
                        error = f"timed out after {self.timeout}s"
                    except Exception as exc:  # noqa: BLE001
                        error = f"{type(exc).__name__}: {exc}"
                    if error is None:
                        self._record(entry, value, results, stats)
                        break
                    if attempts > self.retries:
                        self._fail(entry, error, attempts, stats)
                        break
                    try:
                        futures[id(entry)] = pool.submit(
                            _execute_point, entry.experiment.id, entry.params,
                            entry.point, entry.seed,
                        )
                    except Exception as exc:  # pool broken beyond repair
                        self._fail(
                            entry,
                            f"retry submission failed: {type(exc).__name__}: {exc}",
                            attempts,
                            stats,
                        )
                        break
