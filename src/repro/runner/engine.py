"""The sweep-execution engine.

:class:`SweepRunner` takes ``(experiment, params)`` tasks, enumerates
their :class:`~repro.experiments.base.Point` lists, and resolves every
point — from the cache when possible, otherwise on a pluggable
:class:`~repro.runner.backends.SweepBackend` (inline, process pool, or
shared-memory pool) — then folds the per-point results back through
each experiment's ``reduce``.

Determinism contract: each point's seed is derived from the root seed
and the point's ``"<experiment id>/<label>"`` name alone
(:func:`repro.sim.randomness.derive_seed`), and results are collected
by point index rather than completion or submission order.  A sweep
therefore produces bit-identical payloads for any worker count and any
backend, and protocol variants of the same experiment see matched
per-point draws (the same scenario randomness under every protocol, as
the paper's comparisons require).

Scheduling contract: when a cache is attached, the runner consults its
:class:`~repro.runner.cache.CostModel` — runtime history keyed on
``(experiment, params, label)`` but not seed — and submits predicted-
longest points first, shrinking a pool sweep's makespan (the classic
LPT heuristic).  Points without history keep submission order, so a
cold sweep behaves exactly as before.  Because merge is by point
index, reordering can never change payloads; ``schedule="fifo"``
disables it anyway for A/B timing.

Failure contract: every failed attempt is classified through the shared
:class:`~repro.runner.dispatch.retry.RetryPolicy` — *transient* faults
(worker crashes, broken pools, connection resets) are retried against a
separate, more generous budget than the point's own ``max_attempts``;
*timeouts* trigger speculative resubmission (the straggler keeps
running, and whichever earliest-submitted attempt completes
successfully wins, so the outcome does not depend on the race); and
*deterministic* errors retry with seeded exponential backoff until the
budget runs out.  A point that exhausts its budgets degrades to a
``None`` result; ``reduce`` receives the partial result set and the
failures — with their classification — are recorded on
:attr:`SweepRunner.last_stats`, split into :attr:`SweepStats.timeouts`
and :attr:`SweepStats.errors`.  Dispatch-terminal failures
(:class:`~repro.runner.dispatch.retry.QuarantinedPoint`,
:class:`~repro.runner.dispatch.retry.DispatchError`) are never retried
here: the dispatch backend already spent its own budgets on them.
Extra completed successes are counted in
:attr:`SweepStats.duplicate_results`.

Crash contract: give the runner a
:class:`~repro.runner.checkpoint.SweepCheckpoint` and every completed
point is journalled durably (flush + fsync) the moment it lands; after
a crash — including ``kill -9`` mid-sweep — re-running with
``resume=True`` replays the journalled points for free and executes
only the unfinished remainder, producing payloads identical to an
uninterrupted run.  The journal records which backend wrote it, but
resume accepts any backend: a sweep killed under ``shm`` can finish
under ``serial``.  ``KeyboardInterrupt`` is handled the same way but
gracefully: completed points are already on disk, and the runner raises
:class:`SweepInterrupted` carrying the partial payloads and stats so
callers can report before exiting non-zero.
"""

from __future__ import annotations

import concurrent.futures
import pickle
import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from repro.runner.backends import (
    LegacyExecutorBackend,
    PointSpec,
    ProcessPoolBackend,
    SerialBackend,
    SweepBackend,
    create_backend,
)
from repro.runner.cache import CostModel, ResultCache
from repro.runner.checkpoint import SweepCheckpoint, digest_params
from repro.runner.dispatch.retry import (
    DETERMINISTIC,
    TIMEOUT,
    TRANSIENT,
    DispatchError,
    QuarantinedPoint,
    RetryPolicy,
    classify_failure,
)
from repro.runner.progress import ProgressReporter
from repro.sim.randomness import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.base import Experiment, Point

__all__ = [
    "PointFailure",
    "SweepInterrupted",
    "SweepRunner",
    "SweepStats",
]


@dataclass
class PointFailure:
    """A point that produced no result after all attempts.

    ``kind`` is the final failure's classification: ``"timeout"``,
    ``"transient"`` (every attempt lost its worker), ``"quarantined"``
    (the dispatch backend proved the failure deterministic across two
    workers), or ``"deterministic"`` (the point's own exception).
    """

    experiment_id: str
    label: str
    error: str
    attempts: int
    kind: str = DETERMINISTIC


@dataclass
class SweepStats:
    """Bookkeeping for the last :meth:`SweepRunner.run_many` call."""

    total_points: int = 0
    executed: int = 0
    cache_hits: int = 0
    #: cache entries found corrupt during this sweep's lookups; each
    #: was discarded and re-executed.  Nonzero means the cache directory
    #: is damaged — distinguishable from an ordinary cold-cache miss.
    cache_corrupt: int = 0
    #: results that executed fine but could not be written back to the
    #: cache (full disk, permissions).  The sweep's payload is intact;
    #: only future reuse is lost.
    cache_write_errors: int = 0
    #: points replayed from the checkpoint journal instead of executed.
    resumed: int = 0
    #: straggler results that completed after another attempt for the
    #: same point had already won (kept-first determinism; see the
    #: failure contract in the module docstring).
    duplicate_results: int = 0
    #: True when the sweep was cut short by KeyboardInterrupt; the
    #: payloads reduce whatever completed before the interrupt.
    interrupted: bool = False
    #: name of the backend that executed the dispatched points ("" when
    #: everything resolved from the cache/journal).
    backend: str = ""
    #: points the cost-aware scheduler moved ahead of submission order.
    reordered: int = 0
    failures: list[PointFailure] = field(default_factory=list)
    elapsed: float = 0.0
    #: timeout events: points that ultimately failed by timing out,
    #: plus speculative duplicates the dispatch backend launched for
    #: overdue leases.
    timeouts: int = 0
    #: points that ultimately failed with an error (any non-timeout
    #: kind: deterministic exceptions, exhausted transient budgets,
    #: quarantines).
    errors: int = 0
    #: retries caused by environmental faults — worker crashes, broken
    #: pools, lease expiries — which never consume a point's own
    #: attempt budget.
    transient_retries: int = 0
    #: points the dispatch backend quarantined (same failure signature
    #: from two distinct workers); always ⊆ ``errors``.
    quarantined: int = 0
    #: dispatch leases forfeited because a worker stopped heartbeating.
    lease_expirations: int = 0


class SweepInterrupted(KeyboardInterrupt):
    """A sweep stopped early on Ctrl-C, carrying its partial outcome.

    Subclasses :class:`KeyboardInterrupt` so naive callers still unwind
    as an interrupt; careful callers catch this first and read
    :attr:`payloads` (one reduced payload per task, built from the
    points that finished) and :attr:`stats` before exiting non-zero.
    """

    def __init__(self, payloads: list[Any], stats: SweepStats) -> None:
        super().__init__("sweep interrupted")
        self.payloads = payloads
        self.stats = stats


class _Entry:
    """One point's dispatch record inside a run."""

    __slots__ = (
        "task_index", "point_index", "experiment", "params", "point",
        "seed", "cache_key", "params_digest",
    )

    def __init__(
        self,
        task_index: int,
        point_index: int,
        experiment: Experiment,
        params: Any,
        point: Point,
        seed: int,
        params_digest: str = "",
    ) -> None:
        self.task_index = task_index
        self.point_index = point_index
        self.experiment = experiment
        self.params = params
        self.point = point
        self.seed = seed
        self.cache_key: Optional[str] = None
        #: folded into the journal key: protocol variants of one
        #: experiment share labels *and* per-point seeds by design.
        self.params_digest = params_digest

    @property
    def journal_key(self) -> tuple[str, str, int, str]:
        return (self.experiment.id, self.point.label, self.seed,
                self.params_digest)

    @property
    def cost_key(self) -> str:
        return CostModel.key(
            self.experiment.id, self.point.label, self.params_digest
        )

    def spec(self) -> PointSpec:
        return PointSpec(
            experiment=self.experiment,
            experiment_id=self.experiment.id,
            params=self.params,
            point=self.point,
            seed=self.seed,
            params_digest=self.params_digest,
        )


class SweepRunner:
    """Fan independent sweep points out to a backend, cached and seeded.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs points inline in this
        process — bit-identical to any parallel run, and the mode to
        use under a debugger.
    cache:
        A :class:`~repro.runner.cache.ResultCache`, or None to disable
        caching.  Only successful results are cached; a re-run of an
        unchanged (version, params, point, seed) tuple is free.  The
        cache's cost ledger also feeds the cost-aware scheduler.
    timeout:
        Seconds to wait for one point's result before retrying/failing
        it, or None to wait forever.  Enforced only on pool backends.
    retries:
        Re-submissions after a point raises or times out.  Shorthand
        for the common case; ``retry_policy`` supersedes it.
    retry_policy:
        A :class:`~repro.runner.dispatch.retry.RetryPolicy` governing
        attempt budgets, the separate transient budget, and backoff
        with deterministic seeded jitter.  None derives a policy from
        ``retries`` with zero backoff delay — exactly the historical
        behavior.
    progress:
        True to print per-point progress/ETA lines to stderr, or a
        :class:`~repro.runner.progress.ProgressReporter` to customize.
    checkpoint:
        A :class:`~repro.runner.checkpoint.SweepCheckpoint` journalling
        every completed point durably, or None to disable.  Without
        ``resume`` the journal is truncated at the start of each run.
    resume:
        Replay points already in the checkpoint journal instead of
        executing them (requires ``checkpoint``).
    backend:
        The execution seam: a backend name (``"serial"``,
        ``"process"``, ``"shm"``), a
        :class:`~repro.runner.backends.SweepBackend` instance, or None
        to pick automatically (serial under ``jobs=1``, process pool
        otherwise).  ``"serial"`` ignores ``jobs``.
    schedule:
        ``"cost"`` (default) submits predicted-longest points first
        using the cache's runtime history; ``"fifo"`` keeps submission
        order.  Either way merged payloads are identical.
    executor_factory:
        Deprecated ``max_workers -> Executor`` seam; wrapped in a
        :class:`~repro.runner.backends.LegacyExecutorBackend`.  Pass
        ``backend=`` instead.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        progress: Any = False,
        label: str = "sweep",
        checkpoint: Optional[SweepCheckpoint] = None,
        resume: bool = False,
        backend: "str | SweepBackend | None" = None,
        schedule: str = "cost",
        executor_factory: Optional[
            Callable[[int], concurrent.futures.Executor]
        ] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint")
        if schedule not in ("cost", "fifo"):
            raise ValueError(f"unknown schedule {schedule!r} (use 'cost' or 'fifo')")
        self.jobs = int(jobs)
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, int(retries))
        #: the classification/backoff policy; the legacy ``retries``
        #: knob derives one with no backoff so existing sweeps keep
        #: their exact timing.
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_attempts=self.retries + 1, base_delay=0.0, jitter=0.0
            )
        )
        if isinstance(progress, ProgressReporter):
            self._reporter: Optional[ProgressReporter] = progress
        elif progress:
            self._reporter = ProgressReporter(label)
        else:
            self._reporter = None
        self.checkpoint = checkpoint
        self.resume = bool(resume)
        self.schedule = schedule
        if executor_factory is not None:
            if backend is not None:
                raise ValueError(
                    "pass either backend= or the deprecated executor_factory=, "
                    "not both"
                )
            warnings.warn(
                "SweepRunner(executor_factory=...) is deprecated; pass "
                "backend=LegacyExecutorBackend(factory) — or one of the "
                "first-class backends ('serial', 'process', 'shm') — instead",
                DeprecationWarning,
                stacklevel=2,
            )
            backend = LegacyExecutorBackend(executor_factory)
        self.executor_factory = executor_factory
        if isinstance(backend, str):
            backend = create_backend(backend)
        if backend is not None and not isinstance(backend, SweepBackend):
            raise TypeError(
                "backend must be a SweepBackend instance, a backend name, "
                f"or None, not {type(backend).__name__}"
            )
        #: the declared backend; None means auto (serial under jobs=1,
        #: process pool otherwise, inline shortcut for 1-point batches).
        self.backend = backend
        self.last_stats: Optional[SweepStats] = None
        #: set after the first run_many touches the journal, so an
        #: ``all``-style sequence of calls shares one journal (only the
        #: first non-resume call truncates it).
        self._checkpoint_used = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, experiment: Any, params: Any, *, seed: int = 0) -> Any:
        """Run one experiment's sweep and return its reduced payload.

        Exactly a one-task :meth:`run_many`: both paths normalize
        points, schedule, and dispatch through the same backend code.
        """
        return self.run_many([(experiment, params)], seed=seed)[0]

    def run_many(
        self, tasks: Sequence[tuple[Any, Any]], *, seed: int = 0
    ) -> list[Any]:
        """Run several sweeps as one flat dispatch; payloads in order.

        Points from every task share the worker pool, so e.g. the
        protocols of one figure (or several figures of an ``all`` run)
        parallelize against each other, not just within a sweep.
        """
        started = time.perf_counter()
        stats = SweepStats()
        all_points: list[list[Any]] = []
        results: list[list[Any]] = []
        entries: list[_Entry] = []
        need_digest = self.checkpoint is not None or self.cache is not None
        for task_index, (experiment, params) in enumerate(tasks):
            points = self._normalize_points(experiment, params)
            all_points.append(points)
            results.append([None] * len(points))
            digest = digest_params(params) if need_digest else ""
            for point_index, point in enumerate(points):
                point_seed = derive_seed(seed, f"{experiment.id}/{point.label}")
                entries.append(
                    _Entry(task_index, point_index, experiment, params,
                           point, point_seed, digest)
                )
        stats.total_points = len(entries)
        if self._reporter is not None:
            self._reporter.start(len(entries))

        journalled: dict[tuple[str, str, int, str], Any] = {}
        if self.checkpoint is not None:
            if self.resume or self._checkpoint_used:
                journalled = self.checkpoint.load()
            else:
                # A fresh sweep must not inherit another run's records.
                self.checkpoint.reset()
            self._checkpoint_used = True

        pending: list[_Entry] = []
        corrupt_before = self.cache.corrupt if self.cache is not None else 0
        for entry in entries:
            if journalled and entry.journal_key in journalled:
                value = journalled[entry.journal_key]
                results[entry.task_index][entry.point_index] = value
                stats.resumed += 1
                self._point_done(entry, cached=True)
                continue
            if self.cache is not None:
                entry.cache_key = self.cache.key(
                    entry.experiment.id, entry.params, entry.point, entry.seed
                )
                hit = self.cache.get(entry.cache_key)
                if hit is not None:
                    results[entry.task_index][entry.point_index] = hit
                    stats.cache_hits += 1
                    # A cache hit still lands in the journal: a later
                    # --resume must not depend on the shared cache
                    # retaining the entry.
                    self._journal(entry, hit)
                    self._point_done(entry, cached=True)
                    continue
            pending.append(entry)
        if self.cache is not None:
            stats.cache_corrupt = self.cache.corrupt - corrupt_before

        interrupted = False
        if pending:
            try:
                self._dispatch(pending, results, stats)
            except KeyboardInterrupt:
                interrupted = True
            finally:
                if self.cache is not None:
                    self.cache.costs.flush()

        stats.elapsed = time.perf_counter() - started
        stats.interrupted = interrupted
        if self._reporter is not None:
            self._reporter.finish()
        self.last_stats = stats
        if stats.failures and not interrupted:
            warnings.warn(
                f"{len(stats.failures)} sweep point(s) failed; "
                "payloads reduce a partial result set",
                RuntimeWarning,
                stacklevel=2,
            )
        payloads: list[Any] = []
        for (experiment, params), points, task_results in zip(
            tasks, all_points, results
        ):
            if interrupted:
                # Best-effort partials: a reduce written for complete
                # sweeps may choke on the holes; the journal already
                # holds everything needed to resume either way.
                try:
                    payloads.append(experiment.reduce(params, points, task_results))
                except Exception as exc:  # noqa: BLE001
                    warnings.warn(
                        f"{experiment.id}: reduce failed on the partial "
                        f"result set ({type(exc).__name__}: {exc}); "
                        "payload replaced with None",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    payloads.append(None)
            else:
                payloads.append(experiment.reduce(params, points, task_results))
        if interrupted:
            raise SweepInterrupted(payloads, stats)
        return payloads

    # ------------------------------------------------------------------
    # Normalization and scheduling
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_points(experiment: Any, params: Any) -> list[Any]:
        """Enumerate and validate one task's points (shared by run and
        run_many — there is exactly one normalization path)."""
        points = list(experiment.points(params))
        labels = [p.label for p in points]
        if len(set(labels)) != len(labels):
            raise ValueError(
                f"{experiment.id}: duplicate point labels in sweep"
            )
        return points

    def _ordered(self, pending: list[_Entry], stats: SweepStats) -> list[_Entry]:
        """Apply the cost-aware schedule: predicted-longest first.

        Points without history keep submission order ahead of ranked
        ones (they could be arbitrarily long, and a cold sweep must
        behave exactly like FIFO).  Reordering is submission-side only;
        results are merged by point index regardless.
        """
        if self.schedule != "cost" or self.cache is None or len(pending) < 2:
            return pending
        costs = self.cache.costs
        ranked: list[tuple[int, float, int, _Entry]] = []
        for index, entry in enumerate(pending):
            predicted = costs.predict(entry.cost_key)
            if predicted is None:
                ranked.append((0, 0.0, index, entry))
            else:
                ranked.append((1, -predicted, index, entry))
        ranked.sort(key=lambda item: item[:3])
        ordered = [item[3] for item in ranked]
        stats.reordered = sum(
            1 for before, after in zip(pending, ordered) if before is not after
        )
        return ordered

    def _resolve_backend(self, n_pending: int) -> SweepBackend:
        if self.backend is not None:
            return self.backend
        if self.jobs == 1 or n_pending == 1:
            return SerialBackend()
        return ProcessPoolBackend()

    # ------------------------------------------------------------------
    # Resolution paths
    # ------------------------------------------------------------------
    def _journal(self, entry: _Entry, value: Any) -> None:
        if self.checkpoint is not None and value is not None:
            self.checkpoint.record(
                entry.experiment.id, entry.point.label, entry.seed, value,
                params_digest=entry.params_digest,
            )

    def _record(
        self,
        entry: _Entry,
        seconds: Optional[float],
        value: Any,
        results: list[list[Any]],
        stats: SweepStats,
    ) -> None:
        results[entry.task_index][entry.point_index] = value
        stats.executed += 1
        if self.cache is not None:
            if entry.cache_key is not None and value is not None:
                try:
                    self.cache.put(entry.cache_key, value)
                except (OSError, pickle.PicklingError) as exc:
                    # The point already ran; losing the cache write only
                    # costs a future re-execution.  Say so once per
                    # point instead of failing the sweep or going quiet.
                    stats.cache_write_errors += 1
                    warnings.warn(
                        f"cache write failed for {entry.experiment.id}/"
                        f"{entry.point.label} ({type(exc).__name__}: {exc})",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            if seconds is not None:
                self.cache.costs.observe(entry.cost_key, seconds)
        self._journal(entry, value)
        self._point_done(entry)

    def _fail(
        self,
        entry: _Entry,
        error: str,
        attempts: int,
        stats: SweepStats,
        kind: str = DETERMINISTIC,
    ) -> None:
        stats.failures.append(
            PointFailure(
                entry.experiment.id, entry.point.label, error, attempts, kind
            )
        )
        if kind == TIMEOUT:
            stats.timeouts += 1
        else:
            stats.errors += 1
        self._point_done(entry, failed=True, kind=kind)

    def _point_done(
        self,
        entry: _Entry,
        cached: bool = False,
        failed: bool = False,
        kind: str = "",
    ) -> None:
        if self._reporter is not None:
            self._reporter.point_done(
                entry.point.label, cached=cached, failed=failed, kind=kind
            )

    @staticmethod
    def _terminal_kind(exc: BaseException) -> Optional[str]:
        """The failure kind for dispatch-terminal exceptions, else None.

        The dispatch backend already spent its own retry/transient
        budgets before raising these; wrapping another retry loop
        around them would multiply budgets, so the engine records them
        and moves on.
        """
        if isinstance(exc, QuarantinedPoint):
            return "quarantined"
        if isinstance(exc, DispatchError):
            return DETERMINISTIC
        return None

    def _merge_backend_stats(
        self, backend: SweepBackend, stats: SweepStats
    ) -> None:
        """Fold a backend's internal counters into the sweep stats."""
        collect = getattr(backend, "collect_stats", None)
        if not callable(collect):
            return
        collected = collect()
        stats.transient_retries += int(collected.get("transient_retries", 0))
        stats.lease_expirations += int(collected.get("lease_expirations", 0))
        stats.timeouts += int(collected.get("timeouts", 0))
        stats.quarantined += int(collected.get("quarantined", 0))
        stats.duplicate_results += int(collected.get("duplicate_results", 0))

    def _dispatch(
        self,
        pending: list[_Entry],
        results: list[list[Any]],
        stats: SweepStats,
    ) -> None:
        """Order, then execute every pending entry on the backend."""
        backend = self._resolve_backend(len(pending))
        pending = self._ordered(pending, stats)
        stats.backend = backend.name
        # Open before the header write: a dispatch backend only knows
        # its worker roster once the fleet is up, and the journal header
        # should name the fleet that wrote the records after it.
        backend.open(min(self.jobs, len(pending)))
        if self.checkpoint is not None:
            self.checkpoint.write_header(
                backend=backend.name,
                jobs=self.jobs,
                schedule=self.schedule,
                workers=getattr(backend, "worker_roster", ()),
            )
        try:
            if backend.inline:
                self._drain_inline(backend, pending, results, stats)
            else:
                self._drain_pool(backend, pending, results, stats)
        finally:
            self._merge_backend_stats(backend, stats)

    def _drain_inline(
        self,
        backend: SweepBackend,
        pending: list[_Entry],
        results: list[list[Any]],
        stats: SweepStats,
    ) -> None:
        """Lazy submission for inline backends: each point's result is
        recorded (and journalled) before the next point starts."""
        policy = self.retry_policy
        for entry in pending:
            schedule = policy.schedule(
                f"{entry.experiment.id}/{entry.point.label}"
            )
            failed_attempts = 0
            transient_used = 0
            total_attempts = 0
            while True:
                total_attempts += 1
                # KeyboardInterrupt propagates out of submit: completed
                # points are already durable, the rest never started.
                future = backend.submit(entry.spec())
                exc = future.exception()
                if exc is None:
                    seconds, value = future.result()
                    self._record(entry, seconds, value, results, stats)
                    break
                error = f"{type(exc).__name__}: {exc}"
                terminal = self._terminal_kind(exc)
                if terminal is not None:
                    self._fail(entry, error, total_attempts, stats,
                               kind=terminal)
                    break
                kind = classify_failure(exc)
                if kind == TRANSIENT:
                    # Environmental faults draw on the transient budget,
                    # never the point's own attempts.
                    if policy.allows_transient(transient_used):
                        transient_used += 1
                        stats.transient_retries += 1
                        continue
                    self._fail(entry, error, total_attempts, stats,
                               kind=TRANSIENT)
                    break
                failed_attempts += 1
                if policy.allows(failed_attempts + 1):
                    delay = schedule.delay(failed_attempts)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                self._fail(entry, error, total_attempts, stats, kind=kind)
                break

    def _drain_pool(
        self,
        backend: SweepBackend,
        pending: list[_Entry],
        results: list[list[Any]],
        stats: SweepStats,
    ) -> None:
        #: (entry, future) pairs still in flight after their entry was
        #: already decided — stragglers whose eventual successes are
        #: counted as duplicates, never recorded.
        leftovers: list[tuple[_Entry, concurrent.futures.Future]] = []
        try:
            # All attempts for an entry, in submission order.  The list
            # only grows (stragglers are never discarded), so "earliest
            # successful submission" is a deterministic choice however
            # the straggler/retry race resolves.
            futures: dict[int, list[concurrent.futures.Future]] = {
                id(entry): [backend.submit(entry.spec())]
                for entry in pending
            }
            policy = self.retry_policy
            for entry in pending:
                attempts = futures[id(entry)]
                #: futures whose failure has already been classified —
                #: each failed attempt must be charged to a budget
                #: exactly once, however many drain iterations see it.
                counted: set[int] = set()
                last_error: Optional[str] = None
                last_kind: str = DETERMINISTIC
                transient_used = 0
                terminal = False
                while True:
                    # Wait only on attempts not yet finished — waiting on
                    # the full list would return immediately forever once
                    # one attempt has failed.
                    unfinished = [f for f in attempts if not f.done()]
                    progressed = False
                    if unfinished:
                        done_now = backend.drain(unfinished, timeout=self.timeout)
                        progressed = bool(done_now)
                    winner = None
                    transient_new = 0
                    failed_new = 0
                    for future in attempts:  # submission order
                        if not future.done() or future.cancelled():
                            continue
                        exc = future.exception()
                        if exc is None:
                            if winner is None:
                                winner = future
                            else:
                                stats.duplicate_results += 1
                            continue
                        if id(future) in counted:
                            continue
                        counted.add(id(future))
                        last_error = f"{type(exc).__name__}: {exc}"
                        terminal_kind = self._terminal_kind(exc)
                        if terminal_kind is not None:
                            last_kind = terminal_kind
                            terminal = True
                            continue
                        last_kind = classify_failure(exc)
                        if last_kind == TRANSIENT:
                            transient_new += 1
                        else:
                            failed_new += 1
                    if winner is not None:
                        seconds, value = winner.result()
                        self._record(entry, seconds, value, results, stats)
                        leftovers.extend(
                            (entry, future) for future in attempts
                            if not future.done()
                        )
                        break
                    if terminal:
                        # The dispatch backend already spent its own
                        # budgets on this point — record and move on.
                        for future in attempts:
                            if not future.done():
                                future.cancel()
                        self._fail(entry, last_error or "dispatch failure",
                                   len(attempts), stats, kind=last_kind)
                        break
                    timed_out = bool(unfinished) and not progressed
                    if timed_out:
                        last_error = f"timed out after {self.timeout}s"
                        last_kind = TIMEOUT
                    resubmit = False
                    if transient_new and policy.allows_transient(transient_used):
                        # Environmental faults (worker death, broken
                        # pool) draw on the transient budget, never the
                        # point's own attempts.
                        transient_used += 1
                        stats.transient_retries += 1
                        resubmit = True
                    elif failed_new or timed_out:
                        # Attempts charged against the point's own
                        # budget exclude the transient ones above —
                        # exactly the historical `attempts <= retries`
                        # gate when no transients occurred.
                        budget_used = len(attempts) - transient_used
                        resubmit = policy.allows(budget_used + 1)
                    if resubmit:
                        # No backoff sleep here: it would serialize the
                        # drain loop across unrelated entries.  The
                        # dispatch backend delays its internal retries;
                        # pool retries go straight back to a free slot.
                        try:
                            attempts.append(backend.submit(entry.spec()))
                        except Exception as exc:  # pool broken beyond repair
                            self._fail(
                                entry,
                                f"retry submission failed: "
                                f"{type(exc).__name__}: {exc}",
                                len(attempts),
                                stats,
                            )
                            break
                        continue
                    still_running = [f for f in attempts if not f.done()]
                    if still_running and not timed_out:
                        # Submissions exhausted; an attempt just failed
                        # but stragglers remain in flight.  Grant them
                        # another timeout window — a late success still
                        # wins over a recorded failure.
                        continue
                    for future in still_running:
                        future.cancel()
                    self._fail(entry, last_error or "no result",
                               len(attempts), stats, kind=last_kind)
                    break
        except KeyboardInterrupt:
            # Don't block the Ctrl-C on stragglers: drop queued work and
            # leave without waiting for running futures.
            backend.close(wait=False, cancel_futures=True)
            raise
        else:
            if leftovers:
                # The backend shutdown below waits for these anyway;
                # count the straggler successes the race would have
                # discarded.
                concurrent.futures.wait([future for _, future in leftovers])
                for _, future in leftovers:
                    if (future.done() and not future.cancelled()
                            and future.exception() is None):
                        stats.duplicate_results += 1
            backend.close(wait=True)
