"""Crash-safe sweep checkpointing.

A :class:`SweepCheckpoint` is an append-only JSONL journal kept next to
the :class:`~repro.runner.cache.ResultCache`: every completed sweep
point is appended as one line — experiment id, point label, derived
seed, and the result as a base64-wrapped pickle (pickled for the same
reason the cache pickles: floats must round-trip *exactly*, so a
resumed sweep reduces to byte-identical payloads).  Each record is
flushed **and fsynced** before ``record()`` returns, so a ``kill -9``
(or power loss) can destroy at most the line being written.

``load()`` tolerates exactly that failure mode: a torn final line — or
any line whose JSON/base64/pickle does not parse — is skipped rather
than poisoning the resume.  Records are keyed on
``(experiment_id, label, seed, params_digest)`` — the digest matters
because protocol variants of one experiment deliberately share
per-point seeds (matched draws), so id/label/seed alone would collide
across the tasks of one sweep.  When a journal holds several records
for one key (e.g. two interrupted runs), the last wins, matching
append-order semantics.

The journal deliberately does **not** reuse the result cache: the cache
is keyed on the package *version* and shared across sweeps, while a
checkpoint belongs to one invocation and must survive exactly as
written — including results for parameter combinations the cache was
disabled for.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Optional, TextIO

__all__ = ["JOURNAL_SCHEMA", "SweepCheckpoint", "digest_params"]

#: schema id carried by journal header lines.  A header records which
#: execution backend (and jobs/schedule configuration) produced the
#: run's records; resume accepts any backend — the journal format is
#: backend-independent, so a sweep killed under ``shm`` can resume
#: under ``serial`` and vice versa.  Headers are append-only like every
#: other line: a resumed run appends a fresh header, and ``load()``
#: keeps the last one seen (the configuration that wrote the tail).
JOURNAL_SCHEMA = "repro-sweep-journal/1"

#: key addressing one completed point inside a journal:
#: ``(experiment_id, label, seed, params_digest)``.
PointKey = tuple[str, str, int, str]


def digest_params(params: Any) -> str:
    """A short stable fingerprint of a params dataclass.

    Folded into the journal key so two tasks of one sweep that share an
    experiment id, point labels, and (deliberately matched) seeds — the
    protocol variants of a figure — cannot overwrite each other's
    journal records.
    """
    from repro.experiments.store import to_jsonable

    material = json.dumps(
        to_jsonable(params), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


class SweepCheckpoint:
    """Append-only JSONL journal of completed sweep-point results."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path).expanduser()
        self.records_written = 0
        #: the last header line ``load()`` saw (None for journals from
        #: before headers existed — they resume fine regardless).
        self.header: Optional[dict] = None
        self._fh: Optional[TextIO] = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(
        self,
        experiment_id: str,
        label: str,
        seed: int,
        value: Any,
        params_digest: str = "",
    ) -> None:
        """Append one completed point; durable when this returns."""
        line = json.dumps(
            {
                "experiment": experiment_id,
                "label": label,
                "seed": seed,
                "params": params_digest,
                "result": base64.b64encode(
                    pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                ).decode("ascii"),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        fh = self._open()
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
        self.records_written += 1

    def write_header(
        self,
        backend: str = "",
        jobs: int = 0,
        schedule: str = "",
        workers: "tuple[str, ...] | list[str]" = (),
    ) -> None:
        """Append a header naming the run's execution configuration.

        Purely informational for ``load()`` (resume works across
        backends); durable like every record so a crashed run's journal
        still says what produced it.  ``workers`` is the dispatch
        backend's fleet roster — empty for single-host backends — so a
        post-mortem of a chaos-interrupted sweep can say which worker
        processes existed when the journal was written.
        """
        header: dict[str, Any] = {
            "schema": JOURNAL_SCHEMA,
            "backend": backend,
            "jobs": int(jobs),
            "schedule": schedule,
        }
        if workers:
            header["workers"] = list(workers)
        line = json.dumps(
            header,
            sort_keys=True,
            separators=(",", ":"),
        )
        fh = self._open()
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())

    def reset(self) -> None:
        """Truncate the journal: a fresh (non-resumed) sweep starts empty
        so stale records from an earlier run can never leak into it."""
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8"):
            pass

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> dict[PointKey, Any]:
        """Completed points, keyed ``(id, label, seed, params_digest)``.

        Returns an empty mapping when the journal does not exist.  Torn
        or corrupt lines (the tail a crash cut short) are skipped; later
        records for a repeated key override earlier ones.
        """
        completed: dict[PointKey, Any] = {}
        try:
            fh = self.path.open("r", encoding="utf-8")
        except FileNotFoundError:
            return completed
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    if (
                        isinstance(doc, dict)
                        and doc.get("schema") == JOURNAL_SCHEMA
                    ):
                        self.header = doc
                        continue
                    key = (
                        str(doc["experiment"]),
                        str(doc["label"]),
                        int(doc["seed"]),
                        str(doc.get("params", "")),
                    )
                    value = pickle.loads(base64.b64decode(doc["result"]))
                except (ValueError, KeyError, TypeError, binascii.Error,
                        pickle.UnpicklingError, EOFError, AttributeError,
                        ImportError, IndexError):
                    continue  # torn tail or foreign garbage: not resumable
                completed[key] = value
        return completed

    # ------------------------------------------------------------------
    def _open(self) -> TextIO:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        return self._fh
