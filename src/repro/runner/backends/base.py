"""The :class:`SweepBackend` protocol and shared point execution.

A backend is the execution seam of :class:`~repro.runner.engine.SweepRunner`:
the runner decides *what* to run (entries, seeds, retries, journalling,
merge order) and the backend decides *where and how* one point executes
(inline, on a process pool, with shared-memory result transport, on a
user-supplied executor).  The contract is deliberately small:

``open(max_workers)``
    Acquire workers.  Called once per dispatch; a backend instance may
    be reopened for the next dispatch after ``close()``.
``submit(spec) -> Future``
    Schedule one :class:`PointSpec`.  The returned future — any object
    satisfying the :class:`concurrent.futures.Future` interface —
    resolves to a ``(seconds, value)`` pair: the point's measured
    runtime (feeding the cost-aware scheduler) and its result.  Inline
    backends (``inline = True``) execute *during* ``submit`` and return
    an already-completed future; the runner then submits lazily, one
    point at a time, so each result is journalled before the next point
    starts.
``drain(futures, timeout) -> done``
    Block until at least one of ``futures`` completes (or ``timeout``
    elapses); return the completed subset.  The default wraps
    :func:`concurrent.futures.wait`.
``close(wait, cancel_futures)``
    Release workers.  ``cancel_futures`` drops queued work on
    interrupt.

Capability flags let the runner (and tests) reason about a backend
without isinstance checks: ``inline`` (executes in-process at submit
time), ``supports_cancellation`` (in-flight futures can be cancelled),
and ``supports_shared_memory`` (bulk result bytes bypass the pickle
pipe).

Whatever the backend, the runner's determinism contract holds: results
are merged by point index with earliest-submitted-success semantics, so
every backend produces byte-identical payloads for the same
seed/params.
"""

from __future__ import annotations

import abc
import concurrent.futures
import os
import time
from dataclasses import dataclass
from typing import Any, Iterable, Optional

__all__ = [
    "PointSpec",
    "SweepBackend",
    "execute_point",
    "resolve_experiment",
]


@dataclass
class PointSpec:
    """Everything a backend needs to execute one sweep point.

    ``experiment`` is the live object (inline backends call it
    directly, so experiments never need to be registered for serial
    runs); ``experiment_id`` is what crosses a process boundary —
    either a registry id or a ``"module:attribute"`` path resolvable by
    :func:`resolve_experiment`.  ``cost`` is the scheduler's predicted
    runtime in seconds (None when unknown); backends may use it as a
    placement hint but must not let it affect results.
    """

    experiment: Any
    experiment_id: str
    params: Any
    point: Any
    seed: int
    params_digest: str = ""
    cost: Optional[float] = None


def resolve_experiment(experiment_id: str) -> Any:
    """Resolve an experiment for a worker process.

    Registry ids (:mod:`repro.experiments.registry`) are tried first;
    an id shaped like ``"package.module:ATTRIBUTE"`` falls back to an
    import, so synthetic experiments (benchmarks, plugins) can cross
    the pool boundary without polluting the figure registry.
    """
    from repro.experiments import registry

    try:
        return registry.get(experiment_id)
    except KeyError:
        if ":" not in experiment_id:
            raise
    module_name, _, attribute = experiment_id.partition(":")
    import importlib

    obj = getattr(importlib.import_module(module_name), attribute)
    return obj() if isinstance(obj, type) else obj


def _trace_capture() -> Any:
    """:mod:`repro.obs.capture` when ``REPRO_TRACE`` is set, else None.

    The env check happens *before* the import so an untraced sweep never
    loads the observability layer (in workers or inline).
    """
    if not os.environ.get("REPRO_TRACE", "").strip():
        return None
    from repro.obs import capture

    return capture


def execute_point(
    experiment: Any, params: Any, point: Any, seed: int, params_digest: str = ""
) -> Any:
    """Run one point in this process, honoring flight-recorder capture.

    When tracing is on (``REPRO_TRACE``), the simulators this point
    constructs register telemetry buses process-locally; their records
    are exported to the point's trace file here, in the executing
    process, so nothing extra crosses a pool boundary.  A failed
    attempt discards its partial capture — only the successful run's
    trace survives.
    """
    capture = _trace_capture()
    if capture is None:
        return experiment.run_point(params, point, seed)
    capture.discard_active()  # drop any stale buses from a prior attempt
    try:
        value = experiment.run_point(params, point, seed)
    except BaseException:
        capture.discard_active()
        raise
    if not params_digest:
        from repro.runner.checkpoint import digest_params

        params_digest = digest_params(params)
    capture.export_point_trace(experiment.id, point.label, seed, params_digest)
    return value


def _timed_execute(
    experiment: Any, params: Any, point: Any, seed: int, params_digest: str = ""
) -> tuple[float, Any]:
    """``execute_point`` wrapped in the ``(seconds, value)`` contract."""
    started = time.perf_counter()
    value = execute_point(experiment, params, point, seed, params_digest)
    return time.perf_counter() - started, value


class SweepBackend(abc.ABC):
    """Where and how sweep points execute; see the module docstring."""

    #: short id used in journal headers, stats, and the CLI.
    name: str = "abstract"
    #: True when ``submit`` executes the point before returning; the
    #: runner then submits lazily so each result lands durably before
    #: the next point starts.
    inline: bool = False
    #: True when in-flight futures honor ``cancel()``.
    supports_cancellation: bool = False
    #: True when bulk result bytes bypass the pickle pipe.
    supports_shared_memory: bool = False

    def open(self, max_workers: int) -> None:
        """Acquire up to ``max_workers`` workers for one dispatch."""

    @abc.abstractmethod
    def submit(self, spec: PointSpec) -> "concurrent.futures.Future[tuple[float, Any]]":
        """Schedule one point; the future resolves to ``(seconds, value)``."""

    def drain(
        self,
        futures: Iterable["concurrent.futures.Future[tuple[float, Any]]"],
        timeout: Optional[float] = None,
    ) -> "set[concurrent.futures.Future[tuple[float, Any]]]":
        """Wait until at least one future completes; return the done set."""
        done, _ = concurrent.futures.wait(
            list(futures),
            timeout=timeout,
            return_when=concurrent.futures.FIRST_COMPLETED,
        )
        return done

    def close(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Release workers; with ``cancel_futures`` drop queued work."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"
