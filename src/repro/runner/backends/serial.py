"""In-process execution: the zero-overhead debugging backend."""

from __future__ import annotations

import concurrent.futures
from typing import Any

from repro.runner.backends.base import PointSpec, SweepBackend, _timed_execute

__all__ = ["SerialBackend"]


class SerialBackend(SweepBackend):
    """Run every point inline in the calling process.

    ``submit`` executes the point before returning (``inline = True``),
    so the runner journals each result before starting the next point —
    exactly the crash-safety profile of the historical ``jobs=1`` path.
    There is no pickling, no worker pool, and no registry requirement:
    the live experiment object on the :class:`PointSpec` is called
    directly, which is why this is the default under ``--jobs 1`` and
    the mode to use inside a debugger.

    Control-flow exceptions — ``KeyboardInterrupt``, ``SystemExit``,
    ``GeneratorExit`` — propagate out of ``submit`` rather than being
    captured on the future: capturing them would feed an interpreter-
    level "stop now" into the retry loop as if it were a point failure
    (re-running a point the user just cancelled, or swallowing a
    ``sys.exit`` from experiment code).  Propagating preserves the
    runner's graceful-interrupt contract — completed points already
    durable, partial payloads raised as ``SweepInterrupted``.
    """

    name = "serial"
    inline = True

    def submit(
        self, spec: PointSpec
    ) -> "concurrent.futures.Future[tuple[float, Any]]":
        future: "concurrent.futures.Future[tuple[float, Any]]" = (
            concurrent.futures.Future()
        )
        future.set_running_or_notify_cancel()
        try:
            outcome = _timed_execute(
                spec.experiment, spec.params, spec.point, spec.seed,
                spec.params_digest,
            )
        except (KeyboardInterrupt, SystemExit, GeneratorExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - runner owns retry policy
            future.set_exception(exc)
        else:
            future.set_result(outcome)
        return future
