"""Pluggable execution backends for :class:`~repro.runner.engine.SweepRunner`.

Three first-class implementations ship with the runner:

========== ===================================================================
``serial``  in-process, zero overhead, no registry requirement — the
            debugging default under ``--jobs 1``
``process`` :class:`~concurrent.futures.ProcessPoolExecutor` fan-out with
            pickle result transport — the parallel default
``shm``     process pool whose bulk result payloads travel through
            ``multiprocessing.shared_memory`` segments instead of the
            pickle pipe — for trace-heavy sweeps
========== ===================================================================

plus :class:`LegacyExecutorBackend`, the adapter behind the deprecated
``SweepRunner(executor_factory=...)`` kwarg.  All backends honor the
same determinism contract: byte-identical merged payloads for any
backend and any ``--jobs``.  See :class:`~repro.runner.backends.base.SweepBackend`
for the protocol and CONTRIBUTING.md for how to implement one (the seam
future multi-host dispatchers plug into).
"""

from repro.runner.backends.base import (
    PointSpec,
    SweepBackend,
    execute_point,
    resolve_experiment,
)
from repro.runner.backends.pool import LegacyExecutorBackend, ProcessPoolBackend
from repro.runner.backends.serial import SerialBackend
from repro.runner.backends.shm import SharedMemoryBackend

__all__ = [
    "BACKENDS",
    "LegacyExecutorBackend",
    "PointSpec",
    "ProcessPoolBackend",
    "SerialBackend",
    "SharedMemoryBackend",
    "SweepBackend",
    "create_backend",
    "execute_point",
    "resolve_experiment",
]

#: name -> class, the CLI's ``--backend`` choices.
BACKENDS: dict[str, type[SweepBackend]] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    SharedMemoryBackend.name: SharedMemoryBackend,
}


def create_backend(name: str, **kwargs: object) -> SweepBackend:
    """Instantiate a named backend (``serial`` / ``process`` / ``shm``)."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown sweep backend {name!r} (known: {known})") from None
    return cls(**kwargs)  # type: ignore[arg-type]
