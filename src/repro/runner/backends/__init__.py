"""Pluggable execution backends for :class:`~repro.runner.engine.SweepRunner`.

Four first-class implementations ship with the runner:

============ =================================================================
``serial``    in-process, zero overhead, no registry requirement — the
              debugging default under ``--jobs 1``
``process``   :class:`~concurrent.futures.ProcessPoolExecutor` fan-out with
              pickle result transport — the parallel default
``shm``       process pool whose bulk result payloads travel through
              ``multiprocessing.shared_memory`` segments instead of the
              pickle pipe — for trace-heavy sweeps
``dispatch``  fault-tolerant multi-host fleet over a socket frame
              protocol: worker leases, error-classified retry,
              quarantine, per-host circuit breakers
              (:mod:`repro.runner.dispatch`)
============ =================================================================

plus :class:`LegacyExecutorBackend`, the adapter behind the deprecated
``SweepRunner(executor_factory=...)`` kwarg.  All backends honor the
same determinism contract: byte-identical merged payloads for any
backend and any ``--jobs``.  See :class:`~repro.runner.backends.base.SweepBackend`
for the protocol and CONTRIBUTING.md for how to implement one.

``dispatch`` is registered lazily: naming it in :func:`create_backend`
(or ``--backend dispatch``) imports the fleet machinery on demand, so
single-process sweeps never pay for sockets and subprocess plumbing —
and the import graph stays acyclic (the dispatch package itself builds
on :mod:`repro.runner.backends.base`).
"""

from repro.runner.backends.base import (
    PointSpec,
    SweepBackend,
    execute_point,
    resolve_experiment,
)
from repro.runner.backends.pool import LegacyExecutorBackend, ProcessPoolBackend
from repro.runner.backends.serial import SerialBackend
from repro.runner.backends.shm import SharedMemoryBackend

__all__ = [
    "BACKENDS",
    "LAZY_BACKENDS",
    "LegacyExecutorBackend",
    "PointSpec",
    "ProcessPoolBackend",
    "SerialBackend",
    "SharedMemoryBackend",
    "SweepBackend",
    "create_backend",
    "execute_point",
    "resolve_experiment",
]

#: name -> class, the CLI's ``--backend`` choices.
BACKENDS: dict[str, type[SweepBackend]] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    SharedMemoryBackend.name: SharedMemoryBackend,
}

#: backends resolved by import on first use (see module docstring).
LAZY_BACKENDS: tuple[str, ...] = ("dispatch",)


def create_backend(name: str, **kwargs: object) -> SweepBackend:
    """Instantiate a named backend (``serial``/``process``/``shm``/``dispatch``)."""
    if name in LAZY_BACKENDS:
        from repro.runner.backends.dispatch import load_dispatch_backend

        return load_dispatch_backend()(**kwargs)  # type: ignore[arg-type]
    try:
        cls = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted((*BACKENDS, *LAZY_BACKENDS)))
        raise ValueError(f"unknown sweep backend {name!r} (known: {known})") from None
    return cls(**kwargs)  # type: ignore[arg-type]
