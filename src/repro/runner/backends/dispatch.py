"""Registry shim for the dispatch backend.

The real implementation lives in :mod:`repro.runner.dispatch.backend`;
this module exists so ``create_backend("dispatch")`` and the CLI's
``--backend dispatch`` resolve through the same package as every other
backend without importing sockets, selectors, and subprocess machinery
into sweeps that never leave one process.  The import is deliberately
lazy — see :func:`load_dispatch_backend`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.dispatch.backend import DispatchBackend as _DispatchBackend

__all__ = ["load_dispatch_backend"]


def load_dispatch_backend() -> "type[_DispatchBackend]":
    """Import and return :class:`repro.runner.dispatch.backend.DispatchBackend`."""
    from repro.runner.dispatch.backend import DispatchBackend

    return DispatchBackend
