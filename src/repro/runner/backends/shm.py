"""Process pool with shared-memory result transport.

The pickle pipe between a pool worker and the parent copies every
result several times: worker-side pickle, chunked writes into the
result pipe, the parent's reader thread reassembling them, and a final
unpickle.  For the small dataclass payloads most figures return that is
noise; for trace-heavy payloads (``repro.obs`` captures, raw per-point
series, megabyte result blobs) the pipe dominates the sweep's wall
clock.

:class:`SharedMemoryBackend` keeps the pool but moves the bulk bytes
out of band: the worker pickles its result once, and when the blob
exceeds ``threshold_bytes`` it lands in a
:class:`multiprocessing.shared_memory.SharedMemory` segment — one
``memcpy`` in, and the parent unpickles straight out of the mapped
buffer, then unlinks the segment.  Only a tiny ``_ShmHandle`` crosses
the pipe.  Results are byte-identical to every other backend; the only
difference is how the bytes travel.

Caveats (documented in EXPERIMENTS.md):

* segments live in ``/dev/shm`` — a sweep needs transient headroom of
  roughly ``jobs`` × the largest point payload;
* if shared-memory creation fails (``/dev/shm`` full, exotic
  platforms) the worker silently falls back to the pickle pipe for
  that point — correctness never depends on the fast path;
* a sweep killed with ``SIGKILL`` can strand segments from points that
  completed but were never collected; they are small, vanish on
  reboot, and a ``--resume`` does not need them.
"""

from __future__ import annotations

import concurrent.futures
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable

from repro.runner.backends.base import PointSpec, _timed_execute, resolve_experiment
from repro.runner.backends.pool import ProcessPoolBackend

__all__ = ["SharedMemoryBackend"]

#: payloads whose pickle is smaller than this ride the ordinary result
#: pipe; the shm segment + syscall overhead only pays off for bulk.
DEFAULT_THRESHOLD_BYTES = 256 * 1024


@dataclass
class _ShmHandle:
    """What crosses the pipe instead of the payload: a segment address."""

    name: str
    size: int


@dataclass
class _PipeFallback:
    """A bulk payload that *should* have traveled via shm but could not.

    Wraps the value for the trip through the ordinary pickle pipe so
    the parent can tell an intentional small-payload pipe ride from a
    degraded one and count the latter (:attr:`SharedMemoryBackend.fallbacks`)
    — the fallback is silent for correctness but must not be invisible
    to operators benchmarking the fast path.
    """

    value: Any


def _untrack(tracker_name: str) -> None:
    """Detach a segment from the worker's resource tracker.

    The parent owns the segment from the moment the handle is returned
    (it attaches, reads, and unlinks).  Without this, the fork-shared
    resource tracker would see the worker's registration outlive the
    parent's unlink and complain about — or double-unlink — a segment
    that was cleaned up correctly.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(tracker_name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API drift is non-fatal
        pass


def _shm_worker(
    experiment_id: str,
    params: Any,
    point: Any,
    seed: int,
    threshold_bytes: int,
) -> tuple[float, Any]:
    """Run one point; export bulk results through a shm segment."""
    experiment = resolve_experiment(experiment_id)
    seconds, value = _timed_execute(experiment, params, point, seed)
    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) < threshold_bytes:
        return seconds, value
    try:
        segment = shared_memory.SharedMemory(create=True, size=len(blob))
    except OSError:
        # /dev/shm unavailable or full: the pickle pipe still works.
        # The wrapper lets the parent count the degradation.
        return seconds, _PipeFallback(value)
    segment.buf[: len(blob)] = blob
    _untrack(segment._name)  # type: ignore[attr-defined]
    handle = _ShmHandle(segment.name, len(blob))
    segment.close()
    return seconds, handle


def _decode(outcome: tuple[float, Any]) -> tuple[tuple[float, Any], bool]:
    """Rehydrate a worker outcome, consuming its shm segment if any.

    Returns ``(outcome, fell_back)`` — the second element is True when
    the worker wanted a segment but had to ride the pipe.
    """
    seconds, value = outcome
    if isinstance(value, _PipeFallback):
        return (seconds, value.value), True
    if not isinstance(value, _ShmHandle):
        return outcome, False
    segment = shared_memory.SharedMemory(name=value.name)
    try:
        decoded = pickle.loads(segment.buf[: value.size])
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - double-consume race
            pass
    return (seconds, decoded), False


class _ShmFuture(concurrent.futures.Future):
    """A future that rehydrates shm handles before exposing the result.

    Wraps the pool's inner future; the transfer callback runs as soon
    as the worker outcome lands, so by the time the runner's ``drain``
    sees this future as done, the payload is already decoded and the
    segment released.  Decoding happens even for futures the runner has
    cancelled or will discard as straggler duplicates — consuming the
    segment is what prevents leaks.
    """

    def __init__(
        self,
        inner: concurrent.futures.Future,
        on_fallback: "Callable[[], None] | None" = None,
    ) -> None:
        super().__init__()
        self._inner = inner
        self._on_fallback = on_fallback
        inner.add_done_callback(self._transfer)

    def cancel(self) -> bool:
        self._inner.cancel()
        return super().cancel()

    def _transfer(self, inner: concurrent.futures.Future) -> None:
        if inner.cancelled():
            super().cancel()
            return
        exc = inner.exception()
        if exc is None:
            try:
                outcome, fell_back = _decode(inner.result())
            except BaseException as decode_exc:  # noqa: BLE001
                exc = decode_exc
            else:
                if fell_back and self._on_fallback is not None:
                    self._on_fallback()
                if not self.cancelled():
                    self.set_result(outcome)
                return
        if not self.cancelled():
            self.set_exception(exc)


class SharedMemoryBackend(ProcessPoolBackend):
    """Process pool whose bulk result bytes bypass the pickle pipe."""

    name = "shm"
    supports_shared_memory = True

    def __init__(
        self,
        threshold_bytes: int = DEFAULT_THRESHOLD_BYTES,
        mp_context: Any = None,
    ) -> None:
        super().__init__(mp_context=mp_context)
        if threshold_bytes < 0:
            raise ValueError("threshold_bytes must be >= 0")
        self.threshold_bytes = int(threshold_bytes)
        #: bulk payloads that degraded to the pickle pipe because a
        #: segment could not be created (/dev/shm full or unavailable).
        self.fallbacks = 0

    def _note_fallback(self) -> None:
        self.fallbacks += 1

    def submit(
        self, spec: PointSpec
    ) -> "concurrent.futures.Future[tuple[float, Any]]":
        if self._pool is None:
            raise RuntimeError(f"{self.name} backend is not open")
        inner = self._pool.submit(
            _shm_worker,
            spec.experiment_id,
            spec.params,
            spec.point,
            spec.seed,
            self.threshold_bytes,
        )
        return _ShmFuture(inner, self._note_fallback)
