"""Process-pool execution and the deprecated executor-factory shim.

Only ``(experiment_id, params, point, seed)`` crosses the process
boundary, so experiments never need to be picklable themselves — but
they must be *resolvable* in the worker: registered in
:mod:`repro.experiments.registry`, or addressable as a
``"module:attribute"`` id (see
:func:`repro.runner.backends.base.resolve_experiment`).
"""

from __future__ import annotations

import concurrent.futures
from typing import Any, Callable, Optional

from repro.runner.backends.base import (
    PointSpec,
    SweepBackend,
    _timed_execute,
    resolve_experiment,
)

__all__ = ["LegacyExecutorBackend", "ProcessPoolBackend"]


def _pool_worker(
    experiment_id: str, params: Any, point: Any, seed: int
) -> tuple[float, Any]:
    """Worker entry: re-resolve the experiment by id and run one point."""
    experiment = resolve_experiment(experiment_id)
    return _timed_execute(experiment, params, point, seed)


class ProcessPoolBackend(SweepBackend):
    """The classic fan-out: one OS process per worker, pickle transport.

    Results round-trip through the pool's result pipe as pickles — fine
    for the dataclass payloads most figures return, wasteful for
    trace-heavy ones (see
    :class:`~repro.runner.backends.shm.SharedMemoryBackend`).
    """

    name = "process"
    supports_cancellation = True

    def __init__(self, mp_context: Any = None) -> None:
        self._mp_context = mp_context
        self._pool: Optional[concurrent.futures.Executor] = None

    def open(self, max_workers: int) -> None:
        if self._pool is None:
            self._pool = self._make_pool(max_workers)

    def _make_pool(self, max_workers: int) -> concurrent.futures.Executor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers, mp_context=self._mp_context
        )

    def submit(
        self, spec: PointSpec
    ) -> "concurrent.futures.Future[tuple[float, Any]]":
        if self._pool is None:
            raise RuntimeError(f"{self.name} backend is not open")
        return self._pool.submit(
            _pool_worker, spec.experiment_id, spec.params, spec.point, spec.seed
        )

    def close(self, wait: bool = True, cancel_futures: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)
            self._pool = None


class LegacyExecutorBackend(ProcessPoolBackend):
    """Adapter wrapping a bare ``max_workers -> Executor`` callable.

    This is what the deprecated ``SweepRunner(executor_factory=...)``
    kwarg becomes: the same submit/drain/close surface as every other
    backend, built on whatever executor the callable returns.  Tests
    that need deterministic straggler timing hand it a
    ``ThreadPoolExecutor`` factory; new code should implement a
    :class:`~repro.runner.backends.base.SweepBackend` instead.
    """

    name = "legacy"

    def __init__(
        self, factory: Callable[[int], concurrent.futures.Executor]
    ) -> None:
        super().__init__()
        self.factory = factory

    def _make_pool(self, max_workers: int) -> concurrent.futures.Executor:
        return self.factory(max_workers)
