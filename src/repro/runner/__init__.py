"""Parallel sweep execution for experiments.

The runner fans the independent points of an :class:`~repro.experiments.base.Experiment`
out to a process pool, with:

* deterministic per-point seeds (results are identical for any worker
  count — see :func:`repro.sim.randomness.derive_seed`);
* a content-addressed on-disk result cache keyed on package version,
  experiment id, params, point, and seed, so re-runs of unchanged
  points are free;
* per-point timeout and retry with graceful degradation to a partial
  result set;
* crash-safe checkpointing: an append-only, fsynced JSONL journal of
  completed points (:class:`~repro.runner.checkpoint.SweepCheckpoint`)
  that ``resume=True`` replays after a crash or Ctrl-C, re-running only
  the unfinished points;
* a progress/ETA reporter.

Typical use::

    from repro.experiments import registry
    from repro.runner import ResultCache, SweepRunner

    experiment = registry.get("fig8")
    params = experiment.make_params("quick", "trim")
    runner = SweepRunner(jobs=4, cache=ResultCache("~/.cache/repro-experiments"))
    payload = runner.run(experiment, params, seed=1)
"""

from repro.runner.cache import ResultCache
from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.engine import (
    PointFailure,
    SweepInterrupted,
    SweepRunner,
    SweepStats,
)
from repro.runner.progress import ProgressReporter

__all__ = [
    "PointFailure",
    "ProgressReporter",
    "ResultCache",
    "SweepCheckpoint",
    "SweepInterrupted",
    "SweepRunner",
    "SweepStats",
]
