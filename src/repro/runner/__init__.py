"""Parallel sweep execution for experiments.

The runner fans the independent points of an :class:`~repro.experiments.base.Experiment`
out to a pluggable execution backend, with:

* deterministic per-point seeds (results are identical for any worker
  count and any backend — see :func:`repro.sim.randomness.derive_seed`);
* first-class backends (:mod:`repro.runner.backends`): ``serial``
  (inline, the ``jobs=1`` default), ``process``
  (:class:`~concurrent.futures.ProcessPoolExecutor` fan-out), and
  ``shm`` (process pool whose bulk result payloads travel through
  shared memory instead of the pickle pipe);
* cost-aware scheduling: the cache's :class:`~repro.runner.cache.CostModel`
  remembers per-point runtimes and the runner submits predicted-longest
  points first, shrinking pool makespan without changing results;
* a content-addressed on-disk result cache keyed on package version,
  experiment id, params, point, and seed, so re-runs of unchanged
  points are free;
* per-point timeout and retry with graceful degradation to a partial
  result set, governed by a shared
  :class:`~repro.runner.dispatch.retry.RetryPolicy` that classifies
  failures (transient / timeout / deterministic) and backs off with
  deterministic seeded jitter;
* a fault-tolerant multi-host backend (``dispatch``,
  :mod:`repro.runner.dispatch`): socket workers with heartbeat leases,
  error-classified retry, per-host circuit breakers, speculative
  re-execution of stragglers, and quarantine of deterministically
  failing points;
* crash-safe checkpointing: an append-only, fsynced JSONL journal of
  completed points (:class:`~repro.runner.checkpoint.SweepCheckpoint`)
  that ``resume=True`` replays after a crash or Ctrl-C — under any
  backend, not just the one that wrote it;
* a progress/ETA reporter.

Typical use::

    from repro.experiments import registry
    from repro.runner import ResultCache, SweepRunner

    experiment = registry.get("fig8")
    params = experiment.make_params("quick", "trim")
    runner = SweepRunner(jobs=4, cache=ResultCache("~/.cache/repro-experiments"),
                         backend="shm")
    payload = runner.run(experiment, params, seed=1)
"""

from repro.runner.backends import (
    LegacyExecutorBackend,
    PointSpec,
    ProcessPoolBackend,
    SerialBackend,
    SharedMemoryBackend,
    SweepBackend,
    create_backend,
)
from repro.runner.cache import CostModel, ResultCache
from repro.runner.checkpoint import SweepCheckpoint

# Light imports by design: the exceptions and policy live in
# repro.runner.dispatch.retry, which pulls no sockets or subprocesses.
# The DispatchBackend itself is loaded lazily via create_backend.
from repro.runner.dispatch.retry import (
    DispatchError,
    QuarantinedPoint,
    RetryPolicy,
    WorkerLost,
)
from repro.runner.engine import (
    PointFailure,
    SweepInterrupted,
    SweepRunner,
    SweepStats,
)
from repro.runner.progress import ProgressReporter

__all__ = [
    "CostModel",
    "DispatchError",
    "LegacyExecutorBackend",
    "PointFailure",
    "PointSpec",
    "ProcessPoolBackend",
    "ProgressReporter",
    "QuarantinedPoint",
    "ResultCache",
    "RetryPolicy",
    "SerialBackend",
    "SharedMemoryBackend",
    "SweepBackend",
    "SweepCheckpoint",
    "SweepInterrupted",
    "SweepRunner",
    "SweepStats",
    "WorkerLost",
    "create_backend",
]
