"""Content-addressed on-disk cache for sweep-point results.

A point's cache key is the SHA-256 of a canonical JSON document holding
the package version, the experiment id, the full params dataclass, the
point, and the derived seed.  Any change to any of those — a code
release, a tweaked parameter, a different seed — changes the key, so
stale hits are impossible without any invalidation protocol.

Values are stored as pickles: experiment results are dataclasses whose
floats must round-trip *exactly* (a cached re-run has to produce
byte-identical artifacts), which JSON cannot guarantee for the general
payloads experiments return.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

__all__ = ["DEFAULT_CACHE_DIR", "ResultCache", "default_cache_dir"]


def default_cache_dir() -> str:
    """The sweep cache location: ``$REPRO_CACHE_DIR`` or the user cache.

    Read per call (not at import) so test harnesses can redirect the
    cache with ``monkeypatch.setenv`` after this module is imported.
    """
    return os.environ.get(
        "REPRO_CACHE_DIR", os.path.join("~", ".cache", "repro-experiments")
    )


#: default location of the sweep cache at import time (prefer
#: :func:`default_cache_dir` for a late-bound lookup).
DEFAULT_CACHE_DIR = default_cache_dir()

_MISS = object()


class ResultCache:
    """Pickle store addressed by content hash of the point's identity."""

    def __init__(self, root: "str | Path" = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key(
        self,
        experiment_id: str,
        params: Any,
        point: Any,
        seed: int,
        version: Optional[str] = None,
    ) -> str:
        """The content hash addressing one point's result."""
        if version is None:
            from repro import __version__ as version  # lazy: avoids an import cycle
        from repro.experiments.store import to_jsonable

        material = json.dumps(
            {
                "version": version,
                "experiment": experiment_id,
                "params": to_jsonable(params),
                "point": to_jsonable(point),
                "seed": seed,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        """The cached value for ``key``, or None on a miss.

        A corrupt or unreadable entry counts as a miss (and is removed
        when possible) rather than poisoning the sweep.
        """
        path = self._path(key)
        value = _MISS
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            pass
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            try:
                path.unlink()
            except OSError:
                pass
        if value is _MISS:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically (write + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
