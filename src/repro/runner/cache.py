"""Content-addressed on-disk cache for sweep-point results.

A point's cache key is the SHA-256 of a canonical JSON document holding
the package version, the experiment id, the full params dataclass, the
point, and the derived seed.  Any change to any of those — a code
release, a tweaked parameter, a different seed — changes the key, so
stale hits are impossible without any invalidation protocol.

Values are stored as pickles: experiment results are dataclasses whose
floats must round-trip *exactly* (a cached re-run has to produce
byte-identical artifacts), which JSON cannot guarantee for the general
payloads experiments return.

The cache also keeps a :class:`CostModel` ledger (``costs.json`` in the
cache root): an exponentially-weighted runtime estimate per
``(experiment, params, label)`` — deliberately *not* per seed, so a
sweep under a new root seed inherits the cost profile of the previous
one.  :class:`~repro.runner.engine.SweepRunner` consults it to order
submissions longest-first (minimizing makespan on a pool) and feeds it
the measured runtime of every executed point.  The ledger is advisory:
a corrupt or missing file means "no predictions", never an error, and
reordering can never change merged results (they are collected by point
index).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any, Optional

__all__ = ["CostModel", "DEFAULT_CACHE_DIR", "ResultCache", "default_cache_dir"]


def default_cache_dir() -> str:
    """The sweep cache location: ``$REPRO_CACHE_DIR`` or the user cache.

    Read per call (not at import) so test harnesses can redirect the
    cache with ``monkeypatch.setenv`` after this module is imported.
    """
    return os.environ.get(
        "REPRO_CACHE_DIR", os.path.join("~", ".cache", "repro-experiments")
    )


#: default location of the sweep cache at import time (prefer
#: :func:`default_cache_dir` for a late-bound lookup).
DEFAULT_CACHE_DIR = default_cache_dir()

_MISS = object()


class ResultCache:
    """Pickle store addressed by content hash of the point's identity."""

    def __init__(self, root: "str | Path" = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0
        #: entries that existed but could not be unpickled; each one is
        #: also counted in ``misses``.  A nonzero value after a sweep is
        #: the signature of a damaged cache directory — surfaced so it
        #: never silently masquerades as a cold cache.
        self.corrupt = 0
        #: runtime history feeding the runner's cost-aware scheduler.
        self.costs = CostModel(self.root / "costs.json")

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key(
        self,
        experiment_id: str,
        params: Any,
        point: Any,
        seed: int,
        version: Optional[str] = None,
    ) -> str:
        """The content hash addressing one point's result."""
        if version is None:
            from repro import __version__ as version  # lazy: avoids an import cycle
        from repro.experiments.store import to_jsonable

        material = json.dumps(
            {
                "version": version,
                "experiment": experiment_id,
                "params": to_jsonable(params),
                "point": to_jsonable(point),
                "seed": seed,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        """The cached value for ``key``, or None on a miss.

        A corrupt or unreadable entry counts as a miss (and is removed
        when possible) rather than poisoning the sweep.
        """
        path = self._path(key)
        value = _MISS
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            pass
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError) as exc:
            self.corrupt += 1
            warnings.warn(
                f"discarding corrupt cache entry {path.name}"
                f" ({type(exc).__name__}: {exc})",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                path.unlink()
            except OSError:
                pass
        if value is _MISS:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically (write + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


class CostModel:
    """Per-point runtime history for cost-aware sweep scheduling.

    Keys fold in the experiment id, the params digest, and the point
    label — but not the seed: different seeds of the same point cost
    the same, and excluding the seed is what lets a fresh sweep reuse
    the last one's measurements.  Estimates are an EWMA (half old, half
    new) so a code change that shifts point costs converges within a
    couple of sweeps.

    The ledger is a single JSON document written atomically on
    :meth:`flush` (the runner flushes once per dispatch, not per
    point).  Concurrent sweeps sharing one cache root race on it
    last-writer-wins; since the data is an advisory scheduling hint,
    losing an update is harmless.
    """

    SCHEMA = "repro-costs/1"

    def __init__(self, path: "str | Path | None") -> None:
        self.path = Path(path).expanduser() if path is not None else None
        self._records: Optional[dict[str, dict[str, Any]]] = None
        self._dirty = False

    @staticmethod
    def key(experiment_id: str, label: str, params_digest: str = "") -> str:
        """The ledger key for one point's cost history."""
        return f"{experiment_id}/{label}@{params_digest}"

    def _load(self) -> dict[str, dict[str, Any]]:
        if self._records is not None:
            return self._records
        self._records = {}
        if self.path is not None:
            try:
                doc = json.loads(self.path.read_text(encoding="utf-8"))
                if doc.get("schema") == self.SCHEMA:
                    for key, rec in dict(doc["costs"]).items():
                        self._records[str(key)] = {
                            "seconds": float(rec["seconds"]),
                            "runs": int(rec.get("runs", 1)),
                        }
            except (OSError, ValueError, KeyError, TypeError, AttributeError):
                self._records = {}  # advisory data: corrupt means empty
        return self._records

    def predict(self, key: str) -> Optional[float]:
        """Estimated runtime in seconds, or None with no history."""
        record = self._load().get(key)
        return None if record is None else record["seconds"]

    def observe(self, key: str, seconds: float) -> None:
        """Fold one measured runtime into the estimate (EWMA, α=0.5)."""
        if seconds < 0:
            return
        records = self._load()
        record = records.get(key)
        if record is None:
            records[key] = {"seconds": float(seconds), "runs": 1}
        else:
            record["seconds"] = 0.5 * record["seconds"] + 0.5 * float(seconds)
            record["runs"] += 1
        self._dirty = True

    def flush(self) -> None:
        """Persist pending observations atomically (write + rename)."""
        if not self._dirty or self.path is None:
            return
        payload = json.dumps(
            {"schema": self.SCHEMA, "costs": self._load()},
            sort_keys=True,
            separators=(",", ":"),
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False
