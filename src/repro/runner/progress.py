"""Progress and ETA reporting for sweep runs.

The reporter prints one line per resolved point to ``stderr`` (keeping
``stdout`` clean for the experiment's own rows and JSON artifacts):

    [fig8] 4/9 points done (2 cached) elapsed 12.3s eta 15.4s

ETA extrapolates from executed (non-cached) points only — cache hits
resolve in microseconds and would otherwise make the estimate absurdly
optimistic.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Line-oriented progress printer with a running ETA."""

    def __init__(self, label: str = "sweep", stream: Optional[TextIO] = None) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.timeouts = 0
        self.errors = 0
        self._started = 0.0

    def start(self, total: int) -> None:
        self.total = total
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.timeouts = 0
        self.errors = 0
        self._started = time.perf_counter()

    def point_done(
        self,
        label: str,
        cached: bool = False,
        failed: bool = False,
        kind: str = "",
    ) -> None:
        """One point resolved.  For failures, ``kind`` splits the
        accounting: ``"timeout"`` counts toward :attr:`timeouts`, any
        other kind (errors, quarantines, lost workers) toward
        :attr:`errors` — the progress line and summary report the two
        separately because they call for different operator reactions
        (raise the timeout vs. read the traceback)."""
        self.done += 1
        if cached:
            self.cached += 1
        if failed:
            self.failed += 1
            if kind == "timeout":
                self.timeouts += 1
            else:
                self.errors += 1
        self._emit(label)

    def _failure_note(self) -> str:
        """The failure fragment, split by class: ``2 timeouts, 1 error``."""
        fragments = []
        if self.timeouts:
            plural = "s" if self.timeouts != 1 else ""
            fragments.append(f"{self.timeouts} timeout{plural}")
        if self.errors:
            plural = "s" if self.errors != 1 else ""
            fragments.append(f"{self.errors} error{plural}")
        return ", ".join(fragments)

    def _emit(self, label: str) -> None:
        elapsed = time.perf_counter() - self._started
        executed = self.done - self.cached
        remaining = self.total - self.done
        parts = [f"[{self.label}] {self.done}/{self.total} points"]
        if self.cached:
            parts.append(f"({self.cached} cached)")
        if self.failed:
            parts.append(f"({self._failure_note()} FAILED)")
        parts.append(f"last={label}")
        parts.append(f"elapsed {elapsed:.1f}s")
        if remaining and executed > 0:
            eta = elapsed / executed * remaining
            parts.append(f"eta {eta:.1f}s")
        print(" ".join(parts), file=self.stream, flush=True)

    def finish(self) -> None:
        elapsed = time.perf_counter() - self._started
        if self.total:
            failure_note = (
                f"{self._failure_note()} failed" if self.failed else "0 failed"
            )
            summary = (
                f"[{self.label}] done: {self.done}/{self.total} points "
                f"({self.cached} cached, {failure_note}) in {elapsed:.1f}s"
            )
            print(summary, file=self.stream, flush=True)
