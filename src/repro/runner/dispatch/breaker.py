"""Per-host circuit breakers for the dispatch fleet.

A host that keeps killing workers (bad image, full disk, flaky network)
must not be allowed to eat the retry budget of every point routed to
it.  Each host gets one :class:`CircuitBreaker` with the classic three
states:

``closed``
    Healthy.  Failures are counted; ``threshold`` *consecutive*
    failures trip the breaker (any success resets the count).
``open``
    Drained.  No assignments and no respawns until ``cooldown``
    seconds have passed, at which point the next :meth:`allows` call
    transitions to half-open and admits exactly one probe.
``half_open``
    One probe in flight.  Its success closes the breaker (full reset);
    its failure re-opens it for another full cooldown.

The breaker takes its clock as a callable so tests drive the state
machine with a fake clock instead of sleeping; production uses
``time.monotonic`` (wall-clock-free, per simlint SIM002's allowance
for host-side elapsed time).
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = self.CLOSED
        self.consecutive_failures = 0
        #: total trips to open, for telemetry/stats.
        self.opened_count = 0
        self._opened_at = 0.0

    def record_success(self) -> None:
        """A unit of work on this host succeeded."""
        self.consecutive_failures = 0
        if self.state != self.CLOSED:
            self.state = self.CLOSED

    def record_failure(self) -> None:
        """A unit of work on this host failed (crash, spawn error...)."""
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            # The probe itself failed: straight back to open.
            self._trip()
        elif (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.state = self.OPEN
        self.opened_count += 1
        self._opened_at = self._clock()

    def allows(self) -> bool:
        """May the host take work right now?

        In ``open``, the first call after the cooldown admits a single
        probe (transitioning to ``half_open``); in ``half_open`` the
        outstanding probe blocks everything else until it resolves via
        :meth:`record_success` / :meth:`record_failure`.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                return True
            return False
        return False  # half_open: probe already outstanding

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CircuitBreaker {self.state} "
            f"failures={self.consecutive_failures}/{self.threshold}>"
        )
