"""Fault-tolerant multi-host sweep dispatch.

This package is the fleet half of the sweep-scaling story: a
:class:`~repro.runner.dispatch.backend.DispatchBackend` implementing the
:class:`~repro.runner.backends.base.SweepBackend` protocol that shards
sweep points across N worker *processes* speaking a length-prefixed
JSON frame protocol over sockets (:mod:`~repro.runner.dispatch.frames`).
Workers are launched locally for tests and CI; a host-list config with a
spawn-command template (:mod:`~repro.runner.dispatch.hosts`) keeps the
same seam open for real SSH fleets — only ``experiment_id`` and pickled
params/points cross the wire, exactly the boundary contract the process
backends already honor.

Robustness is the headline, mirroring how T-RACKs argues for recovery
that tolerates loss without global coordination — recover locally,
never stall the fleet on one sick participant:

* **Leases with heartbeat expiry** — every assigned point is a lease
  with a deadline; a worker that stops heartbeating (silent death,
  ``SIGSTOP``, network partition) forfeits the lease and the point is
  re-enqueued on another worker.
* **Error-classified retry** (:mod:`~repro.runner.dispatch.retry`) —
  a shared :class:`RetryPolicy` with exponential backoff, deterministic
  seeded jitter, a delay cap, and an attempt budget classifies failures
  into *transient* (worker crash, lease expiry, connection reset →
  retry on another worker), *timeout* (speculative duplicate execution,
  earliest-submission-wins), and *deterministic* (same exception from
  two distinct workers → quarantine).
* **Quarantine** — a deterministically failing point is recorded in a
  ``quarantine.jsonl`` sidecar with both tracebacks and the sweep keeps
  going; one poisoned point never stalls the fleet.
* **Per-host circuit breakers** (:mod:`~repro.runner.dispatch.breaker`)
  — K consecutive failures drain a host; after a cooldown a half-open
  probe decides whether it rejoins.
* **Crash-safe merge/resume** — results flow through the ordinary
  ``repro-sweep-journal/1`` checkpoint, so a dispatch run killed with
  ``kill -9`` resumes under ``--backend serial`` (and vice versa)
  byte-identically; the chaos harness
  (:mod:`~repro.runner.dispatch.chaos`) proves it in CI.
"""

from repro.runner.dispatch.backend import DispatchBackend
from repro.runner.dispatch.breaker import CircuitBreaker
from repro.runner.dispatch.frames import FrameError, recv_frame, send_frame
from repro.runner.dispatch.hosts import HostSpec, default_hosts, parse_hosts
from repro.runner.dispatch.retry import (
    DETERMINISTIC,
    TIMEOUT,
    TRANSIENT,
    BackoffSchedule,
    DispatchError,
    LeaseExpired,
    QuarantinedPoint,
    RetryPolicy,
    WorkerLost,
    classify_failure,
)

__all__ = [
    "DETERMINISTIC",
    "TIMEOUT",
    "TRANSIENT",
    "BackoffSchedule",
    "CircuitBreaker",
    "DispatchBackend",
    "DispatchError",
    "FrameError",
    "HostSpec",
    "LeaseExpired",
    "QuarantinedPoint",
    "RetryPolicy",
    "WorkerLost",
    "classify_failure",
    "default_hosts",
    "parse_hosts",
    "recv_frame",
    "send_frame",
]
