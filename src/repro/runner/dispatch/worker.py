"""The dispatch worker: one process, one socket, one point at a time.

A worker is spawned by the dispatcher (or by ``ssh`` on a remote host —
the spawn template decides), dials back to ``--connect host:port``,
introduces itself with a ``hello`` frame, and then loops: receive a
``task`` frame, execute the point via the same
:func:`repro.runner.backends.base.execute_point` path every other
backend uses, reply with a ``result`` or ``error`` frame.  A
``shutdown`` frame (or clean EOF) ends the loop with a ``bye``.

Liveness is a separate concern from progress: a daemon heartbeat thread
sends a ``heartbeat`` frame every ``--heartbeat`` seconds *regardless*
of whether the main thread is computing, so the dispatcher's lease
logic distinguishes "slow point" (heartbeats flowing, lease renewed)
from "dead or wedged worker" (silence past the lease deadline).  Both
threads write frames under one lock — frames must never interleave.

The heartbeat thread doubles as an orphan reaper: if a heartbeat send
fails, the dispatcher is gone (killed, crashed, or unreachable) and
the worker hard-exits rather than computing into the void.  That is
what makes ``kill -9`` of the *dispatcher* safe — the fleet tears
itself down, and a later ``--resume`` run owns the journal alone.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import traceback
from typing import Any, NoReturn, Optional

from repro.runner.backends.base import _timed_execute, resolve_experiment
from repro.runner.dispatch.frames import (
    FrameError,
    connect_socket,
    decode_payload,
    encode_payload,
    recv_frame,
    send_frame,
)

__all__ = ["main", "run_worker"]


class _FrameWriter:
    """Serialized frame sends shared by the task and heartbeat threads."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._lock = threading.Lock()

    def send(self, message: dict[str, Any]) -> None:
        with self._lock:
            send_frame(self._sock, message)


def _heartbeat_loop(
    writer: _FrameWriter, worker: str, interval: float, stop: threading.Event
) -> None:
    """Send ``heartbeat`` frames until stopped; hard-exit on send failure.

    ``os._exit`` (not ``sys.exit``) on purpose: the main thread may be
    deep inside an experiment's compute loop, and a worker whose
    dispatcher is gone must not keep burning CPU on a result nobody
    will ever read.
    """
    while not stop.wait(interval):
        try:
            writer.send({"op": "heartbeat", "worker": worker})
        except OSError:
            os._exit(3)


def _execute_task(task: dict[str, Any]) -> tuple[float, Any]:
    """Run one ``task`` frame's point; exceptions propagate to the caller."""
    experiment = resolve_experiment(str(task["experiment"]))
    params = decode_payload(str(task["params"]))
    point = decode_payload(str(task["point"]))
    seed = int(task["seed"])
    digest = str(task.get("params_digest", ""))
    return _timed_execute(experiment, params, point, seed, digest)


def run_worker(
    host: str, port: int, worker: str, heartbeat: float = 0.5
) -> int:
    """Connect, serve tasks until shutdown/EOF; the process exit code."""
    try:
        sock = connect_socket(host, port)
    except OSError as exc:
        print(f"dispatch worker {worker}: connect failed: {exc}", file=sys.stderr)
        return 2
    writer = _FrameWriter(sock)
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(writer, worker, heartbeat, stop),
        name=f"heartbeat-{worker}",
        daemon=True,
    )
    try:
        writer.send({"op": "hello", "worker": worker, "pid": os.getpid()})
        beat.start()
        while True:
            try:
                frame = recv_frame(sock)
            except FrameError:
                return 1
            if frame is None or frame["op"] == "shutdown":
                if frame is not None:
                    writer.send({"op": "bye", "worker": worker})
                return 0
            if frame["op"] != "task":
                # Dispatcher-only ops arriving here mean a confused peer;
                # drop the frame rather than the connection.
                continue
            task_id = int(frame["task"])
            try:
                seconds, value = _execute_task(frame)
            except BaseException as exc:  # noqa: BLE001 - shipped to dispatcher
                writer.send(
                    {
                        "op": "error",
                        "worker": worker,
                        "task": task_id,
                        "error_type": type(exc).__name__,
                        "error": str(exc),
                        "traceback": traceback.format_exc(),
                    }
                )
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    return 1
            else:
                writer.send(
                    {
                        "op": "result",
                        "worker": worker,
                        "task": task_id,
                        "seconds": seconds,
                        "value": encode_payload(value),
                    }
                )
    except OSError:
        return 1
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


def _parse_addr(spec: str) -> tuple[str, int]:
    """Split ``host:port``; the port is mandatory."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"--connect expects host:port, got {spec!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--connect expects a numeric port, got {spec!r}"
        ) from None


def main(argv: Optional[list[str]] = None) -> NoReturn:
    """``python -m repro.runner.dispatch.worker`` entrypoint."""
    parser = argparse.ArgumentParser(
        prog="repro.runner.dispatch.worker",
        description="dispatch fleet worker (spawned by DispatchBackend)",
    )
    parser.add_argument("--connect", type=_parse_addr, required=True)
    parser.add_argument("--worker", required=True)
    parser.add_argument("--heartbeat", type=float, default=0.5)
    args = parser.parse_args(argv)
    # Workers live in their own session (start_new_session at spawn); a
    # terminal ^C goes to the dispatcher, which shuts the fleet down via
    # frames.  Ignoring SIGINT here keeps an interrupted *local* sweep
    # from racing worker deaths against the orderly drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    raise SystemExit(
        run_worker(
            args.connect[0], args.connect[1], args.worker, args.heartbeat
        )
    )


if __name__ == "__main__":
    main()
