"""The dispatch wire protocol: length-prefixed JSON frames.

Every message between the dispatcher and a worker is one *frame*::

    +----------------+----------------------------------------+
    | length (u32 BE)| UTF-8 JSON object, exactly length bytes|
    +----------------+----------------------------------------+

The JSON object always carries an ``"op"`` key naming the message type
(see :data:`OPS`); everything else is op-specific.  Bulk values —
pickled params, points, and results — ride inside the JSON as base64
strings (:func:`encode_payload` / :func:`decode_payload`), the same
encoding the checkpoint journal uses, so a result that crossed the wire
is byte-identical to one produced inline.

The frame grammar is deliberately tiny and self-delimiting: a reader
needs no lookahead beyond the 4-byte prefix, a torn connection
surfaces as a short read (``None`` from :func:`recv_frame` at a frame
boundary, :class:`FrameError` inside one), and an insane length prefix
(corruption, protocol mismatch) is rejected before any allocation via
:data:`MAX_FRAME_BYTES`.

This module is also the only sanctioned home of raw socket
construction (simlint SIM017): :func:`listen_socket` and
:func:`connect_socket` wrap the two shapes the dispatcher and workers
need, so every other module talks in frames, never in sockets.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from typing import Any, Optional

__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "OPS",
    "connect_socket",
    "decode_payload",
    "encode_payload",
    "listen_socket",
    "recv_frame",
    "send_frame",
]

#: hard ceiling on one frame's JSON body.  Large enough for multi-MB
#: pickled payloads after base64 expansion, small enough that a
#: corrupted length prefix cannot trigger a gigabyte allocation.
MAX_FRAME_BYTES = 512 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: every op either side may send, for validation and documentation.
#:
#: worker → dispatcher: ``hello`` (name/pid/host introduction),
#: ``heartbeat`` (lease renewal), ``result`` (task id, measured
#: seconds, payload), ``error`` (task id, exception type/message/
#: traceback), ``bye`` (clean shutdown acknowledgement).
#:
#: dispatcher → worker: ``task`` (task id plus everything
#: ``execute_point`` needs), ``shutdown`` (drain and exit).
OPS: tuple[str, ...] = (
    "hello", "heartbeat", "result", "error", "bye", "task", "shutdown",
)


class FrameError(ConnectionError):
    """A malformed frame: bad length, bad JSON, or a mid-frame EOF.

    Subclasses :class:`ConnectionError` on purpose — every frame-level
    corruption is indistinguishable from (and handled like) a broken
    connection: the peer is written off and its work re-enqueued.
    """


def encode_payload(value: Any) -> str:
    """Pickle ``value`` and wrap it in base64 for JSON transport."""
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_payload(blob: str) -> Any:
    """Invert :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    """Serialize ``message`` and write one frame, atomically ordered.

    ``sendall`` of one prefix+body buffer keeps concurrent senders
    (the worker's compute thread and its heartbeat thread) from
    interleaving partial frames — callers still serialize sends with a
    lock, but a single write means even a dying peer never reads half
    a length prefix from one message and half from another.
    """
    body = json.dumps(message, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on EOF at offset 0, FrameError on
    EOF mid-buffer (a torn frame)."""
    chunks: list[bytes] = []
    received = 0
    while received < n:
        chunk = sock.recv(min(n - received, 1 << 20))
        if not chunk:
            if received == 0:
                return None
            raise FrameError(
                f"connection closed mid-frame ({received}/{n} bytes)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Raises :class:`FrameError` for torn frames, oversize lengths, and
    bodies that are not a JSON object with a known ``op``.
    """
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame length {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}); corrupt prefix or protocol mismatch"
        )
    body = _recv_exact(sock, length)
    if body is None:  # pragma: no cover - _recv_exact raises instead
        raise FrameError("connection closed between prefix and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(message, dict) or message.get("op") not in OPS:
        raise FrameError(f"frame is not a known-op object: {message!r:.200}")
    return message


def listen_socket(host: str = "127.0.0.1", port: int = 0) -> socket.socket:
    """A listening TCP socket for the dispatcher (port 0 = ephemeral)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(128)
    return sock


def connect_socket(
    host: str, port: int, timeout: Optional[float] = 10.0
) -> socket.socket:
    """A connected TCP socket for a worker, with TCP_NODELAY.

    The connect honors ``timeout``; the returned socket is switched
    back to blocking mode (workers block in ``recv_frame`` between
    tasks, and the heartbeat thread owns liveness).
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock
