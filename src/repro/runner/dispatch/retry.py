"""Error-classified retry with seeded exponential backoff.

One :class:`RetryPolicy` is shared by the sweep engine's generic retry
loop and the dispatch backend's fleet logic, so a sweep behaves the
same whether a point fails inline, in a pool worker, or on a remote
host.  The policy has three independent knobs:

* a **budget** (``max_attempts`` total attempts per point, plus a
  separate, more generous ``transient_budget`` for failures that say
  nothing about the point itself — worker crashes, lease expiries,
  connection resets);
* a **backoff schedule**: ``base_delay * multiplier**(attempt-1)``,
  capped at ``max_delay``;
* **deterministic jitter**: each delay is stretched by up to
  ``jitter``× drawn from a generator seeded from ``(seed, point key,
  and nothing else)`` — so the same seed reproduces the same jitter
  sequence on every run and every host, while distinct points still
  de-synchronize their retries (no thundering-herd resubmission after
  a host dies).

Failure *classification* is the policy's other half: transient faults
are retried on another worker immediately-ish, timeouts trigger
speculative duplicate execution (earliest submission wins), and a
deterministic failure — the same exception from two distinct workers —
is quarantined rather than retried forever.  Classification is by
exception type (:func:`classify_failure`); the dispatch backend
additionally compares error *signatures* across workers to promote a
repeated failure to deterministic.
"""

from __future__ import annotations

import concurrent.futures
import concurrent.futures.process
from dataclasses import dataclass
from typing import ClassVar

from repro.sim.randomness import derive_seed, seeded_rng

__all__ = [
    "DETERMINISTIC",
    "TIMEOUT",
    "TRANSIENT",
    "BackoffSchedule",
    "DispatchError",
    "LeaseExpired",
    "QuarantinedPoint",
    "RetryPolicy",
    "WorkerLost",
    "classify_failure",
    "failure_signature",
]

#: classification labels.  Plain strings (not an enum) so they embed
#: directly in telemetry rows, quarantine records, and stats without a
#: serialization layer.
TRANSIENT = "transient"
TIMEOUT = "timeout"
DETERMINISTIC = "deterministic"


class LeaseExpired(ConnectionError):
    """A worker stopped heartbeating while holding this point's lease.

    Raised (on futures, never across the wire) by the dispatch backend
    when a lease deadline passes; a :class:`ConnectionError` subclass
    so generic classification treats it as transient.
    """


class DispatchError(RuntimeError):
    """A point's *terminal* dispatch outcome — budgets exhausted.

    Subclasses are deliberately **not** transient-classified: when the
    backend raises one on a future, its internal budgets are already
    spent, and the engine must not wrap another retry loop around it.
    The engine treats any :class:`DispatchError` as final.
    """


class WorkerLost(DispatchError):
    """Environmental retries exhausted: every attempt lost its worker.

    Carries the transient retry count and the workers that died under
    the point, so the failure report says *where* the fleet kept
    collapsing rather than just "connection reset".
    """

    def __init__(self, label: str, transient_retries: int, workers: tuple[str, ...]) -> None:
        self.label = label
        self.transient_retries = transient_retries
        self.workers = workers
        roster = ", ".join(workers) if workers else "(none)"
        super().__init__(
            f"point {label!r}: lost {transient_retries} worker(s) "
            f"({roster}); transient retry budget exhausted"
        )


class QuarantinedPoint(DispatchError):
    """The same failure signature from two distinct workers.

    Two independent processes (possibly on different hosts) agreeing on
    the exception is taken as proof the failure is the point's own —
    the point is written to the quarantine journal and the sweep moves
    on instead of burning budget re-proving a deterministic bug.
    """

    def __init__(
        self,
        label: str,
        signature: str,
        workers: tuple[str, ...],
        quarantine_path: str,
    ) -> None:
        self.label = label
        self.signature = signature
        self.workers = workers
        self.quarantine_path = quarantine_path
        super().__init__(
            f"point {label!r} quarantined after identical failure on "
            f"workers {', '.join(workers)}: {signature}"
        )


#: exception types that say something broke *around* the point, not in
#: it: retry on another worker without consuming the deterministic
#: budget.  ConnectionError covers ConnectionResetError/BrokenPipeError
#: and the frame/lease errors that subclass it; EOFError and the broken
#: -pool types are what a mid-task worker death looks like from a pool.
_TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    ConnectionError,
    EOFError,
    concurrent.futures.process.BrokenProcessPool,
    concurrent.futures.BrokenExecutor,
)

_TIMEOUT_TYPES: tuple[type[BaseException], ...] = (
    TimeoutError,
    concurrent.futures.TimeoutError,
)


def classify_failure(exc: BaseException) -> str:
    """Map one failure to ``transient`` / ``timeout`` / ``deterministic``.

    Anything not recognizably environmental is *presumed* deterministic
    — the caller still retries it within budget (a flaky experiment
    bug may pass on resubmission), but a repeat of the same signature
    from a different worker is proof enough to quarantine.
    """
    if isinstance(exc, _TIMEOUT_TYPES):
        return TIMEOUT
    if isinstance(exc, _TRANSIENT_TYPES):
        return TRANSIENT
    return DETERMINISTIC


def failure_signature(error_type: str, message: str) -> str:
    """The identity under which failures are compared for quarantine.

    Type plus message — coarse enough to survive differing tracebacks
    (line numbers, worker-local paths), fine enough that two unrelated
    bugs in one experiment rarely collide.
    """
    return f"{error_type}: {message}"


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff + budget parameters; immutable and picklable.

    ``max_attempts`` bounds *total* executions of one point for
    timeout/deterministic failures; ``transient_budget`` separately
    bounds retries caused by environmental faults, so a chaos storm
    that kills three workers under one point cannot exhaust the
    point's own budget.
    """

    max_attempts: int = 2
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    transient_budget: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.transient_budget < 0:
            raise ValueError("transient_budget must be >= 0")

    #: spec-grammar aliases accepted by :meth:`parse`.
    _FIELDS: ClassVar[tuple[tuple[str, str], ...]] = (
        ("attempts", "max_attempts"),
        ("base", "base_delay"),
        ("mult", "multiplier"),
        ("cap", "max_delay"),
        ("jitter", "jitter"),
        ("transient", "transient_budget"),
        ("seed", "seed"),
    )

    @classmethod
    def parse(cls, spec: str) -> "RetryPolicy":
        """Build a policy from the CLI grammar.

        ``--retry-policy "attempts=3,base=0.1,mult=2,cap=5,jitter=0.5,
        transient=8,seed=7"`` — every key optional, unknown keys
        rejected.  An empty spec is the default policy.
        """
        aliases = dict(cls._FIELDS)
        kwargs: dict[str, float | int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in aliases:
                known = ",".join(alias for alias, _ in cls._FIELDS)
                raise ValueError(
                    f"bad retry-policy term {part!r} (grammar: "
                    f"key=value with keys {known})"
                )
            field_name = aliases[key]
            try:
                if field_name in ("max_attempts", "transient_budget", "seed"):
                    kwargs[field_name] = int(raw)
                else:
                    kwargs[field_name] = float(raw)
            except ValueError as exc:
                raise ValueError(
                    f"bad retry-policy value {raw!r} for {key}: {exc}"
                ) from None
        return cls(**kwargs)  # type: ignore[arg-type]

    def to_spec(self) -> str:
        """The canonical spec string (``parse`` round-trips it)."""
        values = {
            "attempts": self.max_attempts,
            "base": self.base_delay,
            "mult": self.multiplier,
            "cap": self.max_delay,
            "jitter": self.jitter,
            "transient": self.transient_budget,
            "seed": self.seed,
        }
        return ",".join(f"{key}={value}" for key, value in values.items())

    def allows(self, attempt: int) -> bool:
        """True while ``attempt`` (1-based) is inside the budget."""
        return attempt <= self.max_attempts

    def allows_transient(self, transient_retries: int) -> bool:
        """True while another environmental retry fits the budget."""
        return transient_retries < self.transient_budget

    def schedule(self, key: str) -> "BackoffSchedule":
        """The per-point deterministic backoff stream for ``key``.

        The stream is seeded from ``(policy.seed, key)`` alone — same
        seed ⇒ same jitter sequence, on any host, in any process.
        """
        return BackoffSchedule(self, key)


class BackoffSchedule:
    """One point's materialized backoff delays, deterministic in seed."""

    __slots__ = ("policy", "key", "_draws")

    def __init__(self, policy: RetryPolicy, key: str) -> None:
        self.policy = policy
        self.key = key
        self._draws: list[float] = []

    def _draw(self, index: int) -> float:
        """The ``index``-th jitter draw in [0, 1), lazily materialized.

        Draws are a pure function of (seed, key, index): the whole
        prefix is regenerated from one generator so that querying
        delays out of order cannot change their values.
        """
        while len(self._draws) <= index:
            rng = seeded_rng(derive_seed(self.policy.seed, f"retry/{self.key}"))
            self._draws = [float(u) for u in rng.random(len(self._draws) + 8)]
        return self._draws[index]

    def delay(self, attempt: int) -> float:
        """Seconds to wait before re-submission number ``attempt`` (1-based:
        the delay after the first failure is ``delay(1)``)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        policy = self.policy
        raw = policy.base_delay * policy.multiplier ** (attempt - 1)
        capped = min(policy.max_delay, raw)
        return capped * (1.0 + policy.jitter * self._draw(attempt - 1))
