"""Host-list configuration for the dispatch fleet.

The dispatcher itself only ever speaks the frame protocol to whatever
connects to its listener; *how a worker process comes to exist* is the
host config's job.  Each :class:`HostSpec` names a host, a worker
count, and a spawn-command template; the backend formats the template
per worker and hands it to ``subprocess.Popen``.  For the local host
the template defaults to::

    {python} -m repro.runner.dispatch.worker
        --connect {addr} --worker {worker} --heartbeat {heartbeat}

and for a real fleet a JSON host file swaps the front of the command
for ``ssh``/``pdsh``/a container runner without touching the backend —
the template is the seam.  Placeholders:

``{python}``     this interpreter (``sys.executable``)
``{addr}``       the dispatcher's ``host:port``
``{worker}``     the worker's unique name (``<host><index>``)
``{host}``       the host's name
``{heartbeat}``  the heartbeat interval in seconds

The ``--hosts`` CLI grammar accepts either ``local:N`` (N local
workers, the default) or a path to a JSON file::

    [{"name": "node-a", "workers": 8,
      "spawn": ["ssh", "node-a", "python3", "-m",
                "repro.runner.dispatch.worker",
                "--connect", "{addr}", "--worker", "{worker}"]},
     {"name": "node-b", "workers": 8}]

A host entry without ``spawn`` gets the local template — useful for
tests that want several "hosts" on one machine to exercise the
per-host circuit breakers.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["DEFAULT_SPAWN", "HostSpec", "default_hosts", "parse_hosts"]

#: the local spawn template (see module docstring for placeholders).
DEFAULT_SPAWN: tuple[str, ...] = (
    "{python}",
    "-m",
    "repro.runner.dispatch.worker",
    "--connect",
    "{addr}",
    "--worker",
    "{worker}",
    "--heartbeat",
    "{heartbeat}",
)


@dataclass(frozen=True)
class HostSpec:
    """One host's name, worker count, and spawn-command template."""

    name: str
    workers: int
    spawn: tuple[str, ...] = field(default=DEFAULT_SPAWN)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("host name must be non-empty")
        if self.workers < 1:
            raise ValueError(f"host {self.name!r}: workers must be >= 1")
        if not self.spawn:
            raise ValueError(f"host {self.name!r}: spawn template is empty")

    def command(self, addr: str, worker: str, heartbeat: float = 0.5) -> list[str]:
        """The concrete argv for one worker on this host."""
        mapping = {
            "python": sys.executable,
            "addr": addr,
            "worker": worker,
            "host": self.name,
            "heartbeat": heartbeat,
        }
        return [part.format(**mapping) for part in self.spawn]

    def worker_names(self) -> list[str]:
        """The fleet roster contribution of this host."""
        return [f"{self.name}{i}" for i in range(self.workers)]


def default_hosts(jobs: int) -> list[HostSpec]:
    """The single-machine fleet: ``jobs`` local workers."""
    return [HostSpec("local", max(1, int(jobs)))]


def parse_hosts(spec: str) -> list[HostSpec]:
    """Parse a ``--hosts`` value: ``local:N`` or a JSON host file."""
    spec = spec.strip()
    if not spec:
        raise ValueError("--hosts must not be empty")
    if spec.startswith("local"):
        _, sep, count = spec.partition(":")
        try:
            workers = int(count) if sep else 1
        except ValueError:
            raise ValueError(
                f"bad --hosts spec {spec!r} (grammar: local:N or a JSON "
                "host-file path)"
            ) from None
        return default_hosts(workers)
    path = Path(spec)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"--hosts {spec!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"--hosts {spec!r} is not valid JSON: {exc}") from exc
    if not isinstance(doc, list) or not doc:
        raise ValueError(f"--hosts {spec!r}: expected a non-empty JSON array")
    hosts: list[HostSpec] = []
    seen: set[str] = set()
    for entry in doc:
        if not isinstance(entry, dict):
            raise ValueError(f"--hosts {spec!r}: entries must be objects")
        unknown = set(entry) - {"name", "workers", "spawn"}
        if unknown:
            raise ValueError(
                f"--hosts {spec!r}: unknown key(s) {sorted(unknown)}"
            )
        try:
            name = str(entry["name"])
            workers = int(entry.get("workers", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"--hosts {spec!r}: {exc}") from exc
        if name in seen:
            raise ValueError(f"--hosts {spec!r}: duplicate host {name!r}")
        seen.add(name)
        spawn = entry.get("spawn", DEFAULT_SPAWN)
        if not (
            isinstance(spawn, (list, tuple))
            and all(isinstance(part, str) for part in spawn)
        ):
            raise ValueError(
                f"--hosts {spec!r}: host {name!r} spawn must be a list "
                "of strings"
            )
        hosts.append(HostSpec(name, workers, tuple(spawn)))
    return hosts
