"""Chaos harness: prove dispatch fault tolerance end to end.

The paper's sweeps (and any reproduction of them) are long enough that
worker processes *will* die — OOM kills, preemptions, flaky hosts.  The
dispatch backend claims to survive all of that without changing a
single payload byte.  This module is the proof, runnable locally and in
CI (``python -m repro.runner.dispatch.chaos``):

``workers`` scenario
    Run a sweep on the dispatch backend while a seeded killer thread
    SIGKILLs at least three workers mid-task and SIGSTOPs another until
    its lease expires.  The merged payload must be byte-identical
    (``pickle`` bytes compared) to a clean serial run of the same
    sweep, and the backend counters must show the carnage actually
    happened (no vacuous pass).

``dispatcher`` scenario
    Run the same sweep in a child process journalling to a
    :class:`~repro.runner.checkpoint.SweepCheckpoint`, ``SIGKILL`` the
    *dispatcher* itself mid-sweep, then ``resume=True`` under the
    serial backend.  The resumed payload must be byte-identical to a
    clean serial run and the combined journal must hold every point
    exactly once — no duplicates, no holes.

The chaos experiment lives here (``repro.runner.dispatch.chaos:CHAOS``)
rather than in the test tree so fresh worker processes can resolve it
by import path with no ``PYTHONPATH`` help.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import pickle

# The killer's strike schedule is seeded explicitly per scenario and
# never touches simulation state — harness randomness, not model
# randomness, so the sim.randomness streams are deliberately not used.
import random  # simlint: disable=SIM001
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.experiments.base import Experiment, Point

__all__ = [
    "CHAOS",
    "ChaosExperiment",
    "ChaosParams",
    "WorkerKiller",
    "chaos_dispatcher",
    "chaos_workers",
    "main",
]


# ----------------------------------------------------------------------
# The chaos experiment
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ChaosParams:
    """Sweep shape for the chaos runs.

    ``sleep_s`` stretches each point so the killer has live leases to
    destroy; the payload itself is a pure function of the point seed,
    so however many times a point re-executes, every execution returns
    the same bytes.
    """

    n_points: int = 32
    sleep_s: float = 0.25
    payload_words: int = 64

    @classmethod
    def paper(cls, **overrides: Any) -> "ChaosParams":
        return cls(**overrides)

    @classmethod
    def quick(cls, **overrides: Any) -> "ChaosParams":
        return cls(n_points=8, sleep_s=0.05, **overrides)


class ChaosExperiment(Experiment):
    """Deterministic sleepy points: seed in, stable blob out."""

    id = "repro.runner.dispatch.chaos:CHAOS"
    title = "dispatch chaos probe"
    params_cls = ChaosParams

    def points(self, params: ChaosParams) -> list[Point]:
        return [Point(f"c{i:03d}", {"i": i}) for i in range(params.n_points)]

    def run_point(
        self, params: ChaosParams, point: Point, seed: int
    ) -> dict[str, Any]:
        if params.sleep_s > 0:
            time.sleep(params.sleep_s)
        digest = hashlib.sha256()
        digest.update(str(seed).encode("ascii"))
        words = []
        for index in range(params.payload_words):
            digest.update(str(index).encode("ascii"))
            words.append(int.from_bytes(digest.digest()[:8], "big"))
        return {"label": point.label, "seed": seed, "words": words}

    def reduce(
        self,
        params: ChaosParams,
        points: Sequence[Point],
        results: Sequence[Any],
    ) -> list[Any]:
        return list(results)


CHAOS = ChaosExperiment()


# ----------------------------------------------------------------------
# The worker killer
# ----------------------------------------------------------------------
class WorkerKiller(threading.Thread):
    """Seeded background assassin targeting workers with *live leases*.

    Python workers take the better part of a second to import and say
    hello; signals fired on a wall-clock schedule mostly hit processes
    that have not run a single point yet, which proves nothing.  The
    killer therefore cross-references the backend's pid-file roster
    (``<worker> <pid>`` lines) with its :class:`~repro.obs.dispatch.DispatchLog`
    and only strikes workers that are **currently executing a task**:
    every SIGKILL destroys a live lease (the transient-retry path) and
    every SIGSTOP wedges one (the lease-expiry path).  Victim choice
    and spacing are drawn from ``random.Random(seed)``; respawned
    workers append fresh roster lines, so late strikes hit
    replacements too — exactly the churn a real fleet sees.

    Stops are scheduled before kills: a wedged worker needs the most
    remaining sweep runway for its lease to expire mid-run.
    """

    def __init__(
        self,
        pid_file: Path,
        log: Any,
        kills: int = 3,
        stops: int = 1,
        seed: int = 0,
        spacing: float = 0.3,
        victim_timeout: float = 30.0,
    ) -> None:
        super().__init__(name="worker-killer", daemon=True)
        self.pid_file = Path(pid_file)
        self.log = log
        self.kills = int(kills)
        self.stops = int(stops)
        self.rng = random.Random(seed)
        self.spacing = float(spacing)
        self.victim_timeout = float(victim_timeout)
        self.killed: list[int] = []
        self.stopped: list[int] = []
        self._halt = threading.Event()

    def _roster(self) -> dict[str, int]:
        """Worker name -> pid, last roster line winning (respawns reuse
        neither, but a torn read should not crash the killer)."""
        try:
            text = self.pid_file.read_text(encoding="utf-8")
        except OSError:
            return {}
        roster: dict[str, int] = {}
        for line in text.splitlines():
            parts = line.split()
            if len(parts) == 2 and parts[1].isdigit():
                roster[parts[0]] = int(parts[1])
        return roster

    def _busy_workers(self) -> list[str]:
        """Workers holding a lease right now: leased more often than
        they have reported results, per the dispatch log."""
        leases: dict[str, int] = {}
        for record in self.log.records():
            if record.worker is None:
                continue
            if record.event == "lease":
                leases[record.worker] = leases.get(record.worker, 0) + 1
            elif record.event == "result":
                leases[record.worker] = leases.get(record.worker, 0) - 1
            elif record.event in ("expire", "worker_dead"):
                leases.pop(record.worker, None)
        return [name for name, held in leases.items() if held > 0]

    def _pick_busy(self) -> Optional[int]:
        harmed = set(self.killed) | set(self.stopped)
        roster = self._roster()
        candidates = [
            roster[name]
            for name in self._busy_workers()
            if name in roster and roster[name] not in harmed
        ]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _signal(self, pid: int, signum: int) -> bool:
        try:
            os.kill(pid, signum)
        except ProcessLookupError:
            return False
        return True

    def run(self) -> None:
        plan = ["stop"] * self.stops + ["kill"] * self.kills
        for action in plan:
            deadline = time.monotonic() + self.victim_timeout
            while not self._halt.is_set():
                pid = self._pick_busy()
                if pid is not None:
                    signum = (
                        signal.SIGKILL if action == "kill" else signal.SIGSTOP
                    )
                    if self._signal(pid, signum):
                        target = (
                            self.killed if action == "kill" else self.stopped
                        )
                        target.append(pid)
                        break
                if time.monotonic() > deadline:
                    return
                self._halt.wait(0.02)
            if self._halt.is_set():
                return
            self._halt.wait(self.spacing * (0.5 + self.rng.random()))

    def halt(self) -> None:
        """Stop scheduling further harm and release any SIGSTOPped pid.

        SIGKILL works on stopped processes, so the backend's teardown
        reaps them regardless; the SIGCONT here just avoids leaving a
        stopped orphan if teardown already detached it."""
        self._halt.set()
        for pid in self.stopped:
            self._signal(pid, signal.SIGCONT)


# ----------------------------------------------------------------------
# Scenario plumbing
# ----------------------------------------------------------------------
def _payload_bytes(payload: Any) -> bytes:
    """Canonical bytes for a reduced payload: one pickle per point.

    Pickling the whole list would be identity-sensitive: the pickler
    memoizes repeated *objects*, so a serial run (whose ten dicts share
    the interned key strings) and a dispatch run (whose dicts each came
    out of their own unpickle) serialize *equal* payloads to different
    bytes.  Per-point pickling is exactly the journal's encoding, and
    within one point there are no repeated objects to memoize.
    """
    return b"".join(
        pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
        for item in payload
    )


def _serial_reference(params: ChaosParams, seed: int) -> bytes:
    """The ground truth: the sweep's payload bytes under serial."""
    from repro.runner.engine import SweepRunner

    quiet = dataclasses.replace(params, sleep_s=0.0)
    runner = SweepRunner(jobs=1, backend="serial")
    return _payload_bytes(runner.run(CHAOS, quiet, seed=seed))


def chaos_workers(
    seed: int = 0,
    params: Optional[ChaosParams] = None,
    kills: int = 3,
    stops: int = 1,
    jobs: int = 4,
    lease_timeout: float = 2.0,
    verbose: bool = True,
) -> dict[str, Any]:
    """Scenario 1: SIGKILL/SIGSTOP workers mid-sweep, compare to serial.

    Returns a report dict; ``report["ok"]`` is the verdict.  Raises
    nothing on mismatch — the CLI turns the verdict into an exit code
    so CI logs carry the full report either way.
    """
    from repro.runner.dispatch.backend import DispatchBackend
    from repro.runner.engine import SweepRunner

    params = params if params is not None else ChaosParams()
    expected = _serial_reference(params, seed)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        pid_file = Path(tmp) / "fleet.pids"
        backend = DispatchBackend(
            lease_timeout=lease_timeout,
            heartbeat_interval=0.25,
            pid_file=pid_file,
        )
        killer = WorkerKiller(
            pid_file, backend.log, kills=kills, stops=stops, seed=seed
        )
        runner = SweepRunner(jobs=jobs, backend=backend)
        killer.start()
        try:
            payload = runner.run(CHAOS, params, seed=seed)
        finally:
            killer.halt()
            killer.join(timeout=5.0)
        got = _payload_bytes(payload)
        stats = runner.last_stats
        report = {
            "scenario": "workers",
            "ok": got == expected,
            "byte_identical": got == expected,
            "workers_killed": len(killer.killed),
            "workers_stopped": len(killer.stopped),
            "transient_retries": stats.transient_retries if stats else 0,
            "lease_expirations": stats.lease_expirations if stats else 0,
            "failures": len(stats.failures) if stats else -1,
        }
        # The chaos must have actually happened, or the pass is vacuous:
        # every strike targeted a live lease, so kills must show up as
        # transient retries and stops as lease expiries.
        if report["workers_killed"] < kills or report["workers_stopped"] < stops:
            report["ok"] = False
            report["error"] = "killer could not land its full schedule"
        if stats is not None and stats.failures:
            report["ok"] = False
            report["error"] = "sweep recorded point failures under chaos"
        if stats is not None and kills and stats.transient_retries < 1:
            report["ok"] = False
            report["error"] = "SIGKILLed leases produced no transient retries"
        if stats is not None and stats.lease_expirations < stops:
            report["ok"] = False
            report["error"] = "SIGSTOPped worker never expired its lease"
    if verbose:
        print(json.dumps(report, sort_keys=True), file=sys.stderr)
    return report


def _journal_keys(journal_path: Path) -> list[tuple[str, str, int, str]]:
    """Result-record keys in journal order (headers and torn tails skipped)."""
    keys: list[tuple[str, str, int, str]] = []
    try:
        lines = journal_path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return keys
    for line in lines:
        try:
            doc = json.loads(line)
        except ValueError:
            continue
        if not isinstance(doc, dict) or "result" not in doc:
            continue
        keys.append(
            (
                str(doc.get("experiment", "")),
                str(doc.get("label", "")),
                int(doc.get("seed", 0)),
                str(doc.get("params", "")),
            )
        )
    return keys


_CHILD_FLAG = "--run-child-sweep"


def _child_sweep(
    journal: Path, seed: int, n_points: int, sleep_s: float, payload_words: int
) -> int:
    """The dispatcher process the ``dispatcher`` scenario murders."""
    from repro.runner.checkpoint import SweepCheckpoint
    from repro.runner.dispatch.backend import DispatchBackend
    from repro.runner.engine import SweepRunner

    params = ChaosParams(
        n_points=n_points, sleep_s=sleep_s, payload_words=payload_words
    )
    backend = DispatchBackend(lease_timeout=5.0, heartbeat_interval=0.25)
    runner = SweepRunner(
        jobs=4,
        backend=backend,
        checkpoint=SweepCheckpoint(journal),
    )
    runner.run(CHAOS, params, seed=seed)
    return 0


def chaos_dispatcher(
    seed: int = 0,
    params: Optional[ChaosParams] = None,
    min_points_before_kill: int = 4,
    verbose: bool = True,
) -> dict[str, Any]:
    """Scenario 2: SIGKILL the dispatcher itself, resume under serial."""
    from repro.runner.checkpoint import SweepCheckpoint
    from repro.runner.engine import SweepRunner

    params = params if params is not None else ChaosParams()
    expected = _serial_reference(params, seed)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        journal = Path(tmp) / "sweep.jsonl"
        child = subprocess.Popen(
            [
                sys.executable, "-m", "repro.runner.dispatch.chaos",
                _CHILD_FLAG,
                "--journal", str(journal),
                "--seed", str(seed),
                "--points", str(params.n_points),
                "--sleep", str(params.sleep_s),
                "--words", str(params.payload_words),
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        # Wait until the journal proves real progress, then murder the
        # dispatcher at full speed — workers become orphans and their
        # heartbeat writes fail, so they self-reap (os._exit in
        # worker.py); the journal keeps whatever was durable.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if len(_journal_keys(journal)) >= min_points_before_kill:
                break
            if child.poll() is not None:
                break
            time.sleep(0.05)
        premature = child.poll() is not None
        if not premature:
            os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30.0)
        keys_before = _journal_keys(journal)

        resume_runner = SweepRunner(
            jobs=1,
            backend="serial",
            checkpoint=SweepCheckpoint(journal),
            resume=True,
        )
        # Same params as the killed run: the journal key folds in the
        # params digest, so resuming with different params would replay
        # nothing.  The sleep only costs the unfinished remainder.
        payload = resume_runner.run(CHAOS, params, seed=seed)
        got = _payload_bytes(payload)
        stats = resume_runner.last_stats
        keys_after = _journal_keys(journal)
        report = {
            "scenario": "dispatcher",
            "ok": got == expected,
            "byte_identical": got == expected,
            "points_journalled_before_kill": len(keys_before),
            "points_resumed": stats.resumed if stats else -1,
            "points_executed_after_resume": stats.executed if stats else -1,
            "journal_records": len(keys_after),
            "journal_unique": len(set(keys_after)),
        }
        if premature:
            report["ok"] = False
            report["error"] = "child sweep finished before the kill landed"
        if len(keys_before) < min_points_before_kill:
            report["ok"] = False
            report["error"] = "dispatcher died with too little progress"
        if len(keys_after) != len(set(keys_after)):
            report["ok"] = False
            report["error"] = "journal holds duplicate point records"
        if len(set(keys_after)) != params.n_points:
            report["ok"] = False
            report["error"] = (
                f"journal holds {len(set(keys_after))} unique points, "
                f"expected {params.n_points}"
            )
        if stats is not None and stats.resumed != len(keys_before):
            report["ok"] = False
            report["error"] = "resume replayed a different set than journalled"
    if verbose:
        print(json.dumps(report, sort_keys=True), file=sys.stderr)
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.dispatch.chaos",
        description="chaos-test the dispatch backend (see module docstring)",
    )
    parser.add_argument(
        "--mode",
        choices=("workers", "dispatcher", "all"),
        default="all",
        help="which scenario to run (default: all)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--points", type=int, default=24)
    parser.add_argument("--sleep", type=float, default=0.2)
    parser.add_argument("--words", type=int, default=64)
    parser.add_argument("--kills", type=int, default=3)
    parser.add_argument("--stops", type=int, default=1)
    parser.add_argument(
        _CHILD_FLAG,
        dest="run_child_sweep",
        action="store_true",
        help=argparse.SUPPRESS,
    )
    parser.add_argument("--journal", type=str, default="")
    args = parser.parse_args(argv)

    # ``python -m`` loads this file as ``__main__`` — but workers
    # unpickle params by qualified class name, so everything below must
    # use the canonical module object, not the ``__main__`` alias.
    from repro.runner.dispatch import chaos as canonical

    if args.run_child_sweep:
        if not args.journal:
            parser.error(f"{_CHILD_FLAG} requires --journal")
        return canonical._child_sweep(
            Path(args.journal), args.seed, args.points, args.sleep, args.words
        )

    params = canonical.ChaosParams(
        n_points=args.points, sleep_s=args.sleep, payload_words=args.words
    )
    reports = []
    if args.mode in ("workers", "all"):
        reports.append(
            canonical.chaos_workers(
                seed=args.seed, params=params,
                kills=args.kills, stops=args.stops,
            )
        )
    if args.mode in ("dispatcher", "all"):
        reports.append(canonical.chaos_dispatcher(seed=args.seed, params=params))
    ok = all(report["ok"] for report in reports)
    print(
        "chaos: " + ("PASS" if ok else "FAIL")
        + " (" + ", ".join(r["scenario"] for r in reports) + ")"
    )
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
