"""The dispatch backend: leases, classified retry, quarantine, breakers.

One :class:`DispatchBackend` is a tiny cluster scheduler behind the
ordinary :class:`~repro.runner.backends.base.SweepBackend` protocol.
``open()`` binds a listener, spawns the fleet described by the host
config (local subprocesses by default; anything the spawn template can
start otherwise), and hands the sockets to a single *reactor* thread.
``submit()`` enqueues a :class:`PointSpec` and returns a real
:class:`concurrent.futures.Future`; the reactor assigns points to idle
workers as ``task`` frames and resolves futures from ``result`` /
``error`` frames.

All fleet state — workers, leases, retry bookkeeping, breakers — is
owned by the reactor thread alone; the only cross-thread traffic is
the submit queue, the stop flag, and completed futures (which are
thread-safe by contract).  That single-writer discipline is what keeps
the failure handling auditable: every state transition happens in one
loop, in one thread, in a deterministic order.

Fault model (see the package docstring for the full story):

* worker EOF / torn frame / spawn death  → *transient*: the lease is
  re-enqueued on another worker, within ``RetryPolicy.transient_budget``;
* heartbeat silence past ``lease_timeout`` → *lease expiry*: same
  re-enqueue path, separately counted (this is how a ``SIGSTOP``-wedged
  or network-partitioned worker is survived);
* an ``error`` frame → the failure signature is compared across
  workers: a repeat from a *different* worker quarantines the point
  (``quarantine.jsonl``); otherwise it retries with the policy's seeded
  exponential backoff until ``max_attempts``;
* a lease older than ``task_timeout`` → a speculative duplicate on
  another worker, first result wins (identical by determinism);
* ``breaker_threshold`` consecutive failures on one host → the host is
  drained; after ``breaker_cooldown`` a half-open probe readmits it.

Results land in the ordinary sweep journal via the engine, so a
dispatch run killed at any instant resumes under any backend.
"""

from __future__ import annotations

import concurrent.futures
import heapq
import json
import os
import selectors
import socket
import subprocess
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Optional, Union

import repro
from repro.obs.dispatch import DispatchLog
from repro.runner.backends.base import PointSpec, SweepBackend
from repro.runner.dispatch.frames import (
    FrameError,
    decode_payload,
    encode_payload,
    listen_socket,
    recv_frame,
    send_frame,
)
from repro.runner.dispatch.breaker import CircuitBreaker
from repro.runner.dispatch.hosts import HostSpec, default_hosts
from repro.runner.dispatch.retry import (
    BackoffSchedule,
    DispatchError,
    QuarantinedPoint,
    RetryPolicy,
    WorkerLost,
    failure_signature,
)

__all__ = ["DispatchBackend"]

#: env var naming a file that receives ``<worker> <pid>`` lines as the
#: fleet spawns — the seam the chaos harness's worker-killer reads.
PIDFILE_ENV = "REPRO_DISPATCH_PIDFILE"

#: reactor tick: the cadence of lease/speculation/backoff checks.
_TICK_SECONDS = 0.05

#: spawn failures tolerated per host before it is written off entirely
#: (breakers handle *transient* host sickness; this bounds a host whose
#: spawn command can never succeed, so the reactor cannot probe forever).
_SPAWN_FAIL_LIMIT = 10

#: error-frame type names treated as environmental rather than the
#: point's own fault (the worker survived to report them, but they
#: describe the world around the experiment, not the experiment).
_TRANSIENT_ERROR_NAMES = frozenset(
    {
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionAbortedError",
        "BrokenPipeError",
        "EOFError",
        "LeaseExpired",
    }
)


class _Worker:
    """Reactor-private record of one fleet member."""

    __slots__ = (
        "name", "host", "proc", "sock", "state", "last_beat",
        "hello_deadline", "task",
    )

    SPAWNED = "spawned"
    IDLE = "idle"
    BUSY = "busy"
    DEAD = "dead"

    def __init__(
        self,
        name: str,
        host: HostSpec,
        proc: Optional["subprocess.Popen[bytes]"],
        hello_deadline: float,
    ) -> None:
        self.name = name
        self.host = host
        self.proc = proc
        self.sock: Optional[socket.socket] = None
        self.state = self.SPAWNED
        self.last_beat = 0.0
        self.hello_deadline = hello_deadline
        self.task: Optional[int] = None


class _Task:
    """Reactor-private record of one submitted point."""

    __slots__ = (
        "tid", "spec", "label", "future", "schedule", "leases",
        "failed_attempts", "executions", "transient_retries",
        "failures", "avoid", "lost_workers", "speculated", "done",
    )

    def __init__(
        self,
        tid: int,
        spec: PointSpec,
        future: "concurrent.futures.Future[tuple[float, Any]]",
        schedule: BackoffSchedule,
    ) -> None:
        self.tid = tid
        self.spec = spec
        self.label = str(getattr(spec.point, "label", tid))
        self.future = future
        self.schedule = schedule
        #: worker name -> lease start (monotonic); >1 while speculating.
        self.leases: dict[str, float] = {}
        self.failed_attempts = 0
        self.executions = 0
        self.transient_retries = 0
        #: every error frame seen, for quarantine records.
        self.failures: list[dict[str, str]] = []
        #: workers this point already failed on — avoided when possible.
        self.avoid: set[str] = set()
        self.lost_workers: set[str] = set()
        self.speculated = False
        self.done = False


class DispatchBackend(SweepBackend):
    """Multi-host sweep dispatch over the frame protocol."""

    name = "dispatch"
    inline = False
    supports_cancellation = False
    supports_shared_memory = False

    def __init__(
        self,
        hosts: Optional[list[HostSpec]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        lease_timeout: float = 10.0,
        heartbeat_interval: float = 0.5,
        task_timeout: Optional[float] = None,
        spawn_timeout: float = 20.0,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
        quarantine_path: Union[str, Path, None] = None,
        bind_host: str = "127.0.0.1",
        advertise_host: Optional[str] = None,
        pid_file: Union[str, Path, None] = None,
        extra_sys_path: tuple[str, ...] = (),
        log: Optional[DispatchLog] = None,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if heartbeat_interval >= lease_timeout:
            raise ValueError(
                "heartbeat_interval must be < lease_timeout (a healthy "
                "worker must fit several beats inside one lease)"
            )
        self.hosts_config = hosts
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = heartbeat_interval
        self.task_timeout = task_timeout
        self.spawn_timeout = spawn_timeout
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.quarantine_path = (
            Path(quarantine_path) if quarantine_path is not None else None
        )
        self.bind_host = bind_host
        self.advertise_host = advertise_host or bind_host
        self._pid_file = Path(pid_file) if pid_file is not None else None
        self.extra_sys_path = tuple(extra_sys_path)
        self.log = log if log is not None else DispatchLog()

        self._hosts: list[HostSpec] = []
        self._listener: Optional[socket.socket] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._waker: Optional[tuple[socket.socket, socket.socket]] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_mode: Optional[str] = None  # None | "wait" | "cancel"
        self._submit_lock = threading.Lock()
        self._submissions: deque[
            tuple[PointSpec, "concurrent.futures.Future[tuple[float, Any]]"]
        ] = deque()

        # reactor-owned state (created in open()).
        self._workers: dict[str, _Worker] = {}
        self._pending_socks: dict[socket.socket, float] = {}
        self._tasks: dict[int, _Task] = {}
        self._ready: deque[int] = deque()
        self._delayed: list[tuple[float, int]] = []
        self._breakers: dict[str, CircuitBreaker] = {}
        self._spawn_counter: dict[str, int] = {}
        self._spawn_failures: dict[str, int] = {}
        self._dead_hosts: set[str] = set()
        self._next_tid = 0
        self._roster: list[str] = []

        # counters (reactor-written, read anywhere under the GIL).
        self.lease_expirations = 0
        self.transient_retries = 0
        self.timeouts = 0
        self.quarantined = 0
        self.duplicate_results = 0
        self.frames_sent = 0
        self.frames_received = 0

    # ------------------------------------------------------------------
    # SweepBackend protocol
    # ------------------------------------------------------------------

    def open(self, max_workers: int) -> None:
        """Bind the listener, spawn the fleet, start the reactor."""
        if self._thread is not None and self._thread.is_alive():
            return  # already open (engine re-dispatch without close)
        self._hosts = list(
            self.hosts_config
            if self.hosts_config is not None
            else default_hosts(max_workers)
        )
        if self._pid_file is None and os.environ.get(PIDFILE_ENV, "").strip():
            self._pid_file = Path(os.environ[PIDFILE_ENV])
        self._breakers = {
            host.name: CircuitBreaker(self.breaker_threshold, self.breaker_cooldown)
            for host in self._hosts
        }
        self._spawn_counter = {host.name: 0 for host in self._hosts}
        self._spawn_failures = {host.name: 0 for host in self._hosts}
        self._dead_hosts = set()
        self._workers = {}
        self._pending_socks = {}
        self._tasks = {}
        self._ready = deque()
        self._delayed = []
        self._stop_mode = None

        self._listener = listen_socket(self.bind_host)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, ("listener",))
        waker_r, waker_w = socket.socketpair()
        waker_r.setblocking(False)
        self._waker = (waker_r, waker_w)
        self._selector.register(waker_r, selectors.EVENT_READ, ("waker",))

        now = time.monotonic()
        for host in self._hosts:
            for _ in range(host.workers):
                self._spawn_worker(host, now)

        self._thread = threading.Thread(
            target=self._reactor, name="dispatch-reactor", daemon=True
        )
        self._thread.start()

    def submit(
        self, spec: PointSpec
    ) -> "concurrent.futures.Future[tuple[float, Any]]":
        """Queue one point for the fleet; resolves to ``(seconds, value)``."""
        if self._thread is None or not self._thread.is_alive():
            raise RuntimeError("DispatchBackend.submit before open()")
        future: "concurrent.futures.Future[tuple[float, Any]]" = (
            concurrent.futures.Future()
        )
        with self._submit_lock:
            self._submissions.append((spec, future))
        self._wake()
        return future

    def close(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Drain (or cancel) the fleet and stop the reactor."""
        thread = self._thread
        if thread is None:
            return
        self._stop_mode = "cancel" if cancel_futures else "wait"
        self._wake()
        if thread.is_alive():
            thread.join(timeout=60.0 if wait else 10.0)
        self._thread = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def address(self) -> str:
        """The dispatcher's ``host:port`` as workers dial it."""
        if self._listener is None:
            raise RuntimeError("DispatchBackend is not open")
        return f"{self.advertise_host}:{self._listener.getsockname()[1]}"

    @property
    def worker_roster(self) -> tuple[str, ...]:
        """Every worker name ever spawned, in spawn order."""
        return tuple(self._roster)

    def collect_stats(self) -> dict[str, int]:
        """Fleet counters the engine folds into :class:`SweepStats`."""
        return {
            "lease_expirations": self.lease_expirations,
            "transient_retries": self.transient_retries,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "duplicate_results": self.duplicate_results,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "workers_spawned": len(self._roster),
            "breaker_trips": sum(
                breaker.opened_count for breaker in self._breakers.values()
            ),
        }

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------

    def _worker_env(self) -> dict[str, str]:
        """The spawned worker's environment: inherit + importable src."""
        env = dict(os.environ)
        roots = [str(Path(repro.__file__).resolve().parents[1])]
        roots.extend(self.extra_sys_path)
        if env.get("PYTHONPATH"):
            roots.append(env["PYTHONPATH"])
        env["PYTHONPATH"] = os.pathsep.join(roots)
        return env

    def _spawn_worker(self, host: HostSpec, now: float) -> Optional[_Worker]:
        """Start one worker process on ``host``; None on spawn failure."""
        index = self._spawn_counter[host.name]
        self._spawn_counter[host.name] = index + 1
        worker_name = f"{host.name}{index}"
        command = host.command(self.address, worker_name, self.heartbeat_interval)
        try:
            proc = subprocess.Popen(
                command,
                env=self._worker_env(),
                stdout=subprocess.DEVNULL,
                start_new_session=True,
            )
        except OSError as exc:
            self._note_host_failure(host.name, f"spawn failed: {exc}")
            return None
        worker = _Worker(worker_name, host, proc, now + self.spawn_timeout)
        self._workers[worker_name] = worker
        self._roster.append(worker_name)
        self._write_pid(worker_name, proc.pid)
        self.log.emit("spawn", worker=worker_name, host=host.name)
        return worker

    def _write_pid(self, worker_name: str, pid: int) -> None:
        """Append one roster line to the pid file, durably."""
        if self._pid_file is None:
            return
        with open(self._pid_file, "a", encoding="utf-8") as handle:
            handle.write(f"{worker_name} {pid}\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _note_host_failure(self, host_name: str, detail: str) -> None:
        """Record a spawn-level failure against a host's breaker."""
        self._breaker_failure(host_name, detail)
        self._spawn_failures[host_name] += 1
        if self._spawn_failures[host_name] >= _SPAWN_FAIL_LIMIT:
            self._dead_hosts.add(host_name)

    def _breaker_failure(self, host_name: str, detail: str) -> None:
        breaker = self._breakers[host_name]
        was_open = breaker.state == CircuitBreaker.OPEN
        breaker.record_failure()
        if breaker.state == CircuitBreaker.OPEN and not was_open:
            self.log.emit("breaker_open", host=host_name, detail=detail)

    def _breaker_success(self, host_name: str) -> None:
        breaker = self._breakers[host_name]
        if breaker.state != CircuitBreaker.CLOSED:
            self.log.emit("breaker_close", host=host_name)
        breaker.record_success()

    def _breaker_admits(self, host_name: str) -> bool:
        breaker = self._breakers[host_name]
        before = breaker.state
        admitted = breaker.allows()
        if admitted and before == CircuitBreaker.OPEN:
            self.log.emit("breaker_probe", host=host_name)
        return admitted

    # ------------------------------------------------------------------
    # the reactor
    # ------------------------------------------------------------------

    def _reactor(self) -> None:
        """Single-threaded fleet event loop; owns all dispatch state."""
        assert self._selector is not None
        try:
            while True:
                for key, _ in self._selector.select(_TICK_SECONDS):
                    kind = key.data[0]
                    if kind == "listener":
                        self._accept()
                    elif kind == "waker":
                        self._drain_waker()
                    elif kind == "pending":
                        self._service_pending(key.fileobj)  # type: ignore[arg-type]
                    else:
                        self._service_worker(key.data[1])
                now = time.monotonic()
                self._ingest_submissions()
                self._check_spawned(now)
                self._check_leases(now)
                self._check_speculation(now)
                self._promote_delayed(now)
                self._ensure_capacity()
                self._assign(now)
                self._check_fleet_viability()
                if self._stop_mode == "cancel":
                    break
                if self._stop_mode == "wait" and not self._undone_tasks():
                    break
        finally:
            self._teardown()

    def _wake(self) -> None:
        if self._waker is not None:
            try:
                self._waker[1].send(b"x")
            except OSError:  # pragma: no cover - reactor already gone
                pass

    def _drain_waker(self) -> None:
        assert self._waker is not None
        try:
            while self._waker[0].recv(4096):
                pass
        except BlockingIOError:
            pass

    def _undone_tasks(self) -> list[_Task]:
        return [task for task in self._tasks.values() if not task.done]

    def _ingest_submissions(self) -> None:
        """Move main-thread submissions into reactor-owned task state."""
        while True:
            with self._submit_lock:
                if not self._submissions:
                    return
                spec, future = self._submissions.popleft()
            tid = self._next_tid
            self._next_tid += 1
            key = f"{spec.experiment_id}/{getattr(spec.point, 'label', tid)}"
            task = _Task(tid, spec, future, self.retry_policy.schedule(key))
            self._tasks[tid] = task
            self._ready.append(tid)

    # -- connections ---------------------------------------------------

    def _accept(self) -> None:
        assert self._listener is not None and self._selector is not None
        try:
            conn, _addr = self._listener.accept()
        except OSError:
            return
        conn.settimeout(max(2.0 * self.lease_timeout, 5.0))
        self._pending_socks[conn] = time.monotonic()
        self._selector.register(conn, selectors.EVENT_READ, ("pending", conn))

    def _service_pending(self, sock: socket.socket) -> None:
        """First frame from a fresh connection must be a hello."""
        assert self._selector is not None
        try:
            frame = recv_frame(sock)
        except OSError:
            frame = None
        if frame is None or frame.get("op") != "hello":
            self._drop_pending(sock)
            return
        self.frames_received += 1
        worker = self._workers.get(str(frame.get("worker", "")))
        if worker is None or worker.state != _Worker.SPAWNED:
            self._drop_pending(sock)
            return
        self._pending_socks.pop(sock, None)
        self._selector.modify(sock, selectors.EVENT_READ, ("worker", worker.name))
        worker.sock = sock
        worker.state = _Worker.IDLE
        worker.last_beat = time.monotonic()
        self.log.emit("hello", worker=worker.name, host=worker.host.name)

    def _drop_pending(self, sock: socket.socket) -> None:
        assert self._selector is not None
        self._pending_socks.pop(sock, None)
        try:
            self._selector.unregister(sock)
        except KeyError:  # pragma: no cover - already unregistered
            pass
        try:
            sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def _service_worker(self, worker_name: str) -> None:
        worker = self._workers.get(worker_name)
        if worker is None or worker.sock is None:
            return
        try:
            frame = recv_frame(worker.sock)
        except (FrameError, OSError) as exc:
            self._mark_dead(worker, "worker_dead", str(exc))
            return
        if frame is None:
            self._mark_dead(worker, "worker_dead", "connection closed")
            return
        self.frames_received += 1
        worker.last_beat = time.monotonic()
        op = frame["op"]
        if op == "heartbeat":
            return
        if op == "result":
            self._on_result(worker, frame)
        elif op == "error":
            self._on_error(worker, frame)
        elif op == "bye":
            worker.state = _Worker.DEAD  # clean exit, no breaker charge
            self._detach(worker)

    # -- results and failures ------------------------------------------

    def _release(self, worker: _Worker, task: Optional[_Task]) -> None:
        worker.task = None
        if worker.state == _Worker.BUSY:
            worker.state = _Worker.IDLE
        if task is not None:
            task.leases.pop(worker.name, None)

    def _on_result(self, worker: _Worker, frame: dict[str, Any]) -> None:
        tid = int(frame["task"])
        task = self._tasks.get(tid)
        self._release(worker, task)
        if task is None or task.done:
            self.duplicate_results += 1
            return
        try:
            value = decode_payload(str(frame["value"]))
            seconds = float(frame["seconds"])
        except Exception as exc:  # noqa: BLE001 - any decode failure
            self._mark_dead(worker, "worker_dead", f"undecodable result: {exc}")
            return
        task.done = True
        self._breaker_success(worker.host.name)
        self.log.emit(
            "result", worker=worker.name, host=worker.host.name,
            point=task.label, attempt=task.executions,
        )
        if not task.future.cancelled():
            task.future.set_result((seconds, value))

    def _on_error(self, worker: _Worker, frame: dict[str, Any]) -> None:
        tid = int(frame["task"])
        task = self._tasks.get(tid)
        self._release(worker, task)
        if task is None or task.done:
            self.duplicate_results += 1
            return
        error_type = str(frame.get("error_type", "Exception"))
        message = str(frame.get("error", ""))
        signature = failure_signature(error_type, message)
        task.failures.append(
            {
                "worker": worker.name,
                "host": worker.host.name,
                "error_type": error_type,
                "error": message,
                "traceback": str(frame.get("traceback", "")),
                "signature": signature,
            }
        )
        task.avoid.add(worker.name)
        self._breaker_failure(worker.host.name, signature)
        if error_type in _TRANSIENT_ERROR_NAMES:
            self._retry_transient(task, worker.name, signature)
            return
        task.failed_attempts += 1
        repeat_workers = sorted(
            {
                failure["worker"]
                for failure in task.failures
                if failure["signature"] == signature
            }
        )
        if len(repeat_workers) >= 2:
            self._quarantine(task, signature, repeat_workers)
            return
        if task.leases:
            return  # a speculative twin is still running; let it decide
        if self.retry_policy.allows(task.failed_attempts + 1):
            delay = task.schedule.delay(task.failed_attempts)
            heapq.heappush(self._delayed, (time.monotonic() + delay, task.tid))
            self.log.emit(
                "retry", worker=worker.name, point=task.label,
                attempt=task.failed_attempts, detail=f"deterministic +{delay:.3f}s",
            )
            return
        task.done = True
        if not task.future.cancelled():
            task.future.set_exception(
                DispatchError(
                    f"point {task.label!r} failed {task.failed_attempts} "
                    f"attempt(s); last error {signature}"
                )
            )

    def _retry_transient(self, task: _Task, lost_worker: str, detail: str) -> None:
        """Re-enqueue after an environmental failure, within budget."""
        task.lost_workers.add(lost_worker)
        if task.done or task.leases:
            return  # resolved meanwhile, or a speculative twin survives
        if self.retry_policy.allows_transient(task.transient_retries):
            task.transient_retries += 1
            self.transient_retries += 1
            task.avoid.add(lost_worker)
            self._ready.append(task.tid)
            self.log.emit(
                "retry", worker=lost_worker, point=task.label,
                attempt=task.transient_retries, detail=f"transient: {detail}",
            )
            return
        task.done = True
        if not task.future.cancelled():
            task.future.set_exception(
                WorkerLost(
                    task.label,
                    task.transient_retries,
                    tuple(sorted(task.lost_workers)),
                )
            )

    def _quarantine(
        self, task: _Task, signature: str, workers: list[str]
    ) -> None:
        """Same signature from two distinct workers: record and move on."""
        path = self.quarantine_path or Path("quarantine.jsonl")
        record = {
            "schema": "repro-quarantine/1",
            "experiment": task.spec.experiment_id,
            "label": task.label,
            "seed": task.spec.seed,
            "params_digest": task.spec.params_digest,
            "signature": signature,
            "workers": workers,
            "executions": task.executions,
            "failures": [
                {
                    "worker": failure["worker"],
                    "host": failure["host"],
                    "error_type": failure["error_type"],
                    "error": failure["error"],
                    "traceback": failure["traceback"],
                }
                for failure in task.failures
                if failure["signature"] == signature
            ],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.quarantined += 1
        task.done = True
        self.log.emit(
            "quarantine", point=task.label, detail=signature,
            attempt=task.failed_attempts,
        )
        if not task.future.cancelled():
            task.future.set_exception(
                QuarantinedPoint(
                    task.label, signature, tuple(workers), str(path)
                )
            )

    # -- worker death and leases ---------------------------------------

    def _detach(self, worker: _Worker) -> None:
        """Unregister and close a worker's socket; reap its process."""
        assert self._selector is not None
        if worker.sock is not None:
            try:
                self._selector.unregister(worker.sock)
            except KeyError:  # pragma: no cover - already unregistered
                pass
            try:
                worker.sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            worker.sock = None
        if worker.proc is not None and worker.proc.poll() is None:
            try:
                worker.proc.kill()
            except OSError:  # pragma: no cover - already gone
                pass

    def _mark_dead(self, worker: _Worker, event: str, detail: str) -> None:
        """A worker is gone (EOF, torn frame, expired lease, no hello)."""
        if worker.state == _Worker.DEAD:
            return
        worker.state = _Worker.DEAD
        self._detach(worker)
        self.log.emit(
            event, worker=worker.name, host=worker.host.name, detail=detail
        )
        self._breaker_failure(worker.host.name, detail)
        tid = worker.task
        worker.task = None
        if tid is None:
            return
        task = self._tasks.get(tid)
        if task is None:
            return
        task.leases.pop(worker.name, None)
        if event == "expire":
            self.lease_expirations += 1
        self._retry_transient(task, worker.name, detail)

    def _check_spawned(self, now: float) -> None:
        """Catch workers that died (or never dialed in) before hello."""
        for worker in list(self._workers.values()):
            if worker.state != _Worker.SPAWNED:
                continue
            proc = worker.proc
            if proc is not None and proc.poll() is not None:
                worker.state = _Worker.DEAD
                self._note_host_failure(
                    worker.host.name,
                    f"{worker.name} exited {proc.returncode} before hello",
                )
                self.log.emit(
                    "worker_dead", worker=worker.name, host=worker.host.name,
                    detail=f"exit {proc.returncode} before hello",
                )
            elif now > worker.hello_deadline:
                worker.state = _Worker.DEAD
                self._detach(worker)
                self._note_host_failure(
                    worker.host.name, f"{worker.name} never sent hello"
                )
                self.log.emit(
                    "worker_dead", worker=worker.name, host=worker.host.name,
                    detail="hello timeout",
                )
        for sock, accepted in list(self._pending_socks.items()):
            if now - accepted > self.spawn_timeout:
                self._drop_pending(sock)

    def _check_leases(self, now: float) -> None:
        """Silence past the lease deadline forfeits leases (and workers)."""
        for worker in list(self._workers.values()):
            if worker.state not in (_Worker.IDLE, _Worker.BUSY):
                continue
            if now - worker.last_beat > self.lease_timeout:
                self._mark_dead(
                    worker,
                    "expire",
                    f"no heartbeat for {now - worker.last_beat:.2f}s "
                    f"(lease_timeout={self.lease_timeout})",
                )

    def _check_speculation(self, now: float) -> None:
        """A lease older than task_timeout gets a speculative duplicate."""
        if self.task_timeout is None:
            return
        for task in self._tasks.values():
            if task.done or task.speculated or not task.leases:
                continue
            oldest = min(task.leases.values())
            if now - oldest > self.task_timeout:
                task.speculated = True
                self.timeouts += 1
                self._ready.append(task.tid)
                self.log.emit(
                    "speculate", point=task.label,
                    detail=f"lease age {now - oldest:.2f}s",
                )

    def _promote_delayed(self, now: float) -> None:
        while self._delayed and self._delayed[0][0] <= now:
            _, tid = heapq.heappop(self._delayed)
            self._ready.append(tid)

    # -- capacity and assignment ---------------------------------------

    def _live_count(self, host_name: str) -> int:
        return sum(
            1
            for worker in self._workers.values()
            if worker.host.name == host_name and worker.state != _Worker.DEAD
        )

    def _ensure_capacity(self) -> None:
        """Respawn toward each host's configured size while work remains."""
        if self._stop_mode is not None or not self._undone_tasks():
            return
        now = time.monotonic()
        for host in self._hosts:
            if host.name in self._dead_hosts:
                continue
            while self._live_count(host.name) < host.workers:
                if not self._breaker_admits(host.name):
                    break
                if self._spawn_worker(host, now) is None:
                    break

    def _pick_worker(self, task: _Task) -> Optional[_Worker]:
        """An idle worker for ``task``, preferring untried ones."""
        idle = sorted(
            (
                worker
                for worker in self._workers.values()
                if worker.state == _Worker.IDLE
                and worker.name not in task.leases
            ),
            key=lambda worker: worker.name,
        )
        for strict in (True, False):
            for worker in idle:
                if strict and worker.name in task.avoid:
                    continue
                if not self._breaker_admits(worker.host.name):
                    continue
                return worker
        return None

    def _assign(self, now: float) -> None:
        """Lease ready points onto idle workers, FIFO."""
        deferred: deque[int] = deque()
        while self._ready:
            tid = self._ready.popleft()
            task = self._tasks.get(tid)
            if task is None or task.done or task.future.cancelled():
                if task is not None and not task.done:
                    task.done = True  # cancelled before any lease
                continue
            worker = self._pick_worker(task)
            if worker is None:
                deferred.append(tid)
                break
            self._lease(task, worker, now)
        deferred.extend(self._ready)
        self._ready = deferred

    def _lease(self, task: _Task, worker: _Worker, now: float) -> None:
        """Send one task frame; a send failure is a worker death."""
        assert worker.sock is not None
        spec = task.spec
        frame = {
            "op": "task",
            "task": task.tid,
            "experiment": spec.experiment_id,
            "params": encode_payload(spec.params),
            "point": encode_payload(spec.point),
            "seed": spec.seed,
            "params_digest": spec.params_digest,
        }
        try:
            send_frame(worker.sock, frame)
        except OSError as exc:
            self._mark_dead(worker, "worker_dead", f"task send failed: {exc}")
            if not task.done and not task.leases and task.tid not in self._ready:
                # _mark_dead only re-enqueues leased tasks; this one was
                # never leased, so put it straight back.
                self._ready.appendleft(task.tid)
            return
        self.frames_sent += 1
        worker.state = _Worker.BUSY
        worker.task = task.tid
        task.leases[worker.name] = now
        task.executions += 1
        self.log.emit(
            "lease", worker=worker.name, host=worker.host.name,
            point=task.label, attempt=task.executions,
        )

    def _check_fleet_viability(self) -> None:
        """Fail outstanding work when no host can ever run it again."""
        undone = self._undone_tasks()
        if not undone:
            return
        if len(self._dead_hosts) < len(self._hosts):
            return
        if any(
            worker.state in (_Worker.SPAWNED, _Worker.IDLE, _Worker.BUSY)
            for worker in self._workers.values()
        ):
            return
        for task in undone:
            task.done = True
            if not task.future.cancelled():
                task.future.set_exception(
                    DispatchError(
                        f"point {task.label!r}: dispatch fleet unavailable "
                        f"(all {len(self._hosts)} host(s) exhausted "
                        f"{_SPAWN_FAIL_LIMIT} spawn failures)"
                    )
                )

    # -- shutdown ------------------------------------------------------

    def _teardown(self) -> None:
        """Reactor exit path: settle futures, stop workers, close sockets."""
        for task in self._tasks.values():
            if task.done:
                continue
            task.done = True
            if not task.future.cancel() and not task.future.cancelled():
                task.future.set_exception(
                    DispatchError(
                        f"point {task.label!r}: dispatcher shut down"
                    )
                )
        for worker in self._workers.values():
            if worker.sock is not None:
                try:
                    send_frame(worker.sock, {"op": "shutdown"})
                    self.frames_sent += 1
                except OSError:  # pragma: no cover - racing worker death
                    pass
        # A short grace window lets idle workers exit on the shutdown
        # frame instead of eating a SIGKILL from _detach below.
        grace_deadline = time.monotonic() + 2.0
        while time.monotonic() < grace_deadline and any(
            worker.proc is not None and worker.proc.poll() is None
            for worker in self._workers.values()
        ):
            time.sleep(0.02)
        for worker in self._workers.values():
            self._detach(worker)
            worker.state = _Worker.DEAD
        # _detach kills, but only a wait() collects the exit status —
        # without it every worker lingers as a zombie for the life of
        # the dispatching process.
        for worker in self._workers.values():
            proc = worker.proc
            if proc is None:
                continue
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - kill-proof
                proc.kill()
                proc.wait(timeout=5.0)
        for sock in list(self._pending_socks):
            self._drop_pending(sock)
        self.log.emit("shutdown", detail=f"{len(self._roster)} worker(s) spawned")
        assert self._selector is not None
        if self._listener is not None:
            try:
                self._selector.unregister(self._listener)
            except KeyError:  # pragma: no cover
                pass
            self._listener.close()
            self._listener = None
        if self._waker is not None:
            for end in self._waker:
                try:
                    self._selector.unregister(end)
                except KeyError:
                    pass
                end.close()
            self._waker = None
        self._selector.close()
        self._selector = None
