"""Microbenchmark harness for the simulation hot path.

The repo's north star is a simulator that runs as fast as the hardware
allows; this package is how that claim is measured instead of asserted.
``python -m repro.perf`` runs a set of named microbenchmarks — pure
kernel event churn, single-link saturation, a quick incast point, and a
TCP-TRIM probe cycle — and writes a machine-readable ``BENCH_*.json``
artifact with median/p90 wall-clock, executed events per second, and
peak RSS, so every PR leaves a comparable performance trajectory behind.

See :mod:`repro.perf.harness` for the JSON schema and the regression
comparison used by CI (``--baseline``/``--max-regression``).
"""

from repro.perf.benchmarks import BENCHMARKS, BenchmarkSpec
from repro.perf.harness import (
    BENCH_SCHEMA,
    BenchResult,
    compare_to_baseline,
    run_benchmark,
    write_bench_json,
)

__all__ = [
    "BENCHMARKS",
    "BENCH_SCHEMA",
    "BenchResult",
    "BenchmarkSpec",
    "compare_to_baseline",
    "run_benchmark",
    "write_bench_json",
]
