"""Named microbenchmarks over the simulation hot path.

Every benchmark is a deterministic, self-contained function of a single
integer ``scale`` knob: it builds a fresh simulation, drives it, and
returns the executed-event count plus a behavior checksum.  Determinism
matters twice — repeats must measure the same work, and the checksum
lets the harness assert that a timing run did not silently change
behavior between repeats.

The four benchmarks target the layers every paper figure funnels
through:

``kernel_churn``
    Pure :class:`~repro.sim.kernel.Simulator` scheduling: many flows
    each re-arming a long retransmission-style timer per tick, so most
    scheduled events are cancelled before firing — the workload that
    dominates TCP simulations and the one the timer wheel exists for.
``link_saturation``
    One Reno flow saturating a single link: the
    ``Link.transmit``/``TcpSource`` send/ACK pipeline with no loss.
``incast_quick``
    A 16-to-1 synchronized burst into a shallow buffer: loss recovery,
    RTO back-off, and go-back-N — the retransmission-heavy path.
``trim_probe``
    A TCP-TRIM connection sending trains separated by OFF gaps: the
    probe cycle (suspend, probe pair, deadline, window inheritance).
``telemetry_trace``
    The ``trim_probe`` workload with a full-capture flight-recorder bus
    attached: the enabled-path cost of :mod:`repro.obs`.  (The
    *disabled* path is covered by gating ``kernel_churn`` — every other
    benchmark runs with telemetry off, so any overhead leak shows up
    there.)
``session_arrivals``
    Open-loop schedule compilation (:mod:`repro.http.openloop`): MMPP
    arrival sampling, geometric session chains, size draws, fan-out,
    and the final sort — the pure-Python precompute every offered-load
    sweep point runs before its simulation.
``lint_cold`` / ``lint_incremental``
    The static-analysis toolchain itself: whole-program simlint over a
    synthetic import-chained tree, cold versus a warm incremental cache
    with a single-module edit.  ``events`` counts modules covered, so
    the pair reads directly as modules-per-second and their ratio is
    the speedup the content-hash cache buys an editor loop.
``sweep_fanout`` / ``sweep_fanout_shm``
    The sweep dispatch path itself rather than a simulation: a
    synthetic experiment whose points return multi-megabyte payloads,
    fanned out through :class:`~repro.runner.SweepRunner` on the
    ``process`` and ``shm`` backends respectively.  The pair
    A/B-measures result transport — pickle pipe versus shared-memory
    segments — on identical work; their relative throughput is the
    number the shm backend exists for.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.experiments.base import Experiment, Point
from repro.net.topology import build_star
from repro.obs import Telemetry, TraceSpec
from repro.sim.kernel import Event, Simulator
from repro.tcp.base import TcpSink, TcpSource
from repro.tcp.factory import create_source, default_config

__all__ = ["BENCHMARKS", "BenchmarkSpec", "BenchRun"]


@dataclass
class BenchRun:
    """What one benchmark execution did (identical across repeats)."""

    events: int
    sim_seconds: float
    checksum: int


class _ChurnFlow:
    """One synthetic flow: every tick re-arms a long timeout timer.

    This mirrors what a TCP sender does on every ACK — cancel the
    pending RTO, schedule a new one ~400 ticks in the future — so the
    overwhelming majority of scheduled timers are cancelled long before
    they fire.
    """

    __slots__ = ("sim", "interval", "timeout", "remaining", "timer", "fired")

    def __init__(
        self, sim: Simulator, interval: float, timeout: float, ticks: int
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.timeout = timeout
        self.remaining = ticks
        self.timer: Optional[Event] = None
        self.fired = 0

    def start(self) -> None:
        self.sim.schedule(self.interval, self.on_tick)

    def on_tick(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
        self.timer = self.sim.schedule(self.timeout, self.on_timeout)
        self.remaining -= 1
        if self.remaining > 0:
            self.sim.schedule(self.interval, self.on_tick)

    def on_timeout(self) -> None:
        self.timer = None
        self.fired += 1


def bench_kernel_churn(scale: int) -> BenchRun:
    """Pure kernel event churn: schedule/cancel/pop, no network."""
    sim = Simulator(check_invariants=False)
    n_flows = 50
    ticks = 40 * scale
    flows = []
    for i in range(n_flows):
        # Slightly different periods per flow so the heap stays mixed.
        flow = _ChurnFlow(
            sim, interval=5e-4 + i * 1e-6, timeout=0.2, ticks=ticks
        )
        flow.start()
        flows.append(flow)
    sim.run()
    checksum = sim.events_executed * 31 + sum(f.fired for f in flows)
    return BenchRun(sim.events_executed, sim.now, checksum)


def _star_flow(
    protocol: str,
    n_servers: int,
    buffer_pkts: int,
    max_cwnd: float = 1e12,
    telemetry: Optional[Telemetry] = None,
    **extras: object,
) -> tuple[Simulator, list[TcpSource]]:
    sim = Simulator(check_invariants=False, telemetry=telemetry)
    star = build_star(
        sim,
        n_servers,
        bandwidth_bps=1e9,
        delay_s=50e-6,
        buffer_pkts=buffer_pkts,
    )
    config = default_config(
        protocol, min_rto=0.01, initial_rto=0.01, max_cwnd=max_cwnd
    )
    sources = []
    for i, server in enumerate(star.servers):
        source = create_source(
            protocol,
            sim,
            server,
            star.frontend.node_id,
            flow_id=i,
            config=config,
            **extras,  # type: ignore[arg-type]
        )
        TcpSink(sim, star.frontend, flow_id=i)
        sources.append(source)
    return sim, sources


def bench_link_saturation(scale: int) -> BenchRun:
    """One lossless Reno flow pushing a long message through one link.

    ``max_cwnd`` is pinned just above the path BDP so the flow reaches a
    steady saturated pipeline: without the cap, validation-free Reno
    slow-starts its window (and the queue, and every RTT-scaled cost)
    without bound and the benchmark measures a pathology instead of the
    per-packet pipeline.
    """
    sim, (source,) = _star_flow(
        "reno", n_servers=1, buffer_pkts=256, max_cwnd=64.0
    )
    segments = 800 * scale
    source.send_message(segments)
    sim.run(until=30.0)
    if not source.all_acked:  # pragma: no cover - sizing bug guard
        raise RuntimeError("link_saturation did not drain; resize the benchmark")
    checksum = sim.events_executed * 31 + source.stats.segments_sent
    return BenchRun(sim.events_executed, sim.now, checksum)


def bench_incast_quick(scale: int) -> BenchRun:
    """16-to-1 synchronized bursts into a shallow buffer (loss recovery)."""
    sim, sources = _star_flow("reno", n_servers=16, buffer_pkts=32)
    segments = 3 * scale
    for source in sources:
        sim.schedule_at(0.001, source.send_message, segments)
    sim.run(until=60.0)
    done = sum(1 for s in sources if s.all_acked)
    if done != len(sources):  # pragma: no cover - sizing bug guard
        raise RuntimeError("incast_quick did not complete; resize the benchmark")
    retx = sum(s.stats.retransmits for s in sources)
    checksum = sim.events_executed * 31 + retx
    return BenchRun(sim.events_executed, sim.now, checksum)


def bench_trim_probe(scale: int) -> BenchRun:
    """TCP-TRIM trains separated by OFF gaps: repeated probe cycles."""
    sim, (source,) = _star_flow(
        "trim",
        n_servers=1,
        buffer_pkts=100,
        capacity_pps=1e9 / (8.0 * 1460),
        base_rtt=2 * 50e-6 + 1500 * 8 / 1e9,
    )
    trains = 6 * scale
    for k in range(trains):
        sim.schedule_at(0.001 + k * 0.02, source.send_message, 40)
    sim.run(until=0.001 + trains * 0.02 + 1.0)
    cycles = source.probes_completed + source.probes_timed_out  # type: ignore[attr-defined]
    if cycles == 0:  # pragma: no cover - sizing bug guard
        raise RuntimeError("trim_probe never probed; resize the benchmark")
    checksum = sim.events_executed * 31 + cycles
    return BenchRun(sim.events_executed, sim.now, checksum)


def bench_telemetry_trace(scale: int) -> BenchRun:
    """The trim_probe workload with every trace channel recording.

    Measures the enabled flight recorder end to end: emit-point guards,
    record construction, ring-buffer pushes, and queue taps.  The
    checksum folds in the captured record count so a silently broken
    emit point fails the behavior check rather than flattering the
    timing.
    """
    telemetry = Telemetry(TraceSpec.parse("all"))
    sim, (source,) = _star_flow(
        "trim",
        n_servers=1,
        buffer_pkts=100,
        capacity_pps=1e9 / (8.0 * 1460),
        base_rtt=2 * 50e-6 + 1500 * 8 / 1e9,
        telemetry=telemetry,
    )
    trains = 6 * scale
    for k in range(trains):
        sim.schedule_at(0.001 + k * 0.02, source.send_message, 40)
    sim.run(until=0.001 + trains * 0.02 + 1.0)
    captured = telemetry.total_records() + sum(telemetry.overflow.values())
    if captured == 0:  # pragma: no cover - sizing bug guard
        raise RuntimeError("telemetry_trace captured nothing; emit points broken?")
    checksum = sim.events_executed * 31 + captured
    return BenchRun(sim.events_executed, sim.now, checksum)


@dataclass
class _FanoutParams:
    """Params of the synthetic payload experiment (picklable)."""

    #: sized so result transport dominates pool startup and dispatch —
    #: small payloads measure fork overhead, not the pipe-versus-shm
    #: difference this pair exists for.
    n_points: int = 4
    payload_bytes: int = 16 * 1024 * 1024


class _SweepPayloadExperiment(Experiment):
    """Points that cost nothing to compute and megabytes to return.

    Construction is a single ``bytes`` repeat (no per-byte Python work),
    so a sweep over these points measures the dispatch path — worker
    round-trip and, above all, result transport — rather than the
    payload's creation.  Deterministic in (point, seed) alone, like any
    real experiment.
    """

    # Resolved in workers by module:attribute path, not the figure
    # registry — benchmarks must not pollute the CLI's experiment list.
    id = "repro.perf.benchmarks:SWEEP_PAYLOAD"
    title = "synthetic bulk-payload sweep (benchmark only)"
    params_cls = _FanoutParams
    uses_protocols = False

    def points(self, params: _FanoutParams) -> list[Point]:
        return [Point(f"p{i}", {"i": i}) for i in range(params.n_points)]

    def run_point(self, params: _FanoutParams, point: Point, seed: int) -> bytes:
        i = point.kwargs["i"]
        fill = (seed ^ i) % 251
        return i.to_bytes(8, "little") + bytes([fill]) * params.payload_bytes

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        return list(results)


#: the instance workers import (see ``_SweepPayloadExperiment.id``).
SWEEP_PAYLOAD = _SweepPayloadExperiment()


def _run_fanout(scale: int, backend: str) -> BenchRun:
    """Fan ``scale`` bulk points through a SweepRunner on ``backend``."""
    from repro.runner import SweepRunner, create_backend

    params = _FanoutParams(n_points=scale)
    runner = SweepRunner(
        jobs=2,
        cache=None,
        backend=create_backend(backend),
        schedule="fifo",  # A/B fairness: identical submission order
    )
    payloads = runner.run(SWEEP_PAYLOAD, params, seed=1)
    stats = runner.last_stats
    if stats is None or stats.failures:  # pragma: no cover - sizing bug guard
        raise RuntimeError(f"sweep_fanout[{backend}] had failing points")
    checksum = 0
    total = 0
    for blob in payloads:
        checksum = zlib.crc32(blob, checksum)
        total += len(blob)
    # "events" = bytes moved, so events_per_sec reads as transport
    # bandwidth and the process/shm pair compares directly.
    return BenchRun(total, 0.0, checksum)


def bench_sweep_fanout(scale: int) -> BenchRun:
    """Bulk-payload sweep on the ``process`` backend (pickle pipe)."""
    return _run_fanout(scale, "process")


def bench_sweep_fanout_shm(scale: int) -> BenchRun:
    """The identical sweep on ``shm`` (shared-memory result transport)."""
    return _run_fanout(scale, "shm")


def bench_dispatch_fanout(scale: int) -> BenchRun:
    """Framed-socket sweep dispatch: protocol overhead, not bandwidth.

    Fans ``scale`` quarter-megabyte points through the ``dispatch``
    backend's length-prefixed frame protocol (task out, pickle-b64
    result back, heartbeats throughout).  ``events`` counts frames
    crossing the dispatcher, so ``events_per_sec`` reads as frame
    throughput; wall-clock — which includes the fleet spawn, the price
    a real multi-host sweep pays once — compares against
    ``sweep_fanout`` to show what the fault-tolerance machinery costs
    over a bare process pool.  Payloads are deliberately ~256 KiB: big
    enough that frames carry real weight, small enough that the
    protocol (not loopback bandwidth) dominates.
    """
    from repro.runner import SweepRunner, create_backend

    backend = create_backend("dispatch")
    params = _FanoutParams(n_points=scale, payload_bytes=256 * 1024)
    runner = SweepRunner(
        jobs=2,
        cache=None,
        backend=backend,
        schedule="fifo",
    )
    payloads = runner.run(SWEEP_PAYLOAD, params, seed=1)
    stats = runner.last_stats
    if stats is None or stats.failures:  # pragma: no cover - sizing bug guard
        raise RuntimeError("dispatch_fanout had failing points")
    checksum = 0
    for blob in payloads:
        checksum = zlib.crc32(blob, checksum)
    frames = backend.frames_sent + backend.frames_received
    if frames < scale * 2:  # pragma: no cover - sizing bug guard
        raise RuntimeError("dispatch_fanout moved fewer frames than points")
    return BenchRun(frames, 0.0, checksum)


def bench_session_arrivals(scale: int) -> BenchRun:
    """Open-loop schedule compilation: MMPP arrivals through sessions.

    Measures the pure compile path of :mod:`repro.http.openloop` —
    vectorized arrival sampling, geometric chain expansion, size draws
    from the paper CDF, fan-out, and the final sort — which every
    offered-load sweep point pays before its simulation starts.  The
    checksum folds the canonical trace encoding, so a change in the
    draw sequence (not just the count) fails the behavior check.
    """
    from repro.http.openloop import (
        FanoutSpec,
        MmppArrivals,
        SessionConfig,
        compile_schedule,
        trace_rows,
    )
    from repro.obs.export import dump_row

    arrivals = MmppArrivals(
        rate_on=600.0, rate_off=40.0, mean_on=0.05, mean_off=0.15
    )
    config = SessionConfig(
        mean_requests=3.0,
        think_time_s=0.02,
        fanout=FanoutSpec(aggregators=1, leaves=2),
    )
    schedule = compile_schedule(
        arrivals, config, seed=1, horizon=0.25 * scale
    )
    if len(schedule) == 0:  # pragma: no cover - sizing bug guard
        raise RuntimeError("session_arrivals compiled an empty schedule")
    checksum = 0
    for row in trace_rows(schedule):
        checksum = zlib.crc32(dump_row(row).encode("utf-8"), checksum)
    return BenchRun(len(schedule), schedule.horizon, checksum)


# ---------------------------------------------------------------------------
# simlint whole-program analysis benchmarks
# ---------------------------------------------------------------------------


def _lint_module_source(i: int) -> str:
    """Deterministic source for synthetic module ``i`` of the lint tree.

    An import chain (module *i* imports module *i-1*) gives the
    cross-module rules real resolution work, unit-suffixed arithmetic
    exercises SIM014's hot path, and every fourth module carries one
    mutable-default finding so the finding pipeline is measured too.
    """
    lines = [
        '"""Synthetic lint workload module."""',
        "",
        "from __future__ import annotations",
        "",
    ]
    if i > 0:
        lines.append(f"from linttree.mod{i - 1:03d} import helper{i - 1:03d}")
        lines.append("")
    lines += [
        f"def helper{i:03d}(delay_s: float, size_bytes: int) -> float:",
        "    total_s = delay_s + delay_s",
        "    return total_s * size_bytes",
        "",
    ]
    if i > 0:
        lines += [
            f"def chain{i:03d}(x: float) -> float:",
            f"    return helper{i - 1:03d}(x, 8) + {i}.0",
            "",
        ]
    if i % 4 == 1:
        lines += [
            f"def sweep{i:03d}(acc=[]):",
            "    return acc",
            "",
        ]
    return "\n".join(lines)


def _lint_findings_checksum(findings: Sequence[Any], extra: int) -> int:
    blob = "\n".join(f.render() for f in sorted(findings)).encode("utf-8")
    return zlib.crc32(blob) * 31 + extra


def bench_lint_cold(scale: int) -> BenchRun:
    """Whole-program simlint over ``scale`` synthetic modules, no cache.

    Measures the full pipeline — parsing, import-graph construction,
    taint-summary fixpoints, and every per-file and cross-module rule —
    exactly as an uncached CI lint run pays it.  ``events`` counts
    modules analyzed so the cold/incremental pair compares directly as
    modules-per-second.
    """
    from repro.lint.core import lint_module_in_project
    from repro.lint.project import ProjectContext

    sources = {
        f"linttree.mod{i:03d}": _lint_module_source(i) for i in range(scale)
    }
    project = ProjectContext.from_sources(sources)
    findings = []
    for info in project.modules_in_path_order():
        findings.extend(lint_module_in_project(project, info.context))
    if not findings:  # pragma: no cover - sizing bug guard
        raise RuntimeError("lint_cold fixture produced no findings")
    checksum = _lint_findings_checksum(findings, len(project.modules))
    return BenchRun(len(project.modules), 0.0, checksum)


#: scale -> (package dir, cache file, flip bit) for the incremental
#: benchmark; the tree and warm cache persist across repeats on purpose
#: (the cold pass is exactly what bench_lint_cold measures).
_LINT_TREES: dict[int, dict[str, Any]] = {}


def bench_lint_incremental(scale: int) -> BenchRun:
    """One-module edit re-linted through the incremental cache.

    First call per scale materializes the synthetic tree on disk and
    warms the cache (untimed in practice: the harness's warm-up repeat
    absorbs it).  Every timed repeat then rewrites the leaf module —
    whose reverse-import closure is itself alone — and re-lints, so the
    measurement is hash checking plus a single module's analysis plus
    finding replay for the rest: the editor-loop cost the cache exists
    to minimize.
    """
    import tempfile
    from pathlib import Path

    from repro.lint.cache import lint_paths_cached

    state = _LINT_TREES.get(scale)
    if state is None:
        root = Path(tempfile.mkdtemp(prefix="repro-lint-bench-"))
        pkg = root / "linttree"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        for i in range(scale):
            (pkg / f"mod{i:03d}.py").write_text(
                _lint_module_source(i), encoding="utf-8"
            )
        cache = root / "lint-cache.json"
        lint_paths_cached([str(pkg)], cache)  # cold pass warms the cache
        state = {"pkg": pkg, "cache": cache, "flip": 0}
        _LINT_TREES[scale] = state
    state["flip"] ^= 1
    leaf = state["pkg"] / f"mod{scale - 1:03d}.py"
    suffix = "# edited\n" if state["flip"] else "# reverted\n"
    leaf.write_text(
        _lint_module_source(scale - 1) + suffix, encoding="utf-8"
    )
    findings, journal = lint_paths_cached([str(state["pkg"])], state["cache"])
    if len(journal.analyzed) != 1:  # pragma: no cover - sizing bug guard
        raise RuntimeError(
            f"lint_incremental expected 1 dirty module, got {journal.analyzed}"
        )
    covered = len(journal.analyzed) + len(journal.reused)
    checksum = _lint_findings_checksum(findings, covered)
    return BenchRun(covered, 0.0, checksum)


@dataclass
class BenchmarkSpec:
    """A named benchmark plus its quick/full work sizes."""

    name: str
    description: str
    fn: Callable[[int], BenchRun]
    quick_scale: int
    full_scale: int

    def scale_for(self, quick: bool) -> int:
        return self.quick_scale if quick else self.full_scale


#: registry, in display order.  Scales are sized so a quick run takes
#: well under a second per repeat on commodity hardware and a full run
#: a few seconds — long enough to dominate timer jitter.
BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        "kernel_churn",
        "pure event-loop schedule/cancel churn (RTO-timer pattern)",
        bench_kernel_churn,
        quick_scale=25,
        full_scale=150,
    ),
    BenchmarkSpec(
        "link_saturation",
        "single Reno flow saturating one link, no loss",
        bench_link_saturation,
        quick_scale=10,
        full_scale=60,
    ),
    BenchmarkSpec(
        "incast_quick",
        "16-to-1 synchronized burst with loss recovery",
        bench_incast_quick,
        quick_scale=12,
        full_scale=60,
    ),
    BenchmarkSpec(
        "trim_probe",
        "TCP-TRIM ON/OFF trains driving probe cycles",
        bench_trim_probe,
        quick_scale=8,
        full_scale=40,
    ),
    BenchmarkSpec(
        "telemetry_trace",
        "trim_probe workload with the full flight recorder attached",
        bench_telemetry_trace,
        quick_scale=8,
        full_scale=40,
    ),
    BenchmarkSpec(
        "session_arrivals",
        "open-loop MMPP schedule compilation (arrivals through sessions)",
        bench_session_arrivals,
        quick_scale=8,
        full_scale=40,
    ),
    BenchmarkSpec(
        "lint_cold",
        "whole-program simlint over a synthetic tree, no cache",
        bench_lint_cold,
        quick_scale=24,
        full_scale=96,
    ),
    BenchmarkSpec(
        "lint_incremental",
        "one-module edit re-linted through the incremental cache",
        bench_lint_incremental,
        quick_scale=24,
        full_scale=96,
    ),
    BenchmarkSpec(
        "sweep_fanout",
        "bulk-payload sweep dispatch on the process backend (pickle pipe)",
        bench_sweep_fanout,
        quick_scale=8,
        full_scale=16,
    ),
    BenchmarkSpec(
        "sweep_fanout_shm",
        "the identical sweep on the shm backend (shared-memory transport)",
        bench_sweep_fanout_shm,
        quick_scale=8,
        full_scale=16,
    ),
    BenchmarkSpec(
        "dispatch_fanout",
        "quarter-MiB sweep through the dispatch backend's frame protocol",
        bench_dispatch_fanout,
        quick_scale=8,
        full_scale=16,
    ),
)
