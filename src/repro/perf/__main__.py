"""Command-line microbenchmark runner.

Usage::

    python -m repro.perf --quick                    # CI smoke: small scales
    python -m repro.perf                            # full scales
    python -m repro.perf --bench kernel_churn --repeats 9
    python -m repro.perf --quick --output BENCH_kernel.json \
        --baseline benchmarks/baselines/BENCH_kernel.json --max-regression 30

Exit status is non-zero when a ``--baseline`` comparison finds a
benchmark slower than ``--max-regression`` percent (CI's gate).
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.benchmarks import BENCHMARKS
from repro.perf.harness import (
    compare_to_baseline,
    load_bench_json,
    run_benchmark,
    write_bench_json,
)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Run simulation hot-path microbenchmarks.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small work sizes (CI smoke); default is the full sizes",
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=[spec.name for spec in BENCHMARKS],
        help="run only this benchmark (repeatable; default: all)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timed repetitions per benchmark (default: 5)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_kernel.json",
        help="BENCH JSON artifact path (default: BENCH_kernel.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="compare against this committed BENCH JSON artifact",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=30.0,
        help="fail when a compared benchmark is this much slower than "
        "the baseline, in percent (default: 30)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list benchmarks and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for spec in BENCHMARKS:
            print(f"{spec.name:18s} {spec.description}")
        return 0
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    selected = [
        spec
        for spec in BENCHMARKS
        if args.bench is None or spec.name in args.bench
    ]
    results = {}
    print(f"mode={'quick' if args.quick else 'full'} repeats={args.repeats}")
    for spec in selected:
        result = run_benchmark(spec, repeats=args.repeats, quick=args.quick)
        results[spec.name] = result
        print(
            f"  {spec.name:18s} median={result.wall_median_s * 1e3:8.1f} ms  "
            f"p90={result.wall_p90_s * 1e3:8.1f} ms  "
            f"{result.events_per_sec:12,.0f} events/s  "
            f"rss={result.peak_rss_kb / 1024:.0f} MB"
        )
    out = write_bench_json(args.output, results, quick=args.quick)
    print(f"wrote {out}")

    if args.baseline is None:
        return 0
    current = load_bench_json(out)
    baseline = load_bench_json(args.baseline)
    if baseline["mode"] != current["mode"]:
        print(
            f"warning: comparing a {current['mode']!r} run against a "
            f"{baseline['mode']!r} baseline",
            file=sys.stderr,
        )
    failed = False
    for cmp in compare_to_baseline(current, baseline):
        verdict = "ok"
        if cmp.drop_pct > args.max_regression:
            verdict = f"REGRESSION (> {args.max_regression:.0f}%)"
            failed = True
        print(
            f"  {cmp.name:18s} baseline={cmp.baseline_events_per_sec:12,.0f} "
            f"now={cmp.current_events_per_sec:12,.0f} events/s  "
            f"delta={-cmp.drop_pct:+6.1f}%  {verdict}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
