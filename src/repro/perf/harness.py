"""Timing harness and BENCH JSON artifact handling.

One :class:`BenchResult` per benchmark: the wall-clock distribution over
``repeats`` runs (median and p90), the executed-event throughput, and
the process peak RSS.  ``write_bench_json`` serializes a run to the
``repro-bench/1`` schema::

    {
      "schema": "repro-bench/1",
      "mode": "quick" | "full",
      "python": "3.12.1",
      "platform": "Linux-...",
      "results": {
        "kernel_churn": {
          "repeats": 5,
          "scale": 25,
          "events": 51550,
          "sim_seconds": 0.7,
          "wall_median_s": 0.041,
          "wall_p90_s": 0.043,
          "events_per_sec": 1257317.0,
          "peak_rss_kb": 34816
        },
        ...
      }
    }

No timestamps on purpose: artifacts are compared across commits, and
a timestamp would make byte-identical runs produce different files.

``compare_to_baseline`` implements the CI regression gate: for each
benchmark present in both files it reports the relative drop in
``events_per_sec`` (positive = slower than baseline).  Wall-clock on
shared CI runners is noisy, so the gate is a coarse backstop (the
default threshold is 30%); the committed baseline is the trajectory's
anchor and should be re-recorded whenever the hot path intentionally
changes speed.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Union

from repro.perf.benchmarks import BenchmarkSpec

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "Regression",
    "compare_to_baseline",
    "load_bench_json",
    "run_benchmark",
    "write_bench_json",
]

BENCH_SCHEMA = "repro-bench/1"


@dataclass
class BenchResult:
    """Aggregated measurement for one benchmark."""

    repeats: int
    scale: int
    events: int
    sim_seconds: float
    wall_median_s: float
    wall_p90_s: float
    events_per_sec: float
    peak_rss_kb: int


@dataclass
class Regression:
    """One benchmark's throughput drop relative to the baseline."""

    name: str
    baseline_events_per_sec: float
    current_events_per_sec: float

    @property
    def drop_pct(self) -> float:
        """Relative slowdown in percent (negative = faster)."""
        return 100.0 * (
            1.0 - self.current_events_per_sec / self.baseline_events_per_sec
        )


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending list."""
    if not sorted_values:
        raise ValueError("no values")
    pos = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (ru_maxrss is bytes on macOS, KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def run_benchmark(
    spec: BenchmarkSpec, repeats: int = 5, quick: bool = True
) -> BenchResult:
    """Time ``spec`` over ``repeats`` runs (plus one untimed warm-up).

    The warm-up run absorbs import costs, allocator growth, and branch
    warmup; every timed repeat must produce the identical behavior
    checksum or the benchmark is broken (a non-deterministic benchmark
    cannot anchor a trajectory) and a ``RuntimeError`` is raised.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    scale = spec.scale_for(quick)
    reference = spec.fn(scale)  # warm-up, untimed
    walls: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        run = spec.fn(scale)
        walls.append(time.perf_counter() - start)
        if run.checksum != reference.checksum:
            raise RuntimeError(
                f"benchmark {spec.name!r} is not deterministic: checksum "
                f"{run.checksum} != {reference.checksum}"
            )
    walls.sort()
    median = _percentile(walls, 50.0)
    return BenchResult(
        repeats=repeats,
        scale=scale,
        events=reference.events,
        sim_seconds=reference.sim_seconds,
        wall_median_s=median,
        wall_p90_s=_percentile(walls, 90.0),
        events_per_sec=reference.events / median if median > 0 else float("inf"),
        peak_rss_kb=_peak_rss_kb(),
    )


def write_bench_json(
    path: Union[str, Path],
    results: dict[str, BenchResult],
    quick: bool = True,
) -> Path:
    """Serialize ``results`` to the ``repro-bench/1`` schema at ``path``."""
    payload = {
        "schema": BENCH_SCHEMA,
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": {name: asdict(res) for name, res in results.items()},
    }
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def load_bench_json(path: Union[str, Path]) -> dict:
    """Read and validate a BENCH artifact."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unsupported schema {payload.get('schema')!r}; "
            f"expected {BENCH_SCHEMA!r}"
        )
    return payload


def compare_to_baseline(
    current: dict,
    baseline: dict,
    benchmarks: Optional[list[str]] = None,
) -> list[Regression]:
    """Per-benchmark throughput drop of ``current`` versus ``baseline``.

    Only benchmarks present in both artifacts are compared (so adding a
    benchmark does not require regenerating every baseline).  Returns
    every comparison; the caller applies its threshold to
    :attr:`Regression.drop_pct`.
    """
    names = benchmarks
    if names is None:
        names = sorted(
            set(current["results"]) & set(baseline["results"])
        )
    comparisons = []
    for name in names:
        cur = current["results"].get(name)
        base = baseline["results"].get(name)
        if cur is None or base is None:
            raise KeyError(f"benchmark {name!r} missing from one artifact")
        comparisons.append(
            Regression(
                name=name,
                baseline_events_per_sec=float(base["events_per_sec"]),
                current_events_per_sec=float(cur["events_per_sec"]),
            )
        )
    return comparisons
