"""The ``Experiment`` protocol: sweeps as data, execution as points.

Every paper figure/table is a sweep of mutually independent
single-process simulations.  The old API exposed one ad-hoc
``run_*(XxxParams)`` function per figure, which welded point generation
to point execution and made parallel dispatch impossible.  The redesign
splits the two:

* :meth:`Experiment.points` enumerates the sweep as picklable
  :class:`Point` records derived from a params dataclass;
* :meth:`Experiment.run_point` executes exactly one point with an
  explicit integer seed (derived per point by the runner, so results
  are identical no matter how many workers execute the sweep);
* :meth:`Experiment.reduce` folds the per-point results back into the
  figure's payload (grouping repeats, assembling case lists).

Concrete experiments register themselves in
:mod:`repro.experiments.registry` under their figure ids, and
:class:`repro.runner.SweepRunner` fans the points out to a process
pool with caching, timeouts, and progress reporting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

__all__ = ["Experiment", "Point"]


@dataclass(frozen=True)
class Point:
    """One dispatchable unit of a sweep.

    ``label`` names the point uniquely within its experiment (it keys
    the per-point seed derivation and the on-disk result cache);
    ``kwargs`` carries the point's sweep coordinates (e.g.
    ``{"n_spts": 6}``).  Both must be picklable and JSON-serializable.
    """

    label: str
    kwargs: dict = field(default_factory=dict)


class Experiment(abc.ABC):
    """A paper figure/table as a point-generating, point-running sweep.

    Subclasses set:

    * ``id`` — the canonical figure id (``"fig8"``);
    * ``aliases`` — alternative ids resolving to the same experiment
      (``("table1",)``);
    * ``title`` — one-line human description;
    * ``params_cls`` — the parameter dataclass with ``paper()`` /
      ``quick()`` presets, or None for parameterless experiments;
    * ``uses_protocols`` — False for experiments that ignore the CLI's
      ``--protocols`` list (workload characterization, ablations);
    * ``accepts_fault_plan`` — True for experiments whose params take a
      ``plan_json`` override from the CLI's ``--fault-plan`` file;
    * ``accepts_openloop`` — True for experiments whose params take
      ``arrivals``/``replay`` overrides from the CLI's ``--arrivals``
      spec and ``--replay`` trace file.
    """

    id: str = ""
    aliases: Sequence[str] = ()
    title: str = ""
    params_cls: Optional[type] = None
    uses_protocols: bool = True
    accepts_fault_plan: bool = False
    accepts_openloop: bool = False

    # ------------------------------------------------------------------
    # Parameter construction
    # ------------------------------------------------------------------
    def make_params(
        self, preset: str = "quick", protocol: Optional[str] = None, **overrides: Any
    ) -> Any:
        """Build a params dataclass for ``preset`` (and ``protocol``)."""
        if self.params_cls is None:
            raise NotImplementedError(f"{self.id} has no params class")
        if preset not in ("paper", "quick"):
            raise ValueError(f"unknown preset {preset!r} (use 'paper' or 'quick')")
        maker = self.params_cls.paper if preset == "paper" else self.params_cls.quick
        if self.uses_protocols:
            if protocol is None:
                return maker(**overrides)
            return maker(protocol, **overrides)
        return maker(**overrides)

    def select_protocols(self, protocols: Sequence[str]) -> list[str]:
        """The protocols this experiment actually runs for a CLI list.

        Most experiments run every requested protocol; overrides exist
        for figures the paper evaluates on a fixed protocol pair.
        """
        return list(protocols)

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def points(self, params: Any) -> Sequence[Point]:
        """Enumerate the independent simulation points of ``params``."""

    @abc.abstractmethod
    def run_point(self, params: Any, point: Point, seed: int) -> Any:
        """Execute one point; must not depend on any other point.

        ``seed`` is the point's derived seed (stable for a given root
        seed and point label).  The return value must be picklable — it
        crosses a process boundary and lands in the result cache.
        """

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        """Fold per-point results (aligned with ``points``) into the
        figure payload.  ``results`` holds None for failed points; the
        default drops them and returns the rest as a list."""
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def report(self, params: Any, payload: Any) -> None:
        """Print the payload the way the figure/table lays it out."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Experiment {self.id}: {self.title}>"
