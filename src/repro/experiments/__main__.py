"""Command-line experiment runner.

Usage::

    python -m repro.experiments fig6 --preset quick
    python -m repro.experiments table1 --preset paper --protocols reno,trim
    python -m repro.experiments all --preset quick

Each experiment prints rows shaped like the paper's figure/table.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ArctParams,
    ConcurrencyParams,
    FairnessParams,
    FatTreeParams,
    LargeScaleParams,
    MotivationParams,
    MultiHopParams,
    PropertiesParams,
    WebServiceParams,
    characterize_workload,
    run_arct_sweep,
    run_concurrency_sweep,
    run_fairness,
    run_fattree,
    run_large_scale_sweep,
    run_motivation,
    run_multihop,
    run_properties_sweep,
    run_queue_trace,
    run_web_service,
)

MS = 1e3


def _preset(params_cls, preset: str, protocol: str, **overrides):
    maker = params_cls.paper if preset == "paper" else params_cls.quick
    return maker(protocol, **overrides)


def fig1_fig2(args):
    wl = characterize_workload(seed=args.seed)
    print(f"Fig.1/2 workload: {len(wl.trains)} trains, {len(wl.packet_times)} packets")
    print(f"  LPTs (>=128KB): {wl.n_long_trains} "
          f"({wl.n_long_trains / len(wl.trains):.1%}, paper: ~10%)")
    print(f"  trains <= 4KB: {wl.size_fraction_below(4096):.1%} (paper: <20%)")
    print(f"  trains <= 128KB: {wl.size_fraction_below(131072):.1%} (paper: ~90%)")
    if wl.gaps:
        lo, hi = min(wl.gaps), max(wl.gaps)
        print(f"  inter-train gaps: {lo * 1e6:.0f}us .. {hi * MS:.2f}ms "
              f"(paper: hundreds of us to several ms)")
    return {
        "n_trains": len(wl.trains),
        "n_packets": len(wl.packet_times),
        "n_long_trains": wl.n_long_trains,
        "frac_le_4k": wl.size_fraction_below(4096),
        "frac_le_128k": wl.size_fraction_below(131072),
    }


def fig4_fig6(args):
    payload = {}
    for protocol in args.protocols:
        r = run_motivation(_preset(MotivationParams, args.preset, protocol))
        label = "Fig.4" if protocol == "reno" else "Fig.6"
        print(f"{label} [{protocol}] timeouts/conn={r.timeouts_per_connection} "
              f"drops={r.dropped_packets} peak_queue={r.peak_queue_pkts:.0f}pkt")
        print(f"  inherited cwnd at LPT start: "
              f"{[round(c) for c in r.inherited_cwnd]}")
        print(f"  LPT completion (ms): "
              f"{[round(t * MS, 1) for t in r.lpt_completion_times]}; "
              f"all done at t={r.all_done_time:.3f}s")
        payload[protocol] = r
    return payload


def fig5_fig7(args):
    payload = {}
    for protocol in args.protocols:
        params = _preset(ConcurrencyParams, args.preset, protocol)
        print(f"[{protocol}] ACT of SPTs with {params.n_lpts} LPTs:")
        cases = run_concurrency_sweep(params)
        for case in cases:
            print(f"  n_spt={case.n_spts:3d}  ACT={case.act * MS:9.2f}ms  "
                  f"min={case.min_ct * MS:8.2f}ms  max={case.max_ct * MS:9.2f}ms  "
                  f"spt_timeouts={case.spt_timeouts}")
        payload[protocol] = cases
    return payload


def fig8(args):
    payload = {}
    for protocol in args.protocols:
        params = _preset(LargeScaleParams, args.preset, protocol)
        print(f"[{protocol}] large-scale ACT of SPTs ({params.distribution}):")
        payload[protocol] = run_large_scale_sweep(params)
        for case in payload[protocol]:
            print(f"  servers={case.n_servers:5d}  ACT={case.act * MS:9.2f}ms  "
                  f"max={case.max_ct * MS:9.2f}ms  "
                  f"completed={case.completed}/{case.expected}  "
                  f"timeouts={case.timeouts}")
    return payload


def fig9(args):
    payload = {}
    for protocol in args.protocols:
        params = _preset(PropertiesParams, args.preset, protocol)
        trace = run_queue_trace(params, n_trains=5)
        print(f"[{protocol}] Fig.9a queue with 5 LPTs: "
              f"mean={trace.mean():6.1f}pkt  peak={trace.max():5.0f}pkt")
        print(f"[{protocol}] Fig.9b-d sweep:")
        cases = run_properties_sweep(params, counts=(2, 4, 6, 8, 10))
        for case in cases:
            print(f"  n={case.n_trains:2d}  AQL={case.average_queue_pkts:6.1f}pkt  "
                  f"drops={case.dropped_packets:6d}  "
                  f"goodput={case.goodput_bps / 1e6:7.1f}Mbps "
                  f"({case.utilization:.1%})")
        payload[protocol] = {"queue_trace": trace, "sweep": cases}
    return payload


def fig10(args):
    payload = {}
    for protocol in args.protocols:
        r = run_fairness(_preset(FairnessParams, args.preset, protocol))
        shares = [f"{s / 1e6:.0f}" for s in r.plateau_shares]
        print(f"[{protocol}] Fig.10 plateau shares (Mbps): {shares}  "
              f"Jain={r.plateau_fairness:.4f}  timeouts={r.timeouts}")
        payload[protocol] = r
    return payload


def fig11(args):
    payload = {}
    for protocol in args.protocols:
        r = run_multihop(_preset(MultiHopParams, args.preset, protocol))
        print(f"[{protocol}] Fig.11 per-sender throughput: "
              f"A={r.mean('a') / 1e6:6.1f}Mbps  B={r.mean('b') / 1e6:6.1f}Mbps  "
              f"C={r.mean('c') / 1e6:6.1f}Mbps  "
              f"timeouts={r.timeouts}  drops={r.dropped_packets}")
        payload[protocol] = r
    return payload


def fig12_table1(args):
    pods = (4, 6) if args.preset == "quick" else (4, 6, 8, 10)
    header = f"{'pods':>5} " + "".join(f"{p:>24}" for p in args.protocols)
    print("Fig.12 mean/max completion (ms) and Table I timeouts:")
    print(header)
    payload = {}
    for k in pods:
        row = [f"{k:>5}"]
        for protocol in args.protocols:
            r = run_fattree(_preset(FatTreeParams, args.preset, protocol, k=k))
            payload[f"{protocol}-pods{k}"] = r
            row.append(
                f" {r.big_mean_completion * MS:7.1f}/{r.big_max_completion * MS:7.1f}"
                f" to={r.total_timeouts:5d}"
            )
        print("".join(row))
    return payload


def fig13a(args):
    # The paper's Fig. 13(a) compares CUBIC (Linux default) and TRIM.
    protocols = [p for p in args.protocols if p not in ("dctcp", "l2dct")]
    if protocols == ["reno", "trim"]:
        protocols = ["cubic", "trim"]
    payload = {}
    for protocol in protocols:
        print(f"[{protocol}] Fig.13a ARCT vs mean response size:")
        payload[protocol] = run_arct_sweep(_preset(ArctParams, args.preset, protocol))
        for case in payload[protocol]:
            print(f"  size={case.mean_size_bytes / 1024:7.0f}KB  "
                  f"ARCT={case.arct * MS:9.2f}ms  max={case.max_ct * MS:9.2f}ms  "
                  f"timeouts={case.timeouts}")
    return payload


def fig13be(args):
    payload = {}
    for protocol in args.protocols:
        r = run_web_service(_preset(WebServiceParams, args.preset, protocol))
        print(f"[{protocol}] Fig.13b-e web service: "
              f"ARCT={r.arct * MS:7.2f}ms  p99={r.p99 * MS:7.2f}ms  "
              f"64-256KB max={r.band_max * MS:7.2f}ms  "
              f"<25ms: {r.fraction_under_threshold:.1%}  timeouts={r.timeouts}")
        payload[protocol] = r
    return payload


def ablations(args):
    from repro.experiments.ablation import (
        run_alpha_sweep,
        run_k_sweep,
        run_probe_policies,
    )

    payload = {"k_sweep": run_k_sweep()}
    print("K sweep (5 TRIM trains, 1 Gbps star):")
    for case in payload["k_sweep"]:
        print(f"  K={case.multiplier:4.2f}x Eq.22 ({case.k * 1e6:6.0f}us)  "
              f"util={case.utilization:6.1%}  AQL={case.average_queue_pkts:6.1f}  "
              f"drops={case.dropped_packets}  to={case.timeouts}")
    payload["probe_policies"] = run_probe_policies(quick=args.preset == "quick")
    print("Probe policies (motivation scenario):")
    for case in payload["probe_policies"]:
        print(f"  {case.protocol:5s}  to={case.timeouts:3d}  "
              f"drops={case.dropped_packets:5d}  "
              f"mean LPT={case.mean_lpt_completion * MS:7.1f}ms  "
              f"done@{case.all_done_time:6.3f}s")
    payload["alpha_sweep"] = run_alpha_sweep()
    print("Smooth-RTT gain sweep:")
    for case in payload["alpha_sweep"]:
        print(f"  alpha={case.alpha:4.2f}  probes={case.probes_completed:3d}  "
              f"deadline_misses={case.probe_deadline_misses:3d}  "
              f"to={case.timeouts}  done@{case.stream_finish_time * MS:7.1f}ms")
    return payload


def incast(args):
    from repro.experiments.incast import IncastParams, run_incast_sweep

    payload = {}
    for protocol in args.protocols:
        params = _preset(IncastParams, args.preset, protocol)
        print(f"[{protocol}] incast goodput vs fan-in "
              f"({params.block_bytes // 1024} KB blocks):")
        payload[protocol] = run_incast_sweep(params)
        for case in payload[protocol]:
            print(f"  n={case.n_senders:3d}  "
                  f"goodput={case.goodput_bps / 1e6:7.1f} Mbps  "
                  f"batch={case.batch_completion * MS:8.1f} ms  "
                  f"timeouts={case.timeouts}")
    return payload


EXPERIMENTS = {
    "ablations": ablations,
    "incast": incast,
    "fig1": fig1_fig2,
    "fig2": fig1_fig2,
    "fig4": fig4_fig6,
    "fig5": fig5_fig7,
    "fig6": fig4_fig6,
    "fig7": fig5_fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12_table1,
    "table1": fig12_table1,
    "fig13a": fig13a,
    "fig13be": fig13be,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run TCP-TRIM reproduction experiments.",
    )
    parser.add_argument("experiment", choices=sorted(set(EXPERIMENTS)) + ["all"])
    parser.add_argument("--preset", choices=("quick", "paper"), default="quick")
    parser.add_argument(
        "--protocols",
        default="reno,trim",
        help="comma-separated protocol list (default: reno,trim)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--output",
        default=None,
        help="write a JSON artifact of the measured results to this path",
    )
    args = parser.parse_args(argv)
    args.protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]

    names = sorted(set(EXPERIMENTS)) if args.experiment == "all" else [args.experiment]
    seen = set()
    artifacts = {}
    for name in names:
        fn = EXPERIMENTS[name]
        if fn in seen:
            continue
        seen.add(fn)
        print(f"=== {name} (preset={args.preset}) ===")
        start = time.perf_counter()
        artifacts[name] = fn(args)
        print(f"    [{time.perf_counter() - start:.1f}s]\n")
    if args.output:
        from repro.experiments.store import save_results

        path = save_results(
            args.output,
            experiment=args.experiment,
            payload=artifacts,
            preset=args.preset,
            seed=args.seed,
        )
        print(f"results written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
