"""Command-line experiment runner.

Usage::

    python -m repro.experiments fig6 --preset quick
    python -m repro.experiments fig8 --preset paper --jobs 4
    python -m repro.experiments table1 --protocols reno,trim
    python -m repro.experiments all --preset quick --no-cache

Experiments are resolved through :mod:`repro.experiments.registry` and
executed by :class:`repro.runner.SweepRunner`: every figure is a sweep
of independent points, fanned out to ``--jobs`` workers on a pluggable
execution backend (``--backend serial|process|shm``) with a
content-addressed result cache (``--cache-dir`` / ``--no-cache``).
When the cache has seen a point before, its measured runtime also
drives cost-aware scheduling (``--schedule cost``, the default):
predicted-longest points are submitted first to shrink pool makespan.
Results are bit-identical for any ``--jobs`` value, any backend, and
any schedule.  Each experiment prints rows shaped like the paper's
figure/table.

Sweeps are crash-safe: every completed point is journalled durably to a
JSONL checkpoint next to the result cache (override with
``--checkpoint``), so after a crash, ``kill -9``, or Ctrl-C the same
command with ``--resume`` replays the finished points and runs only the
remainder.  Ctrl-C itself exits with status 130 after flushing whatever
partial report is printable.  ``--fault-plan FILE`` hands a JSON
:class:`~repro.faults.FaultPlan` to experiments that take one (the
``faults`` experiment), and ``--arrivals SPEC`` / ``--replay FILE``
hand an arrival process or a recorded session trace to open-loop
experiments (the ``openloop`` experiment).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Any, Sequence

from repro.experiments import registry
from repro.experiments.base import Experiment
from repro.runner import (
    ResultCache,
    SweepCheckpoint,
    SweepInterrupted,
    SweepRunner,
)
from repro.runner.cache import default_cache_dir

#: every resolvable id (canonical figure ids plus aliases such as
#: ``fig2`` → ``fig1``) mapped to its experiment instance.
EXPERIMENTS = {name: registry.get(name) for name in registry.ids()}


def _run_one(
    name: str, exp: Experiment, runner: SweepRunner, args: argparse.Namespace
) -> object:
    """Run one experiment for the CLI's protocol list; returns payload."""
    overrides = {}
    if exp.accepts_fault_plan and args.fault_plan_json is not None:
        overrides["plan_json"] = args.fault_plan_json
    if exp.accepts_openloop:
        if args.arrivals is not None:
            overrides["arrivals"] = args.arrivals
        if args.replay_rows is not None:
            overrides["replay"] = args.replay_rows
    if exp.uses_protocols:
        protocols = exp.select_protocols(args.protocols)
        tasks = [
            (exp, exp.make_params(args.preset, protocol=p, **overrides))
            for p in protocols
        ]
        try:
            payloads = runner.run_many(tasks, seed=args.seed)
        except SweepInterrupted as interrupt:
            _report_partial(tasks, interrupt.payloads)
            raise
        for (experiment, params), payload in zip(tasks, payloads):
            experiment.report(params, payload)
        return dict(zip(protocols, payloads))
    params = exp.make_params(args.preset, **overrides)
    try:
        payload = runner.run(exp, params, seed=args.seed)
    except SweepInterrupted as interrupt:
        _report_partial([(exp, params)], interrupt.payloads)
        raise
    exp.report(params, payload)
    return payload


def _report_partial(
    tasks: Sequence[tuple[Experiment, Any]], payloads: Sequence[Any]
) -> None:
    """Best-effort printing of whatever an interrupted sweep reduced."""
    for (experiment, params), payload in zip(tasks, payloads):
        if payload is None:
            continue
        try:
            experiment.report(params, payload)
        except Exception as exc:  # noqa: BLE001 - partial payloads may not print
            # A reporter written for complete sweeps may choke on the
            # holes; fall back to the raw payload so an interrupted run
            # never exits with its surviving data invisible.
            print(
                f"[{experiment.id}] report failed on partial payload "
                f"({type(exc).__name__}: {exc}); raw payload follows:",
                file=sys.stderr,
            )
            print(repr(payload), file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        # ``trace`` is a report subcommand, not an experiment: render or
        # validate JSONL trace files written by --trace runs.  Dispatched
        # before argparse because the experiment positional has a closed
        # choice list.
        from repro.obs import report

        return report.main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run TCP-TRIM reproduction experiments.",
    )
    parser.add_argument("experiment", choices=sorted(set(EXPERIMENTS)) + ["all"])
    parser.add_argument("--preset", choices=("quick", "paper"), default="quick")
    parser.add_argument(
        "--protocols",
        default="reno,trim",
        help="comma-separated protocol list (default: reno,trim)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep points (default: 1, inline)",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "process", "shm", "dispatch"),
        default=None,
        help="sweep execution backend: serial (inline), process "
        "(worker pool, pickle transport), shm (worker pool with "
        "shared-memory result transport for trace-heavy payloads), or "
        "dispatch (fault-tolerant socket workers with heartbeat "
        "leases, classified retry, and quarantine — see --hosts); "
        "default picks serial under --jobs 1 and process otherwise. "
        "Results are identical under every backend.",
    )
    parser.add_argument(
        "--hosts",
        default=None,
        metavar="SPEC",
        help="dispatch fleet description: 'local:N' for N local worker "
        "processes, or a JSON host-list file with per-host worker "
        "counts and spawn-command templates (see EXPERIMENTS.md, "
        "Multi-host sweeps); requires --backend dispatch",
    )
    parser.add_argument(
        "--retry-policy",
        default=None,
        metavar="SPEC",
        help="failure-handling policy, e.g. "
        "'attempts=3,base=0.1,mult=2,cap=5,jitter=0.5,transient=8,"
        "seed=7': attempts caps a point's own retries (exponential "
        "backoff with deterministic seeded jitter), transient budgets "
        "environment-fault retries separately (worker death, lease "
        "expiry)",
    )
    parser.add_argument(
        "--schedule",
        choices=("cost", "fifo"),
        default="cost",
        help="sweep submission order: cost (default) uses the cache's "
        "runtime history to start predicted-longest points first; fifo "
        "keeps enumeration order. Either way results are identical.",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="sweep result cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-experiments)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the sweep result cache for this run",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point timeout in seconds (pool runs only)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="JSONL journal of completed sweep points (default: "
        "checkpoints/<experiment>-<preset>-seed<seed>.jsonl next to the "
        "result cache); every finished point is fsynced there, so a "
        "killed sweep can --resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay points already in the checkpoint journal and run "
        "only the unfinished remainder (results identical to an "
        "uninterrupted run)",
    )
    parser.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="disable the sweep checkpoint journal for this run",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        help="JSON FaultPlan file handed to experiments that take one "
        "(see the faults experiment and repro.faults.FaultPlan)",
    )
    parser.add_argument(
        "--arrivals",
        default=None,
        metavar="SPEC",
        help="arrival-process spec for open-loop experiments, e.g. "
        "'poisson:rate=200', 'mmpp:rate_on=500,rate_off=20,"
        "mean_on=0.1,mean_off=0.4', or 'diurnal:base=50,peak=400,"
        "period=1.0' (see the openloop experiment and EXPERIMENTS.md, "
        "Open-loop load)",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="JSONL session trace of (t, session, size) rows to replay "
        "instead of sampling arrivals (written by "
        "repro.http.openloop.write_trace; open-loop experiments only)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-point progress/ETA lines to stderr",
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="enable runtime invariant checks (monotonic event time, "
        "per-queue packet conservation, protocol-state sanity) in every "
        "simulation, including sweep worker processes",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="SPEC",
        help="flight-recorder capture: comma-separated channels "
        "(cwnd, rtt, state, probe, queue, rto, fault, session, pool "
        "or 'all'), with "
        "optional @N decimation on sample channels and flow=<id>/"
        "link=<glob> filters, e.g. 'cwnd@8,probe,queue'; one JSONL "
        "trace file is written per executed sweep point (see "
        "EXPERIMENTS.md, Tracing)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help="directory for the per-point JSONL trace files "
        "(default: ./traces); requires --trace",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write a JSON artifact of the measured results to this path",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest functions by "
        "cumulative time (profiles this process only: with --jobs > 1 "
        "the sweep work happens in workers and will not appear)",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        help="also dump the raw cProfile stats to this path "
        "(load with pstats or snakeviz); implies --profile",
    )
    args = parser.parse_args(argv)
    if args.profile_out:
        args.profile = True
    if args.check_invariants:
        # The environment is the one channel every Simulator sees —
        # including those built inside sweep worker processes, which
        # inherit it across the fork/spawn boundary.
        os.environ["REPRO_CHECK_INVARIANTS"] = "1"
    if args.trace_out is not None and args.trace is None:
        parser.error("--trace-out requires --trace")
    if args.trace is not None:
        from repro.obs import TraceSpec

        try:
            spec = TraceSpec.parse(args.trace)
        except ValueError as exc:
            parser.error(f"--trace: {exc}")
        # Same channel as --check-invariants: the environment reaches
        # every Simulator, inline or in a sweep worker.
        os.environ["REPRO_TRACE"] = spec.to_string()
        if args.trace_out is not None:
            os.environ["REPRO_TRACE_OUT"] = args.trace_out
    args.protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if not args.protocols:
        parser.error("--protocols must name at least one protocol")
    from repro.tcp.factory import source_class

    for protocol in args.protocols:
        try:
            source_class(protocol)
        except ValueError as exc:
            parser.error(str(exc))

    names = sorted(set(EXPERIMENTS)) if args.experiment == "all" else [args.experiment]

    args.fault_plan_json = None
    if args.fault_plan is not None:
        from repro.faults import FaultPlan

        try:
            with open(args.fault_plan, "r", encoding="utf-8") as fh:
                args.fault_plan_json = fh.read()
            FaultPlan.from_json(args.fault_plan_json)  # validate early
        except (OSError, ValueError, KeyError, TypeError) as exc:
            parser.error(f"--fault-plan {args.fault_plan}: {exc}")
        if not any(EXPERIMENTS[name].accepts_fault_plan for name in names):
            parser.error(
                f"--fault-plan: experiment {args.experiment!r} does not "
                "take a fault plan (try the 'faults' experiment)"
            )

    args.replay_rows = None
    if args.arrivals is not None and args.replay is not None:
        parser.error("--arrivals and --replay are mutually exclusive")
    if args.arrivals is not None or args.replay is not None:
        flag = "--arrivals" if args.arrivals is not None else "--replay"
        if not any(EXPERIMENTS[name].accepts_openloop for name in names):
            parser.error(
                f"{flag}: experiment {args.experiment!r} does not take "
                "an open-loop schedule (try the 'openloop' experiment)"
            )
    if args.arrivals is not None:
        from repro.http.openloop import parse_arrivals

        try:
            parse_arrivals(args.arrivals)  # validate early
        except ValueError as exc:
            parser.error(f"--arrivals: {exc}")
    if args.replay is not None:
        from repro.http.openloop import load_trace

        try:
            schedule = load_trace(args.replay)
        except (OSError, ValueError) as exc:
            parser.error(f"--replay {args.replay}: {exc}")
        args.replay_rows = tuple(
            (r.time, r.session, r.size_bytes) for r in schedule
        )

    cache_root = args.cache_dir or default_cache_dir()
    cache = None
    if not args.no_cache:
        cache = ResultCache(cache_root)
    if args.resume and args.no_checkpoint:
        parser.error("--resume needs the checkpoint journal (--no-checkpoint given)")
    checkpoint = None
    if not args.no_checkpoint:
        checkpoint_path = args.checkpoint or os.path.join(
            os.path.expanduser(cache_root),
            "checkpoints",
            f"{args.experiment}-{args.preset}-seed{args.seed}.jsonl",
        )
        checkpoint = SweepCheckpoint(checkpoint_path)

    if args.hosts is not None and args.backend != "dispatch":
        parser.error("--hosts requires --backend dispatch")
    retry_policy = None
    if args.retry_policy is not None:
        from repro.runner import RetryPolicy

        try:
            retry_policy = RetryPolicy.parse(args.retry_policy)
        except ValueError as exc:
            parser.error(f"--retry-policy: {exc}")

    backend: Any = args.backend
    quarantine_path = None
    if args.backend == "dispatch":
        from repro.runner.backends.dispatch import load_dispatch_backend
        from repro.runner.dispatch.hosts import parse_hosts

        hosts = None
        if args.hosts is not None:
            try:
                hosts = parse_hosts(args.hosts)
            except (OSError, ValueError, KeyError) as exc:
                parser.error(f"--hosts {args.hosts}: {exc}")
        # Quarantined points land next to the journal (or the cwd when
        # checkpointing is off) so a failed sweep's evidence survives it.
        if checkpoint is not None:
            quarantine_path = os.path.join(
                os.path.dirname(str(checkpoint.path)),
                f"{args.experiment}-{args.preset}-seed{args.seed}"
                ".quarantine.jsonl",
            )
        else:
            quarantine_path = "quarantine.jsonl"
        backend = load_dispatch_backend()(
            hosts=hosts,
            retry_policy=retry_policy,
            task_timeout=args.timeout,
            quarantine_path=quarantine_path,
        )
    runner = SweepRunner(
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        retry_policy=retry_policy,
        progress=args.progress,
        label=args.experiment,
        checkpoint=checkpoint,
        resume=args.resume,
        backend=backend,
        schedule=args.schedule,
    )
    artifacts = {}
    totals = {"hits": 0, "executed": 0, "quarantined": 0}

    def run_selected() -> None:
        seen: set[str] = set()
        for name in names:
            exp = EXPERIMENTS[name]
            if exp.id in seen:  # aliases (fig2, fig6, table1...) run once
                continue
            seen.add(exp.id)
            print(f"=== {name} (preset={args.preset}) ===")
            start = time.perf_counter()
            artifacts[name] = _run_one(name, exp, runner, args)
            stats = runner.last_stats
            if stats is not None:
                totals["hits"] += stats.cache_hits
                totals["executed"] += stats.executed
                totals["quarantined"] += stats.quarantined
            note = ""
            if stats is not None and stats.cache_hits:
                note += f", {stats.cache_hits}/{stats.total_points} cached"
            if stats is not None and stats.resumed:
                note += f", {stats.resumed}/{stats.total_points} resumed"
            if stats is not None and stats.quarantined:
                note += f", {stats.quarantined} QUARANTINED"
            print(f"    [{time.perf_counter() - start:.1f}s{note}]\n")

    interrupted = False
    try:
        if args.profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                run_selected()
            finally:
                profiler.disable()
                if args.profile_out:
                    profiler.dump_stats(args.profile_out)
                    print(f"profile written to {args.profile_out}", file=sys.stderr)
                stats = pstats.Stats(profiler, stream=sys.stderr)
                stats.sort_stats("cumulative").print_stats(25)
        else:
            run_selected()
    except KeyboardInterrupt as interrupt:
        # Completed points are already fsynced to the checkpoint; tell
        # the user how to pick the sweep back up and exit like an
        # interrupted process should (128 + SIGINT).
        interrupted = True
        done = 0
        if isinstance(interrupt, SweepInterrupted):
            done = (interrupt.stats.executed + interrupt.stats.cache_hits
                    + interrupt.stats.resumed)
        print("\ninterrupted", file=sys.stderr)
        if checkpoint is not None:
            print(
                f"  {done} completed point(s) journalled to {checkpoint.path}\n"
                "  re-run the same command with --resume to finish the sweep",
                file=sys.stderr,
            )
    total_hits, total_executed = totals["hits"], totals["executed"]
    if args.trace is not None and not interrupted:
        from repro.obs.capture import trace_dir

        print(
            f"traces written to {trace_dir()}/ "
            "(render with: python -m repro.experiments trace <file>)"
        )
    if args.output and not interrupted:
        from repro.experiments.store import save_results

        path = save_results(
            args.output,
            experiment=args.experiment,
            payload=artifacts,
            preset=args.preset,
            seed=args.seed,
            metadata={
                "jobs": args.jobs,
                "cache_hits": total_hits,
                "executed_points": total_executed,
            },
        )
        print(f"results written to {path}")
    if interrupted:
        return 130
    if totals["quarantined"]:
        # The sweep *completed* — every healthy point has its result —
        # but a quarantined point is a reproducible failure that must
        # not pass silently.
        print(
            f"{totals['quarantined']} point(s) quarantined"
            + (
                f"; tracebacks in {quarantine_path}"
                if quarantine_path is not None
                else ""
            ),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
