"""Command-line experiment runner.

Usage::

    python -m repro.experiments fig6 --preset quick
    python -m repro.experiments fig8 --preset paper --jobs 4
    python -m repro.experiments table1 --protocols reno,trim
    python -m repro.experiments all --preset quick --no-cache

Experiments are resolved through :mod:`repro.experiments.registry` and
executed by :class:`repro.runner.SweepRunner`: every figure is a sweep
of independent points, fanned out to ``--jobs`` worker processes with a
content-addressed result cache (``--cache-dir`` / ``--no-cache``).
Results are bit-identical for any ``--jobs`` value.  Each experiment
prints rows shaped like the paper's figure/table.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import registry
from repro.runner import ResultCache, SweepRunner
from repro.runner.cache import default_cache_dir

#: every resolvable id (canonical figure ids plus aliases such as
#: ``fig2`` → ``fig1``) mapped to its experiment instance.
EXPERIMENTS = {name: registry.get(name) for name in registry.ids()}


def _run_one(name: str, exp, runner: SweepRunner, args) -> object:
    """Run one experiment for the CLI's protocol list; returns payload."""
    if exp.uses_protocols:
        protocols = exp.select_protocols(args.protocols)
        tasks = [
            (exp, exp.make_params(args.preset, protocol=p)) for p in protocols
        ]
        payloads = runner.run_many(tasks, seed=args.seed)
        for (experiment, params), payload in zip(tasks, payloads):
            experiment.report(params, payload)
        return dict(zip(protocols, payloads))
    params = exp.make_params(args.preset)
    payload = runner.run(exp, params, seed=args.seed)
    exp.report(params, payload)
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run TCP-TRIM reproduction experiments.",
    )
    parser.add_argument("experiment", choices=sorted(set(EXPERIMENTS)) + ["all"])
    parser.add_argument("--preset", choices=("quick", "paper"), default="quick")
    parser.add_argument(
        "--protocols",
        default="reno,trim",
        help="comma-separated protocol list (default: reno,trim)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep points (default: 1, inline)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="sweep result cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-experiments)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the sweep result cache for this run",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point timeout in seconds (pool runs only)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-point progress/ETA lines to stderr",
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="enable runtime invariant checks (monotonic event time, "
        "per-queue packet conservation, protocol-state sanity) in every "
        "simulation, including sweep worker processes",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write a JSON artifact of the measured results to this path",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest functions by "
        "cumulative time (profiles this process only: with --jobs > 1 "
        "the sweep work happens in workers and will not appear)",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        help="also dump the raw cProfile stats to this path "
        "(load with pstats or snakeviz); implies --profile",
    )
    args = parser.parse_args(argv)
    if args.profile_out:
        args.profile = True
    if args.check_invariants:
        # The environment is the one channel every Simulator sees —
        # including those built inside sweep worker processes, which
        # inherit it across the fork/spawn boundary.
        os.environ["REPRO_CHECK_INVARIANTS"] = "1"
    args.protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if not args.protocols:
        parser.error("--protocols must name at least one protocol")
    from repro.tcp.factory import source_class

    for protocol in args.protocols:
        try:
            source_class(protocol)
        except ValueError as exc:
            parser.error(str(exc))

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    runner = SweepRunner(
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        progress=args.progress,
        label=args.experiment,
    )

    names = sorted(set(EXPERIMENTS)) if args.experiment == "all" else [args.experiment]
    artifacts = {}
    totals = {"hits": 0, "executed": 0}

    def run_selected() -> None:
        seen: set[str] = set()
        for name in names:
            exp = EXPERIMENTS[name]
            if exp.id in seen:  # aliases (fig2, fig6, table1...) run once
                continue
            seen.add(exp.id)
            print(f"=== {name} (preset={args.preset}) ===")
            start = time.perf_counter()
            artifacts[name] = _run_one(name, exp, runner, args)
            stats = runner.last_stats
            if stats is not None:
                totals["hits"] += stats.cache_hits
                totals["executed"] += stats.executed
            note = ""
            if stats is not None and stats.cache_hits:
                note = f", {stats.cache_hits}/{stats.total_points} cached"
            print(f"    [{time.perf_counter() - start:.1f}s{note}]\n")

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            run_selected()
        finally:
            profiler.disable()
            if args.profile_out:
                profiler.dump_stats(args.profile_out)
                print(f"profile written to {args.profile_out}", file=sys.stderr)
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(25)
    else:
        run_selected()
    total_hits, total_executed = totals["hits"], totals["executed"]
    if args.output:
        from repro.experiments.store import save_results

        path = save_results(
            args.output,
            experiment=args.experiment,
            payload=artifacts,
            preset=args.preset,
            seed=args.seed,
            metadata={
                "jobs": args.jobs,
                "cache_hits": total_hits,
                "executed_points": total_executed,
            },
        )
        print(f"results written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
