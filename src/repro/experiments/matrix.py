"""Competitor-protocol matrix: head-to-head scenario grids.

The ROADMAP's competitor matrix: every protocol in the registry —
TCP-TRIM, Tiny Buffer TCP, T-RACKs, and the classic zoo — measured
under the same scenario grid so the paper's claims can be certified
against the modern datacenter alternatives, not just legacy Reno.

One sweep *point* is one cell of the grid::

    scenario ∈ {incast, coexist, load}   (what traffic runs)
    buffer   ∈ {shallow, deep}           (switch egress in packets)
    qdisc    ∈ {droptail, fairq}         (bottleneck discipline)

and the CLI's ``--protocols`` list supplies the protocol axis (one
sweep task per protocol, exactly like every other experiment).  The
scenarios:

* ``incast`` — synchronized block-transfer waves from every sender
  (the classic fan-in collapse); measures per-wave flow completion
  times, batch goodput, and loss-recovery counters.
* ``coexist`` — half the senders run the protocol under test, half run
  a fixed partner (TRIM by default — head-to-head with the paper's
  contribution; ``baseline`` overrides it), all streaming
  concurrently; measures each side's goodput share and Jain fairness.
* ``load`` — an open-loop-style offered load: every sender submits a
  Poisson train of blocks at a fixed offered rate regardless of
  completions; measures FCT percentiles under sustained overload.

The ``fairq`` cells swap the bottleneck's egress queue for the
switch-assisted :class:`~repro.net.queues.FairQueue` through the
link's ``queue`` property (the sanctioned mid-run swap surface), so
per-flow fair-share feedback and longest-queue drop apply exactly
where the fan-in collides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.scenarios import (
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    run_until,
)
from repro.net.queues import FairQueue
from repro.net.topology import StarTopology, build_star
from repro.sim.kernel import Simulator
from repro.sim.randomness import seeded_rng
from repro.tcp.base import Message, TcpSink, TcpSource
from repro.tcp.factory import create_source, default_config

__all__ = [
    "MatrixCase",
    "MatrixExperiment",
    "MatrixParams",
    "run_matrix_point",
]

SCENARIOS = ("incast", "coexist", "load")
QDISCS = ("droptail", "fairq")


@dataclass
class MatrixParams:
    """One protocol's trip through the scenario grid."""

    protocol: str = "trim"
    #: coexistence partner; "" = auto (TRIM, or Reno when the protocol
    #: under test *is* TRIM — the grid is always a head-to-head).
    baseline: str = ""
    scenarios: Sequence[str] = SCENARIOS
    #: switch egress buffers in packets: shallow vs. deep cells.
    buffers: Sequence[int] = (8, 64)
    qdiscs: Sequence[str] = QDISCS
    n_senders: int = 8
    block_bytes: int = 64 * 1024
    bandwidth_bps: float = 1e9
    delay_s: float = 50e-6
    min_rto: float = 0.01
    start_time: float = 0.005
    deadline: float = 10.0
    #: synchronized waves per incast cell.
    waves: int = 2
    #: offered blocks per sender in the load cell.
    load_blocks: int = 6
    #: offered arrival rate per sender (blocks/second) in the load cell.
    load_rate: float = 150.0

    @classmethod
    def paper(cls, protocol: str = "trim", **overrides: Any) -> "MatrixParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "trim", **overrides: Any) -> "MatrixParams":
        defaults: dict[str, Any] = dict(
            scenarios=("incast", "coexist"),
            buffers=(8, 64),
            n_senders=6,
            waves=1,
            load_blocks=3,
        )
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)

    def partner(self) -> str:
        """The coexistence partner protocol for this grid."""
        if self.baseline:
            return self.baseline
        return "reno" if self.protocol == "trim" else "trim"


@dataclass
class MatrixCase:
    """One grid cell's measurements."""

    scenario: str
    buffer_pkts: int
    qdisc: str
    #: flow-completion times of every finished block, seconds.
    fct_mean: float
    fct_p99: float
    completed: int
    offered: int
    goodput_bps: float
    retransmits: int
    timeouts: int
    dropped_packets: int
    marked_packets: int
    #: coexist only: protocol-under-test share of total goodput (0..1)
    #: and Jain's fairness index over per-flow goodput; NaN elsewhere.
    share: float = float("nan")
    jain: float = float("nan")


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sequence."""
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank]


def _jain(values: Sequence[float]) -> float:
    """Jain's fairness index; 1.0 means perfectly equal shares."""
    if not values:
        return float("nan")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares <= 0:
        return float("nan")
    return (total * total) / (len(values) * squares)


def _install_qdisc(star: StarTopology, qdisc: str, buffer_pkts: int) -> None:
    """Apply the grid cell's bottleneck discipline."""
    if qdisc == "droptail":
        return
    if qdisc != "fairq":
        raise ValueError(f"unknown qdisc {qdisc!r} (use droptail or fairq)")
    link = star.bottleneck
    link.queue = FairQueue(buffer_pkts, name=link.name)


def _connect(
    sim: Simulator,
    params: MatrixParams,
    protocol: str,
    star: StarTopology,
    servers: Sequence[Any],
    first_flow_id: int,
) -> list[TcpSource]:
    """One connection per server towards the front-end, with explicit
    flow ids so mixed-protocol cells never collide on the demux key."""
    config = default_config(
        protocol, min_rto=params.min_rto, initial_rto=params.min_rto
    )
    extras: dict[str, Any] = {}
    if protocol == "trim":
        extras = dict(
            capacity_pps=packets_per_second(params.bandwidth_bps),
            base_rtt=path_base_rtt(
                [(params.delay_s, params.bandwidth_bps)] * 2
            ),
        )
    sources = []
    for offset, server in enumerate(servers):
        source = create_source(
            protocol,
            sim,
            server,
            star.frontend.node_id,
            flow_id=first_flow_id + offset,
            config=config,
            **extras,
        )
        TcpSink(sim, star.frontend, flow_id=first_flow_id + offset)
        sources.append(source)
    return sources


def _totals(star: StarTopology, sources: Sequence[TcpSource]) -> dict[str, int]:
    return {
        "retransmits": sum(s.stats.retransmits for s in sources),
        "timeouts": sum(s.stats.timeouts for s in sources),
        "dropped": star.network.total_dropped(),
        "marked": sum(link.queue.stats.marked for link in star.network.links),
    }


def _case_from_messages(
    scenario: str,
    buffer_pkts: int,
    qdisc: str,
    params: MatrixParams,
    star: StarTopology,
    sources: Sequence[TcpSource],
    messages: Sequence[Message],
    elapsed: float,
) -> MatrixCase:
    fcts = [m.completion_time for m in messages if m.finish_time is not None]
    completed = len(fcts)
    goodput = (
        completed * params.block_bytes * 8.0 / elapsed if elapsed > 0 else 0.0
    )
    counters = _totals(star, sources)
    return MatrixCase(
        scenario=scenario,
        buffer_pkts=buffer_pkts,
        qdisc=qdisc,
        fct_mean=sum(fcts) / completed if completed else float("nan"),
        fct_p99=_percentile(fcts, 0.99) if completed else float("nan"),
        completed=completed,
        offered=len(messages),
        goodput_bps=goodput,
        retransmits=counters["retransmits"],
        timeouts=counters["timeouts"],
        dropped_packets=counters["dropped"],
        marked_packets=counters["marked"],
    )


# ----------------------------------------------------------------------
# Scenario bodies
# ----------------------------------------------------------------------
def _run_incast(
    params: MatrixParams, buffer_pkts: int, qdisc: str, seed: int
) -> MatrixCase:
    sim = Simulator()
    star = build_star(
        sim,
        params.n_senders,
        bandwidth_bps=params.bandwidth_bps,
        delay_s=params.delay_s,
        buffer_pkts=buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(
            params.protocol, params.bandwidth_bps
        ),
    )
    _install_qdisc(star, qdisc, buffer_pkts)
    sources = _connect(sim, params, params.protocol, star, star.servers, 0)
    segments = max(1, -(-params.block_bytes // sources[0].config.mss_bytes))
    messages: list[Message] = []
    #: wave k starts only after wave k-1 fully lands (synchronized
    #: barriers, as the storage-stripe pattern behaves).
    wave_gap = params.deadline / max(1, params.waves)
    for k in range(params.waves):
        for source in sources:
            sim.schedule_at(
                params.start_time + k * wave_gap,
                lambda s=source: messages.append(s.send_message(segments)),
            )
    expected = params.waves * len(sources)
    run_until(
        sim,
        lambda: len(messages) == expected
        and all(m.finish_time is not None for m in messages),
        params.deadline,
    )
    finished = [m.finish_time for m in messages if m.finish_time is not None]
    elapsed = (max(finished) - params.start_time) if finished else 0.0
    return _case_from_messages(
        "incast", buffer_pkts, qdisc, params, star, sources, messages, elapsed
    )


def _run_coexist(
    params: MatrixParams, buffer_pkts: int, qdisc: str, seed: int
) -> MatrixCase:
    partner = params.partner()
    sim = Simulator()
    star = build_star(
        sim,
        params.n_senders,
        bandwidth_bps=params.bandwidth_bps,
        delay_s=params.delay_s,
        buffer_pkts=buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(
            params.protocol, params.bandwidth_bps
        ),
    )
    _install_qdisc(star, qdisc, buffer_pkts)
    half = max(1, params.n_senders // 2)
    mine = _connect(sim, params, params.protocol, star, star.servers[:half], 0)
    theirs = _connect(
        sim, params, partner, star, star.servers[half:], half
    )
    segments = max(1, -(-params.block_bytes // mine[0].config.mss_bytes))
    messages: list[Message] = []
    #: every sender streams back-to-back blocks until the horizon: when
    #: a block completes, the next is queued immediately (long-lived
    #: persistent connections competing for the bottleneck).
    horizon = params.deadline / 2.0

    def stream(source: TcpSource) -> None:
        def next_block(_done: Message) -> None:
            if sim.now < horizon:
                messages.append(
                    source.send_message(segments, on_complete=next_block)
                )

        messages.append(source.send_message(segments, on_complete=next_block))

    for source in mine + theirs:
        sim.schedule_at(params.start_time, lambda s=source: stream(s))
    sim.run(until=params.deadline)
    per_flow = [
        sink.delivered_bytes * 8.0 / (params.deadline - params.start_time)
        for sink in _sinks_of(star, len(mine) + len(theirs))
    ]
    my_goodput = sum(per_flow[: len(mine)])
    total = sum(per_flow)
    case = _case_from_messages(
        "coexist",
        buffer_pkts,
        qdisc,
        params,
        star,
        mine + theirs,
        messages,
        params.deadline - params.start_time,
    )
    case.share = my_goodput / total if total > 0 else float("nan")
    case.jain = _jain(per_flow)
    return case


def _sinks_of(star: StarTopology, n_flows: int) -> list[TcpSink]:
    """The front-end's sinks for flows 0..n-1, in flow order."""
    sinks = []
    for flow_id in range(n_flows):
        agent = star.frontend.agent_for(flow_id)
        if not isinstance(agent, TcpSink):  # pragma: no cover - wiring bug
            raise TypeError(f"flow {flow_id} is not terminated by a sink")
        sinks.append(agent)
    return sinks


def _run_load(
    params: MatrixParams, buffer_pkts: int, qdisc: str, seed: int
) -> MatrixCase:
    sim = Simulator()
    star = build_star(
        sim,
        params.n_senders,
        bandwidth_bps=params.bandwidth_bps,
        delay_s=params.delay_s,
        buffer_pkts=buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(
            params.protocol, params.bandwidth_bps
        ),
    )
    _install_qdisc(star, qdisc, buffer_pkts)
    sources = _connect(sim, params, params.protocol, star, star.servers, 0)
    segments = max(1, -(-params.block_bytes // sources[0].config.mss_bytes))
    rng = seeded_rng(seed)
    messages: list[Message] = []
    #: open-loop offered load: block submission times are drawn up
    #: front from a Poisson process and scheduled unconditionally —
    #: completions never gate arrivals.
    for source in sources:
        t = params.start_time
        for _ in range(params.load_blocks):
            t += float(rng.exponential(1.0 / params.load_rate))
            sim.schedule_at(
                t, lambda s=source: messages.append(s.send_message(segments))
            )
    expected = params.load_blocks * len(sources)
    run_until(
        sim,
        lambda: len(messages) == expected
        and all(m.finish_time is not None for m in messages),
        params.deadline,
    )
    finished = [m.finish_time for m in messages if m.finish_time is not None]
    elapsed = (max(finished) - params.start_time) if finished else 0.0
    return _case_from_messages(
        "load", buffer_pkts, qdisc, params, star, sources, messages, elapsed
    )


_SCENARIO_RUNNERS = {
    "incast": _run_incast,
    "coexist": _run_coexist,
    "load": _run_load,
}


def run_matrix_point(
    params: MatrixParams, scenario: str, buffer_pkts: int, qdisc: str, seed: int
) -> MatrixCase:
    """Execute one grid cell."""
    try:
        runner = _SCENARIO_RUNNERS[scenario]
    except KeyError:
        known = ", ".join(sorted(_SCENARIO_RUNNERS))
        raise ValueError(
            f"unknown matrix scenario {scenario!r}; known: {known}"
        ) from None
    return runner(params, buffer_pkts, qdisc, seed)


@register
class MatrixExperiment(Experiment):
    """Competitor matrix: scenario × buffer × qdisc per protocol."""

    id = "matrix"
    title = "Competitor-protocol head-to-head matrix"
    params_cls = MatrixParams

    def points(self, params: MatrixParams) -> list[Point]:
        return [
            Point(
                f"{scenario}-b{buffer_pkts}-{qdisc}",
                {
                    "scenario": scenario,
                    "buffer_pkts": buffer_pkts,
                    "qdisc": qdisc,
                },
            )
            for scenario in params.scenarios
            for buffer_pkts in params.buffers
            for qdisc in params.qdiscs
        ]

    def run_point(self, params: MatrixParams, point: Point, seed: int) -> Any:
        return run_matrix_point(
            params,
            point.kwargs["scenario"],
            point.kwargs["buffer_pkts"],
            point.kwargs["qdisc"],
            seed,
        )

    def reduce(
        self, params: Any, points: Sequence[Point], results: Sequence[Any]
    ) -> Any:
        """Cases in grid order; failed cells are dropped (each case
        carries its own scenario/buffer/qdisc coordinates)."""
        return [r for r in results if r is not None]

    def report(self, params: Any, payload: Any) -> None:
        partner = params.partner()
        print(
            f"[{params.protocol}] competitor matrix "
            f"({params.n_senders} senders, {params.block_bytes // 1024} KB "
            f"blocks; coexist partner: {partner}):"
        )
        header = (
            "  scenario  buf  qdisc     done     fct_mean   goodput "
            "   retx   to  drop  mark  share  jain"
        )
        print(header)
        for case in payload:
            fct = (
                f"{case.fct_mean * 1e3:7.2f} ms"
                if not math.isnan(case.fct_mean)
                else "      --  "
            )
            share = (
                f"{case.share:5.2f}" if not math.isnan(case.share) else "   --"
            )
            jain = (
                f"{case.jain:5.3f}" if not math.isnan(case.jain) else "   --"
            )
            print(
                f"  {case.scenario:<8}  {case.buffer_pkts:3d}  "
                f"{case.qdisc:<8}  {case.completed:3d}/{case.offered:<3d}  "
                f"{fct}  {case.goodput_bps / 1e6:7.1f} Mbps  "
                f"{case.retransmits:4d}  {case.timeouts:3d}  "
                f"{case.dropped_packets:4d}  {case.marked_packets:4d}  "
                f"{share}  {jain}"
            )
