"""TCP-TRIM properties — Figure 9 (a)–(d).

A star of long-train senders behind one switch (1 Gbps / 50 µs / 100
packets) exercised four ways:

* (a) the queue-length trace with 5 persistent LPTs (saw-tooth hitting
  the buffer ceiling for TCP; small and stable for TCP-TRIM);
* (b) average queue length versus the number of concurrent trains
  (RTO pinned to 1 ms so timeouts do not distort the average);
* (c) dropped packets over the same sweep (zero for TCP-TRIM);
* (d) goodput of the bottleneck link (≈98% utilization for TCP-TRIM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.scenarios import (
    ConnectionSet,
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    warm_config,
)
from repro.http.apps import LongTrainSender
from repro.metrics.monitors import QueueMonitor
from repro.net.topology import StarTopology, build_star
from repro.sim.kernel import Simulator
from repro.sim.monitor import TimeSeries
from repro.tcp.factory import default_config

__all__ = [
    "PropertiesCase",
    "PropertiesExperiment",
    "PropertiesParams",
    "run_properties_case",
    "run_properties_sweep",
    "run_queue_trace",
]


@dataclass
class PropertiesParams:
    """Shared scenario parameters for Fig. 9 (paper defaults)."""

    protocol: str = "reno"
    bandwidth_bps: float = 1e9
    delay_s: float = 50e-6
    buffer_pkts: int = 100
    start_time: float = 0.1
    end_time: float = 0.9
    min_rto: float = 1e-3  # Fig. 9(b)-(d) pin RTO at 1 ms
    queue_period: float = 0.5e-3
    measure_from: float = 0.2  # steady-state window start
    trace_trains: int = 5  # Fig. 9(a) runs five persistent LPTs
    sweep_counts: Sequence[int] = (2, 4, 6, 8, 10)

    @classmethod
    def paper(cls, protocol: str = "reno", **overrides: Any) -> "PropertiesParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "reno", **overrides: Any) -> "PropertiesParams":
        defaults = dict(end_time=0.4, measure_from=0.15)
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)


@dataclass
class PropertiesCase:
    """One sweep point of Fig. 9(b)–(d)."""

    n_trains: int
    average_queue_pkts: float
    peak_queue_pkts: float
    dropped_packets: int
    goodput_bps: float
    utilization: float
    timeouts: int


def _build(
    params: PropertiesParams, n_trains: int
) -> tuple[Simulator, StarTopology, ConnectionSet, list[TcpSource]]:
    sim = Simulator()
    star = build_star(
        sim,
        n_trains,
        bandwidth_bps=params.bandwidth_bps,
        delay_s=params.delay_s,
        buffer_pkts=params.buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(params.protocol, params.bandwidth_bps),
    )
    config = default_config(
        params.protocol, min_rto=params.min_rto, initial_rto=max(params.min_rto, 1e-3)
    )
    connections = ConnectionSet(
        sim,
        params.protocol,
        config=config,
        capacity_pps=packets_per_second(params.bandwidth_bps),
        base_rtt=path_base_rtt(
            [(params.delay_s, params.bandwidth_bps)] * 2
        ),
    )
    sources = connections.connect_many(
        star.servers, star.frontend, config=warm_config(config)
    )
    for source in sources:
        LongTrainSender(sim, source, params.start_time).start()
    return sim, star, connections, sources


def run_queue_trace(params: PropertiesParams, n_trains: int = 5) -> TimeSeries:
    """Fig. 9(a): the bottleneck queue trace with ``n_trains`` LPTs."""
    sim, star, _connections, sources = _build(params, n_trains)
    monitor = QueueMonitor(sim, star.bottleneck, period=params.queue_period).start(0.0)
    for source in sources:
        sim.schedule_at(params.end_time, source.stop)
    sim.run(until=params.end_time)
    return monitor.series


def run_properties_case(params: PropertiesParams, n_trains: int) -> PropertiesCase:
    """One point of the Fig. 9(b)–(d) sweep."""
    if n_trains < 1:
        raise ValueError("need at least one train")
    sim, star, connections, sources = _build(params, n_trains)
    monitor = QueueMonitor(sim, star.bottleneck, period=params.queue_period)
    monitor.start(params.measure_from)
    frontend_sinks = connections.sinks

    delivered_at_start = {}

    def snapshot() -> None:
        for sink in frontend_sinks:
            delivered_at_start[sink.flow_id] = sink.delivered_segments

    sim.schedule_at(params.measure_from, snapshot)
    sim.run(until=params.end_time)

    window = params.end_time - params.measure_from
    delivered_segments = sum(
        sink.delivered_segments - delivered_at_start.get(sink.flow_id, 0)
        for sink in frontend_sinks
    )
    goodput = delivered_segments * connections.sources[0].config.mss_bytes * 8.0 / window
    return PropertiesCase(
        n_trains=n_trains,
        average_queue_pkts=monitor.average_pkts,
        peak_queue_pkts=monitor.peak_pkts,
        dropped_packets=star.network.total_dropped(),
        goodput_bps=goodput,
        utilization=goodput / params.bandwidth_bps,
        timeouts=connections.total_timeouts,
    )


def run_properties_sweep(
    params: PropertiesParams, counts: Sequence[int] = (2, 4, 6, 8, 10)
) -> list[PropertiesCase]:
    """Fig. 9(b)–(d): sweep the number of concurrent long trains."""
    return [run_properties_case(params, n) for n in counts]


@register
class PropertiesExperiment(Experiment):
    """Fig. 9: the queue trace plus one point per train count."""

    id = "fig9"
    title = "Fig. 9 TCP-TRIM properties (queue, drops, goodput)"
    params_cls = PropertiesParams

    def points(self, params: PropertiesParams) -> list[Point]:
        return [Point("trace")] + [
            Point(f"n{n}", {"n_trains": n}) for n in params.sweep_counts
        ]

    def run_point(self, params: PropertiesParams, point: Point, seed: int) -> Any:
        if point.label == "trace":
            return run_queue_trace(params, n_trains=params.trace_trains)
        return run_properties_case(params, point.kwargs["n_trains"])

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        return {
            "queue_trace": results[0],
            "sweep": [r for r in results[1:] if r is not None],
        }

    def report(self, params: Any, payload: Any) -> None:
        trace = payload["queue_trace"]
        print(f"[{params.protocol}] Fig.9a queue with "
              f"{params.trace_trains} LPTs: "
              f"mean={trace.mean():6.1f}pkt  peak={trace.max():5.0f}pkt")
        print(f"[{params.protocol}] Fig.9b-d sweep:")
        for case in payload["sweep"]:
            print(f"  n={case.n_trains:2d}  AQL={case.average_queue_pkts:6.1f}pkt  "
                  f"drops={case.dropped_packets:6d}  "
                  f"goodput={case.goodput_bps / 1e6:7.1f}Mbps "
                  f"({case.utilization:.1%})")
