"""Concurrency impairment — Figures 5 and 7.

Zero, one, or two long trains run from 0.1 s; a growing number of other
servers each burst a 10-packet SPT at 0.3 s.  With drop-tail buffers the
LPT(s) keep the queue near full, so the synchronized SPT burst loses
packets and serializes behind 200 ms RTOs (Fig. 5).  TCP-TRIM's delay
control leaves most of the buffer free and ACTs stay at a few
milliseconds (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.scenarios import (
    ConnectionSet,
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    run_until,
    warm_config,
)
from repro.http.apps import LongTrainSender, burst_at
from repro.metrics.stats import completion_times, summarize
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.factory import default_config

__all__ = [
    "ConcurrencyCase",
    "ConcurrencyExperiment",
    "ConcurrencyParams",
    "run_concurrency",
    "run_concurrency_sweep",
]


@dataclass
class ConcurrencyParams:
    """Parameters of the Section II.B.2 scenario (paper defaults)."""

    protocol: str = "reno"
    n_lpts: int = 2
    spt_counts: Sequence[int] = (2, 4, 6, 8, 10, 12)
    spt_segments: int = 10
    lpt_start: float = 0.1
    spt_time: float = 0.3
    bandwidth_bps: float = 1e9
    delay_s: float = 50e-6
    buffer_pkts: int = 100
    min_rto: float = 0.2
    deadline: float = 3.0

    @classmethod
    def paper(cls, protocol: str = "reno", **overrides: Any) -> "ConcurrencyParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "reno", **overrides: Any) -> "ConcurrencyParams":
        defaults = dict(spt_counts=(2, 6, 10), deadline=2.0)
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)


@dataclass
class ConcurrencyCase:
    """One sweep point: statistics of the SPT completion times."""

    n_spts: int
    n_lpts: int
    act: float
    min_ct: float
    max_ct: float
    completed: int
    spt_timeouts: int
    dropped_packets: int


def run_concurrency(
    params: ConcurrencyParams, n_spts: int
) -> ConcurrencyCase:
    """One simulation: ``n_spts`` SPT servers plus the configured LPTs."""
    if n_spts < 1:
        raise ValueError("need at least one SPT server")
    sim = Simulator()
    star = build_star(
        sim,
        params.n_lpts + n_spts,
        bandwidth_bps=params.bandwidth_bps,
        delay_s=params.delay_s,
        buffer_pkts=params.buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(params.protocol, params.bandwidth_bps),
    )
    config = default_config(
        params.protocol, min_rto=params.min_rto, initial_rto=params.min_rto
    )
    connections = ConnectionSet(
        sim,
        params.protocol,
        config=config,
        capacity_pps=packets_per_second(params.bandwidth_bps),
        base_rtt=path_base_rtt(
            [(params.delay_s, params.bandwidth_bps)] * 2
        ),
    )
    lpt_hosts = star.servers[: params.n_lpts]
    spt_hosts = star.servers[params.n_lpts :]
    lpt_sources = connections.connect_many(
        lpt_hosts, star.frontend, config=warm_config(config)
    )
    spt_sources = connections.connect_many(spt_hosts, star.frontend)

    for source in lpt_sources:
        LongTrainSender(sim, source, params.lpt_start).start()
    spt_messages = burst_at(sim, spt_sources, params.spt_time, params.spt_segments)

    run_until(
        sim,
        lambda: len(spt_messages) == n_spts
        and all(m.finish_time is not None for m in spt_messages),
        params.deadline,
    )

    times = completion_times(spt_messages)
    if not times:
        raise RuntimeError(
            f"no SPT completed before the {params.deadline}s deadline; "
            "raise ConcurrencyParams.deadline"
        )
    stats = summarize(times)
    return ConcurrencyCase(
        n_spts=n_spts,
        n_lpts=params.n_lpts,
        act=stats.mean,
        min_ct=stats.minimum,
        max_ct=stats.maximum,
        completed=stats.count,
        spt_timeouts=sum(s.stats.timeouts for s in spt_sources),
        dropped_packets=star.network.total_dropped(),
    )


def run_concurrency_sweep(params: ConcurrencyParams) -> list[ConcurrencyCase]:
    """Fig. 5 / Fig. 7: sweep the number of concurrent SPT servers."""
    return [run_concurrency(params, n) for n in params.spt_counts]


@register
class ConcurrencyExperiment(Experiment):
    """Figs. 5 and 7: one independent simulation per SPT count."""

    id = "fig5"
    aliases = ("fig7",)
    title = "Fig. 5/7 ACT vs number of concurrent SPT servers"
    params_cls = ConcurrencyParams

    def points(self, params: ConcurrencyParams) -> list[Point]:
        return [Point(f"spt{n}", {"n_spts": n}) for n in params.spt_counts]

    def run_point(self, params: ConcurrencyParams, point: Point, seed: int) -> Any:
        return run_concurrency(params, point.kwargs["n_spts"])

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        """One ConcurrencyCase per SPT count, in sweep order."""
        return [r for r in results if r is not None]

    def report(self, params: Any, payload: Any) -> None:
        MS = 1e3
        print(f"[{params.protocol}] ACT of SPTs with {params.n_lpts} LPTs:")
        for case in payload:
            print(f"  n_spt={case.n_spts:3d}  ACT={case.act * MS:9.2f}ms  "
                  f"min={case.min_ct * MS:8.2f}ms  max={case.max_ct * MS:9.2f}ms  "
                  f"spt_timeouts={case.spt_timeouts}")
