"""Workload characterization — Figures 1 and 2.

Fig. 1 plots the packet-sequence staircase of one web server's trains;
Fig. 2 gives the CDFs of train size and inter-train gap.  Here we (a)
generate a synthetic ON/OFF trace from the Fig. 2 samplers, (b) expand
it to per-packet times the way the paper's trace analysis saw them, and
(c) re-extract the trains with the Sec. II.A gap rule — verifying the
round trip workload → packets → trains reproduces the published
statistics (the anchors of Fig. 2).
"""

from __future__ import annotations

from typing import Any, Sequence

from dataclasses import dataclass

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.http.packet_train import PacketTrain, extract_trains, train_intervals
from repro.http.workload import generate_onoff_schedule
from repro.net.packet import MSS_BYTES
from repro.sim.randomness import seeded_rng

__all__ = [
    "WorkloadExperiment",
    "WorkloadFigures",
    "WorkloadParams",
    "characterize_workload",
]


@dataclass
class WorkloadFigures:
    """Everything Figs. 1 and 2 report about one connection's traffic."""

    packet_times: list[float]
    packet_sizes: list[int]
    trains: list[PacketTrain]
    gaps: list[float]

    @property
    def train_sizes(self) -> list[int]:
        return [t.total_bytes for t in self.trains]

    @property
    def n_long_trains(self) -> int:
        return sum(1 for t in self.trains if t.is_long)

    def size_fraction_below(self, size_bytes: float) -> float:
        sizes = self.train_sizes
        return sum(1 for s in sizes if s <= size_bytes) / len(sizes)


def characterize_workload(
    seed: int = 1,
    duration: float = 10.0,
    line_rate_bps: float = 1e9,
    gap_rule: float = 150e-6,
) -> WorkloadFigures:
    """Generate, packetize, and re-extract one server's packet trains.

    ``gap_rule`` is the inter-train gap used for re-extraction; it must
    sit between the per-packet serialization time and the smallest OFF
    gap of the generator (the paper uses the smoothed RTT).
    """
    rng = seeded_rng(seed)
    events = generate_onoff_schedule(
        rng, duration=duration, drain_rate_bps=line_rate_bps
    )
    if not events:
        raise RuntimeError("duration too short: no trains generated")
    packet_gap = MSS_BYTES * 8.0 / line_rate_bps
    times: list[float] = []
    sizes: list[int] = []
    for event in events:
        n_packets = max(1, -(-event.size_bytes // MSS_BYTES))
        remaining = event.size_bytes
        for i in range(n_packets):
            times.append(event.time + i * packet_gap)
            sizes.append(min(MSS_BYTES, remaining))
            remaining -= MSS_BYTES
    trains = extract_trains(times, sizes, gap=gap_rule)
    return WorkloadFigures(
        packet_times=times,
        packet_sizes=sizes,
        trains=trains,
        gaps=train_intervals(trains),
    )


@dataclass
class WorkloadParams:
    """Fig. 1/2 characterization parameters (no protocol involved)."""

    seed: int = 1
    duration: float = 10.0
    line_rate_bps: float = 1e9
    gap_rule: float = 150e-6

    @classmethod
    def paper(cls, **overrides: Any) -> "WorkloadParams":
        return cls(**overrides)

    @classmethod
    def quick(cls, **overrides: Any) -> "WorkloadParams":
        return cls(**overrides)


@register
class WorkloadExperiment(Experiment):
    """Figs. 1 and 2: the workload → packets → trains round trip."""

    id = "fig1"
    aliases = ("fig2",)
    title = "Fig. 1/2 workload characterization"
    params_cls = WorkloadParams
    uses_protocols = False

    def points(self, params: WorkloadParams) -> list[Point]:
        return [Point("workload")]

    def run_point(self, params: WorkloadParams, point: Point, seed: int) -> Any:
        wl = characterize_workload(
            seed=seed,
            duration=params.duration,
            line_rate_bps=params.line_rate_bps,
            gap_rule=params.gap_rule,
        )
        return {
            "n_trains": len(wl.trains),
            "n_packets": len(wl.packet_times),
            "n_long_trains": wl.n_long_trains,
            "frac_le_4k": wl.size_fraction_below(4096),
            "frac_le_128k": wl.size_fraction_below(131072),
            "gap_min": min(wl.gaps) if wl.gaps else None,
            "gap_max": max(wl.gaps) if wl.gaps else None,
        }

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        return results[0]

    def report(self, params: Any, payload: Any) -> None:
        if payload is None:
            print("Fig.1/2 workload: point failed")
            return
        MS = 1e3
        print(f"Fig.1/2 workload: {payload['n_trains']} trains, "
              f"{payload['n_packets']} packets")
        print(f"  LPTs (>=128KB): {payload['n_long_trains']} "
              f"({payload['n_long_trains'] / payload['n_trains']:.1%}, paper: ~10%)")
        print(f"  trains <= 4KB: {payload['frac_le_4k']:.1%} (paper: <20%)")
        print(f"  trains <= 128KB: {payload['frac_le_128k']:.1%} (paper: ~90%)")
        if payload["gap_min"] is not None:
            print(f"  inter-train gaps: {payload['gap_min'] * 1e6:.0f}us .. "
                  f"{payload['gap_max'] * MS:.2f}ms "
                  f"(paper: hundreds of us to several ms)")
