"""Workload characterization — Figures 1 and 2.

Fig. 1 plots the packet-sequence staircase of one web server's trains;
Fig. 2 gives the CDFs of train size and inter-train gap.  Here we (a)
generate a synthetic ON/OFF trace from the Fig. 2 samplers, (b) expand
it to per-packet times the way the paper's trace analysis saw them, and
(c) re-extract the trains with the Sec. II.A gap rule — verifying the
round trip workload → packets → trains reproduces the published
statistics (the anchors of Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.http.packet_train import PacketTrain, extract_trains, train_intervals
from repro.http.workload import generate_onoff_schedule
from repro.net.packet import MSS_BYTES

__all__ = ["WorkloadFigures", "characterize_workload"]


@dataclass
class WorkloadFigures:
    """Everything Figs. 1 and 2 report about one connection's traffic."""

    packet_times: list[float]
    packet_sizes: list[int]
    trains: list[PacketTrain]
    gaps: list[float]

    @property
    def train_sizes(self) -> list[int]:
        return [t.total_bytes for t in self.trains]

    @property
    def n_long_trains(self) -> int:
        return sum(1 for t in self.trains if t.is_long)

    def size_fraction_below(self, size_bytes: float) -> float:
        sizes = self.train_sizes
        return sum(1 for s in sizes if s <= size_bytes) / len(sizes)


def characterize_workload(
    seed: int = 1,
    duration: float = 10.0,
    line_rate_bps: float = 1e9,
    gap_rule: float = 150e-6,
) -> WorkloadFigures:
    """Generate, packetize, and re-extract one server's packet trains.

    ``gap_rule`` is the inter-train gap used for re-extraction; it must
    sit between the per-packet serialization time and the smallest OFF
    gap of the generator (the paper uses the smoothed RTT).
    """
    rng = np.random.default_rng(seed)
    events = generate_onoff_schedule(
        rng, duration=duration, drain_rate_bps=line_rate_bps
    )
    if not events:
        raise RuntimeError("duration too short: no trains generated")
    packet_gap = MSS_BYTES * 8.0 / line_rate_bps
    times: list[float] = []
    sizes: list[int] = []
    for event in events:
        n_packets = max(1, -(-event.size_bytes // MSS_BYTES))
        remaining = event.size_bytes
        for i in range(n_packets):
            times.append(event.time + i * packet_gap)
            sizes.append(min(MSS_BYTES, remaining))
            remaining -= MSS_BYTES
    trains = extract_trains(times, sizes, gap=gap_rule)
    return WorkloadFigures(
        packet_times=times,
        packet_sizes=sizes,
        trains=trains,
        gaps=train_intervals(trains),
    )
