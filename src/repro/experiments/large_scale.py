"""Large-scale HTTP concurrency — Figure 8.

The Fig. 8(a) topology: edge switches with 42 servers each behind one
fabric switch and a single front-end.  Per switch, two servers run long
trains for the whole test; every other server sends one SPT whose size
follows the Fig. 2(a) distribution, at a start time drawn uniformly or
exponentially within a 0.5 s window.  RTO is 20 ms.  The paper sweeps
5–25 switches (210–1050 servers) and reports the ACT of SPTs: TCP-TRIM
cuts TCP's ACT by up to 80%, still ≥50% beyond 840 servers.

Full paper scale is expensive in pure Python, so the ``quick`` preset
shrinks the fan-in while keeping the 2-LPTs-per-switch structure and the
SPT size distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Sequence

import numpy as np

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.scenarios import (
    ConnectionSet,
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    run_until,
    warm_config,
)
from repro.http.apps import LongTrainSender
from repro.http.workload import pt_size_sampler, segments_for_bytes
from repro.metrics.stats import completion_times, summarize
from repro.net.topology import build_two_level_tree
from repro.sim.kernel import Simulator
from repro.sim.randomness import seeded_rng
from repro.tcp.factory import default_config

__all__ = [
    "LargeScaleCase",
    "LargeScaleExperiment",
    "LargeScaleParams",
    "run_large_scale",
    "run_large_scale_sweep",
]


@dataclass
class LargeScaleParams:
    """Fig. 8 parameters."""

    protocol: str = "reno"
    switch_counts: Sequence[int] = (5, 10, 15, 20, 25)
    servers_per_switch: int = 42
    lpts_per_switch: int = 2
    distribution: str = "uniform"  # or "exponential"
    spt_window: float = 0.5
    spt_window_start: float = 0.1
    edge_bps: float = 1e9
    edge_delay_s: float = 20e-6
    frontend_bps: float = 10e9
    frontend_delay_s: float = 10e-6
    buffer_pkts: int = 100
    min_rto: float = 0.02  # the paper sets a 20 ms RTO here
    repeats: int = 3
    deadline: float = 4.0
    seed: int = 1

    @classmethod
    def paper(cls, protocol: str = "reno", **overrides: Any) -> "LargeScaleParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "reno", **overrides: Any) -> "LargeScaleParams":
        """Shrunk fan-in: 12 servers/switch at 10× slower links."""
        defaults = dict(
            switch_counts=(2, 4, 6),
            servers_per_switch=12,
            edge_bps=1e8,
            frontend_bps=1e9,
            spt_window=0.3,
            repeats=2,
            deadline=3.0,
        )
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)


@dataclass
class LargeScaleCase:
    """One sweep point, averaged over repeats."""

    n_switches: int
    n_servers: int
    act: float
    max_ct: float
    completed: int
    expected: int
    timeouts: int


def run_large_scale(
    params: LargeScaleParams, n_switches: int, repeat_index: int = 0
) -> tuple[list[float], int, int]:
    """One run: returns (SPT completion times, SPT count, timeouts)."""
    sim = Simulator()
    rng = seeded_rng(params.seed, n_switches, repeat_index)
    topo = build_two_level_tree(
        sim,
        n_switches,
        servers_per_switch=params.servers_per_switch,
        edge_bandwidth_bps=params.edge_bps,
        edge_delay_s=params.edge_delay_s,
        frontend_bandwidth_bps=params.frontend_bps,
        frontend_delay_s=params.frontend_delay_s,
        buffer_pkts=params.buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(params.protocol, params.edge_bps),
    )
    config = default_config(
        params.protocol, min_rto=params.min_rto, initial_rto=params.min_rto
    )
    connections = ConnectionSet(
        sim,
        params.protocol,
        config=config,
        capacity_pps=packets_per_second(params.edge_bps),
        base_rtt=path_base_rtt(
            [
                (params.edge_delay_s, params.edge_bps),
                (params.edge_delay_s, params.edge_bps),
                (params.frontend_delay_s, params.frontend_bps),
            ]
        ),
    )
    sizes = pt_size_sampler()
    spt_messages = []
    n_spts = 0
    for group in topo.server_groups:
        lpt_hosts = group[: params.lpts_per_switch]
        spt_hosts = group[params.lpts_per_switch :]
        for host in lpt_hosts:
            src, _sink = connections.connect(
                host, topo.frontend, config=warm_config(config)
            )
            LongTrainSender(sim, src, params.spt_window_start).start()
        for host in spt_hosts:
            src, _sink = connections.connect(host, topo.frontend)
            start = params.spt_window_start + _draw_offset(
                rng, params.distribution, params.spt_window
            )
            segments = segments_for_bytes(int(sizes.sample(rng, 1)[0]))
            sim.schedule_at(
                start,
                lambda s=src, n=segments: spt_messages.append(s.send_message(n)),
            )
            n_spts += 1

    run_until(
        sim,
        lambda: len(spt_messages) == n_spts
        and all(m.finish_time is not None for m in spt_messages),
        params.deadline,
    )
    return completion_times(spt_messages), n_spts, connections.total_timeouts


def run_large_scale_sweep(params: LargeScaleParams) -> list[LargeScaleCase]:
    """Fig. 8(b): ACT of SPTs versus the total number of servers."""
    cases = []
    for n_switches in params.switch_counts:
        all_times: list[float] = []
        expected = 0
        timeouts = 0
        for r in range(params.repeats):
            times, n_spts, t = run_large_scale(params, n_switches, r)
            all_times.extend(times)
            expected += n_spts
            timeouts += t
        stats = summarize(all_times)
        cases.append(
            LargeScaleCase(
                n_switches=n_switches,
                n_servers=n_switches * params.servers_per_switch,
                act=stats.mean,
                max_ct=stats.maximum,
                completed=stats.count,
                expected=expected,
                timeouts=timeouts,
            )
        )
    return cases


def _draw_offset(rng: np.random.Generator, distribution: str, window: float) -> float:
    """An SPT start offset within [0, window] per the configured law."""
    if distribution == "uniform":
        return float(rng.uniform(0.0, window))
    if distribution == "exponential":
        # Mean window/3 gives most arrivals early, truncated to the window.
        return min(float(rng.exponential(window / 3.0)), window)
    raise ValueError(f"unknown distribution {distribution!r}")


@register
class LargeScaleExperiment(Experiment):
    """Fig. 8: one point per (switch count, repeat) pair.

    The repeats of one sweep point are independent simulations, so they
    fan out as separate points; :meth:`reduce` regroups them into one
    :class:`LargeScaleCase` per switch count, exactly as the sequential
    :func:`run_large_scale_sweep` does.
    """

    id = "fig8"
    title = "Fig. 8 large-scale ACT of SPTs"
    params_cls = LargeScaleParams

    def points(self, params: LargeScaleParams) -> list[Point]:
        return [
            Point(f"sw{n}-r{r}", {"n_switches": n, "repeat": r})
            for n in params.switch_counts
            for r in range(params.repeats)
        ]

    def run_point(self, params: LargeScaleParams, point: Point, seed: int) -> Any:
        times, n_spts, timeouts = run_large_scale(
            replace(params, seed=seed),
            point.kwargs["n_switches"],
            point.kwargs["repeat"],
        )
        return {"times": times, "n_spts": n_spts, "timeouts": timeouts}

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        cases = []
        for n_switches in params.switch_counts:
            all_times: list[float] = []
            expected = 0
            timeouts = 0
            for point, result in zip(points, results):
                if result is None or point.kwargs["n_switches"] != n_switches:
                    continue
                all_times.extend(result["times"])
                expected += result["n_spts"]
                timeouts += result["timeouts"]
            if not expected:
                continue
            stats = summarize(all_times)
            cases.append(
                LargeScaleCase(
                    n_switches=n_switches,
                    n_servers=n_switches * params.servers_per_switch,
                    act=stats.mean,
                    max_ct=stats.maximum,
                    completed=stats.count,
                    expected=expected,
                    timeouts=timeouts,
                )
            )
        return cases

    def report(self, params: Any, payload: Any) -> None:
        MS = 1e3
        print(f"[{params.protocol}] large-scale ACT of SPTs "
              f"({params.distribution}):")
        for case in payload:
            print(f"  servers={case.n_servers:5d}  ACT={case.act * MS:9.2f}ms  "
                  f"max={case.max_ct * MS:9.2f}ms  "
                  f"completed={case.completed}/{case.expected}  "
                  f"timeouts={case.timeouts}")
