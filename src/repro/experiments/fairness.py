"""Convergence and fairness — Figure 10.

Five long trains towards one receiver start one by one and later stop
one by one; server links run at 1.1 Gbps so the 1 Gbps receiver link is
the single bottleneck.  The paper's observation: TCP-TRIM's per-flow
throughputs converge quickly to the fair share at every arrival and
departure, while TCP converges noisily.

The paper runs 22 simulated seconds at 1 Gbps; the ``quick`` preset
scales time by 10× and bandwidth by 10× down, preserving the number of
arrival/departure epochs (what the figure is actually about).
"""

from __future__ import annotations

from typing import Any, Sequence

from dataclasses import dataclass

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.scenarios import (
    ConnectionSet,
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    warm_config,
)
from repro.http.apps import LongTrainSender
from repro.metrics.monitors import SinkThroughputMonitor
from repro.metrics.stats import jain_fairness
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.sim.monitor import TimeSeries
from repro.tcp.factory import default_config

__all__ = [
    "FairnessExperiment",
    "FairnessParams",
    "FairnessResult",
    "run_fairness",
]


@dataclass
class FairnessParams:
    """Fig. 10 parameters (paper defaults)."""

    protocol: str = "reno"
    n_flows: int = 5
    bottleneck_bps: float = 1e9
    server_bps: float = 1.1e9
    delay_s: float = 50e-6
    buffer_pkts: int = 100
    first_start: float = 0.1
    stagger: float = 2.0  # next flow starts/stops this much later
    stop_start: float = 12.1
    sample_period: float = 50e-3
    min_rto: float = 10e-3

    @property
    def end_time(self) -> float:
        return self.stop_start + self.stagger * (self.n_flows - 1) + self.stagger / 2

    @classmethod
    def paper(cls, protocol: str = "reno", **overrides: Any) -> "FairnessParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "reno", **overrides: Any) -> "FairnessParams":
        """10× shorter epochs at 10× lower speed: same epoch structure."""
        defaults = dict(
            bottleneck_bps=1e8,
            server_bps=1.1e8,
            stagger=0.2,
            stop_start=1.21,
            first_start=0.01,
            sample_period=10e-3,
        )
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)


@dataclass
class FairnessResult:
    """Per-flow throughput curves plus per-epoch fairness indices."""

    protocol: str
    flow_series: list[TimeSeries]
    #: Jain's index over the all-flows-active plateau
    plateau_fairness: float
    #: mean per-flow throughput (bps) over the plateau, flow order
    plateau_shares: list[float]
    timeouts: int


def run_fairness(params: FairnessParams) -> FairnessResult:
    """Run Fig. 10's staggered arrival/departure schedule."""
    sim = Simulator()
    star = build_star(
        sim,
        params.n_flows,
        bandwidth_bps=params.server_bps,
        delay_s=params.delay_s,
        buffer_pkts=params.buffer_pkts,
        frontend_bandwidth_bps=params.bottleneck_bps,
        ecn_threshold_pkts=ecn_threshold_for(params.protocol, params.bottleneck_bps),
    )
    config = default_config(
        params.protocol, min_rto=params.min_rto, initial_rto=max(params.min_rto, 1e-3)
    )
    connections = ConnectionSet(
        sim,
        params.protocol,
        config=config,
        capacity_pps=packets_per_second(params.bottleneck_bps),
        base_rtt=path_base_rtt(
            [(params.delay_s, params.server_bps), (params.delay_s, params.bottleneck_bps)]
        ),
    )
    sources = connections.connect_many(
        star.servers, star.frontend, config=warm_config(config)
    )
    monitors = [
        SinkThroughputMonitor(sim, sink, period=params.sample_period).start(0.0)
        for sink in connections.sinks
    ]
    for i, source in enumerate(sources):
        sender = LongTrainSender(sim, source, params.first_start + i * params.stagger)
        sender.start()
        sender.stop_at(params.stop_start + i * params.stagger)

    sim.run(until=params.end_time)

    # The plateau where all flows are active: from the last arrival to
    # the first departure, trimmed by one stagger/4 on each side.
    plateau_start = params.first_start + (params.n_flows - 1) * params.stagger
    plateau_end = params.stop_start
    margin = params.stagger / 4.0
    shares = [
        m.mean_bps(plateau_start + margin, plateau_end - margin) for m in monitors
    ]
    return FairnessResult(
        protocol=params.protocol,
        flow_series=[m.series for m in monitors],
        plateau_fairness=jain_fairness(shares),
        plateau_shares=shares,
        timeouts=connections.total_timeouts,
    )


@register
class FairnessExperiment(Experiment):
    """Fig. 10: a single staggered arrival/departure run."""

    id = "fig10"
    title = "Fig. 10 convergence and fairness"
    params_cls = FairnessParams

    def points(self, params: FairnessParams) -> list[Point]:
        return [Point("run")]

    def run_point(self, params: FairnessParams, point: Point, seed: int) -> Any:
        return run_fairness(params)

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        return results[0]

    def report(self, params: Any, payload: Any) -> None:
        r = payload
        shares = [f"{s / 1e6:.0f}" for s in r.plateau_shares]
        print(f"[{params.protocol}] Fig.10 plateau shares (Mbps): {shares}  "
              f"Jain={r.plateau_fairness:.4f}  timeouts={r.timeouts}")
