"""The motivation / impairment scenario — Figures 4 and 6.

Five servers behind one switch send 200 small HTTP responses each
(2–10 KB, ~1 ms apart, from 0.1 s) over persistent connections, then a
long packet train each at 0.5 s.  With TCP Reno the inherited windows
(near 900 segments) dump into a path that only holds ~118 packets,
producing the timeouts and throughput collapse of Fig. 4; with TCP-TRIM
the probe re-inherits a sane window and the delay control keeps the
queue under ~20 packets (Fig. 6).

Run the same function with ``protocol="reno"`` for Fig. 4 and
``protocol="trim"`` for Fig. 6.
"""

from __future__ import annotations

from typing import Any, Sequence

from dataclasses import dataclass, field, replace

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.scenarios import (
    ConnectionSet,
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    run_until,
)
from repro.http.apps import ScheduledResponder
from repro.http.workload import response_schedule
from repro.metrics.monitors import CwndTracer, QueueMonitor, ThroughputMonitor
from repro.metrics.stats import act, completion_times
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.sim.monitor import TimeSeries
from repro.sim.randomness import RandomStreams
from repro.tcp.factory import default_config

__all__ = [
    "MotivationExperiment",
    "MotivationParams",
    "MotivationResult",
    "run_motivation",
]


@dataclass
class MotivationParams:
    """Parameters of the Section II.B.1 scenario (paper defaults)."""

    protocol: str = "reno"
    n_servers: int = 5
    bandwidth_bps: float = 1e9
    delay_s: float = 50e-6
    buffer_pkts: int = 100
    n_responses: int = 200
    response_start: float = 0.1
    response_interval: float = 1e-3
    response_size_bytes: tuple[int, int] = (2_000, 10_000)
    lpt_bytes: int = 2_000_000  # "more than 128 KB"; sized so five LPTs
    # finish within ~0.1 s at line rate, matching Fig. 6's timeline
    lpt_start: float = 0.5
    min_rto: float = 0.2
    deadline: float = 2.5
    seed: int = 1
    trace_period: float = 1e-3

    @classmethod
    def paper(cls, protocol: str = "reno", **overrides: Any) -> "MotivationParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "reno", **overrides: Any) -> "MotivationParams":
        """Same scenario, lighter: fewer responses and a smaller LPT."""
        defaults = dict(
            n_responses=100, lpt_bytes=500_000, deadline=2.0
        )
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)


@dataclass
class MotivationResult:
    """Everything Figs. 4 and 6 plot, plus drop/timeout tallies."""

    protocol: str
    throughput_bps: TimeSeries  # bottleneck link, binned
    queue_pkts: TimeSeries  # bottleneck egress queue
    cwnd_traces: list[TimeSeries]  # one per connection
    timeouts_per_connection: list[int] = field(default_factory=list)
    dropped_packets: int = 0
    response_act: float = 0.0
    lpt_completion_times: list[float] = field(default_factory=list)
    all_done_time: float = 0.0  # when every LPT finished
    peak_queue_pkts: float = 0.0
    inherited_cwnd: list[float] = field(default_factory=list)  # at LPT start

    @property
    def total_timeouts(self) -> int:
        return sum(self.timeouts_per_connection)


def run_motivation(params: MotivationParams) -> MotivationResult:
    """Run the scenario and gather the Fig. 4 / Fig. 6 observables."""
    sim = Simulator()
    streams = RandomStreams(params.seed)
    star = build_star(
        sim,
        params.n_servers,
        bandwidth_bps=params.bandwidth_bps,
        delay_s=params.delay_s,
        buffer_pkts=params.buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(params.protocol, params.bandwidth_bps),
    )
    config = default_config(
        params.protocol, min_rto=params.min_rto, initial_rto=params.min_rto
    )
    connections = ConnectionSet(
        sim,
        params.protocol,
        config=config,
        capacity_pps=packets_per_second(params.bandwidth_bps),
        base_rtt=path_base_rtt(
            [(params.delay_s, params.bandwidth_bps)] * 2
        ),
    )
    sources = connections.connect_many(star.servers, star.frontend)

    responders = []
    lpt_messages = []
    lpt_segments = max(1, params.lpt_bytes // config.mss_bytes)
    for i, source in enumerate(sources):
        schedule = response_schedule(
            streams.get(f"responses-{i}"),
            params.n_responses,
            params.response_start,
            params.response_interval,
            params.response_size_bytes,
        )
        responders.append(ScheduledResponder(sim, source, schedule).start())
        sim.schedule_at(
            params.lpt_start,
            lambda s=source: lpt_messages.append(s.send_message(lpt_segments)),
        )

    throughput = ThroughputMonitor(sim, star.bottleneck, period=5e-3).start(0.0)
    queue = QueueMonitor(sim, star.bottleneck, period=params.trace_period).start(0.0)
    tracers = [
        CwndTracer(sim, s, period=params.trace_period).start(0.0) for s in sources
    ]

    inherited: list[float] = []
    sim.schedule_at(
        params.lpt_start - 1e-9, lambda: inherited.extend(s.cwnd for s in sources)
    )

    run_until(
        sim,
        lambda: len(lpt_messages) == len(sources)
        and all(m.finish_time is not None for m in lpt_messages),
        params.deadline,
    )

    response_ct = [
        t for r in responders for t in (completion_times(r.messages))
    ]
    result = MotivationResult(
        protocol=params.protocol,
        throughput_bps=throughput.series,
        queue_pkts=queue.series,
        cwnd_traces=[t.series for t in tracers],
        timeouts_per_connection=connections.timeouts_per_source,
        dropped_packets=star.network.total_dropped(),
        response_act=act(response_ct) if response_ct else 0.0,
        lpt_completion_times=completion_times(lpt_messages),
        all_done_time=max(
            (m.finish_time for m in lpt_messages if m.finish_time is not None),
            default=float("nan"),
        ),
        peak_queue_pkts=queue.series.max() if len(queue.series) else 0.0,
        inherited_cwnd=inherited,
    )
    return result


@register
class MotivationExperiment(Experiment):
    """Figs. 4 and 6: one scenario run per protocol."""

    id = "fig4"
    aliases = ("fig6",)
    title = "Fig. 4/6 motivation & impairment scenario"
    params_cls = MotivationParams

    def points(self, params: MotivationParams) -> list[Point]:
        return [Point("run")]

    def run_point(self, params: MotivationParams, point: Point, seed: int) -> Any:
        return run_motivation(replace(params, seed=seed))

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        return results[0]

    def report(self, params: Any, payload: Any) -> None:
        if payload is None:
            print(f"[{params.protocol}] point failed")
            return
        MS = 1e3
        r = payload
        label = "Fig.4" if params.protocol == "reno" else "Fig.6"
        print(f"{label} [{params.protocol}] "
              f"timeouts/conn={r.timeouts_per_connection} "
              f"drops={r.dropped_packets} peak_queue={r.peak_queue_pkts:.0f}pkt")
        print(f"  inherited cwnd at LPT start: "
              f"{[round(c) for c in r.inherited_cwnd]}")
        print(f"  LPT completion (ms): "
              f"{[round(t * MS, 1) for t in r.lpt_completion_times]}; "
              f"all done at t={r.all_done_time:.3f}s")
