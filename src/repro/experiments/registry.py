"""Experiment registry: figure ids to :class:`Experiment` instances.

Experiment modules register themselves at import time::

    @register
    class ConcurrencyExperiment(Experiment):
        id = "fig5"
        aliases = ("fig7",)
        ...

and consumers resolve them by id::

    from repro.experiments import registry
    experiment = registry.get("fig8")

Registration is what makes sweep points *dispatchable*: a worker
process receives only ``(experiment_id, params, point, seed)`` and
re-resolves the experiment on its side of the fork, so nothing
unpicklable crosses the process boundary.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.base import Experiment

__all__ = ["canonical_ids", "get", "ids", "register"]

#: modules that define and register experiments, imported lazily so the
#: registry stays usable from a half-initialized worker process.
_EXPERIMENT_MODULES = (
    "repro.experiments.workload_figs",
    "repro.experiments.motivation",
    "repro.experiments.concurrency",
    "repro.experiments.large_scale",
    "repro.experiments.properties",
    "repro.experiments.fairness",
    "repro.experiments.multihop",
    "repro.experiments.fattree",
    "repro.experiments.testbed",
    "repro.experiments.ablation",
    "repro.experiments.incast",
    "repro.experiments.faults",
    "repro.experiments.openloop",
    "repro.experiments.matrix",
)

_REGISTRY: dict[str, "Experiment"] = {}
_ALIASES: dict[str, str] = {}
_loaded = False


def register(experiment: Union["Experiment", type]) -> Union["Experiment", type]:
    """Register an experiment (usable as a class decorator).

    Returns its argument so ``@register`` above a class definition
    leaves the name bound to the class.
    """
    instance = experiment() if isinstance(experiment, type) else experiment
    if not instance.id:
        raise ValueError(f"experiment {instance!r} has no id")
    if instance.id in _REGISTRY and type(_REGISTRY[instance.id]) is not type(instance):
        raise ValueError(f"experiment id {instance.id!r} already registered")
    _REGISTRY[instance.id] = instance
    for alias in instance.aliases:
        _ALIASES[alias] = instance.id
    return experiment


def _ensure_loaded() -> None:
    global _loaded
    if _loaded:
        return
    for module in _EXPERIMENT_MODULES:
        importlib.import_module(module)
    _loaded = True


def get(experiment_id: str) -> "Experiment":
    """Resolve an experiment by canonical id or alias."""
    _ensure_loaded()
    canonical = _ALIASES.get(experiment_id, experiment_id)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        known = ", ".join(sorted(ids()))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def canonical_ids() -> list[str]:
    """Sorted canonical experiment ids (one per experiment)."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def ids() -> list[str]:
    """Sorted resolvable ids: canonical ids plus aliases."""
    _ensure_loaded()
    return sorted(set(_REGISTRY) | set(_ALIASES))
