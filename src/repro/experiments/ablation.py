"""Ablation experiments on TCP-TRIM's design choices.

Three studies beyond the paper's own figures, called out in DESIGN.md:

* :func:`run_k_sweep` — the Eq. 22 threshold versus multiples of it, on
  the simulator: utilization / queue / drops trade-off.
* :func:`run_probe_policies` — blind inheritance (Reno) vs restart-at-2
  (GIP [13]) vs probe-then-tune (TRIM) on the motivation scenario.
* :func:`run_alpha_sweep` — sensitivity of the smoothed-RTT gain α that
  drives gap detection and the probe deadline (the paper fixes 0.25).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core import kguide
from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.motivation import MotivationParams, run_motivation
from repro.experiments.scenarios import packets_per_second, path_base_rtt
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig, TcpSink
from repro.core.trim import TrimSource

__all__ = [
    "AblationExperiment",
    "AblationParams",
    "AlphaCase",
    "KSweepCase",
    "ProbePolicyCase",
    "run_alpha_sweep",
    "run_k_sweep",
    "run_probe_policies",
]


# ----------------------------------------------------------------------
# K sweep
# ----------------------------------------------------------------------

@dataclass
class KSweepCase:
    """One K multiple on an N-train star."""

    multiplier: float
    k: float
    goodput_bps: float
    utilization: float
    average_queue_pkts: float
    dropped_packets: int
    timeouts: int


def run_k_sweep(
    multipliers: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0),
    n_trains: int = 5,
    bandwidth_bps: float = 1e9,
    delay_s: float = 50e-6,
    buffer_pkts: int = 100,
    duration: float = 0.4,
) -> list[KSweepCase]:
    """Sweep TRIM's K around the Eq. 22 guideline on the simulator."""
    capacity = packets_per_second(bandwidth_bps)
    base_rtt = path_base_rtt([(delay_s, bandwidth_bps)] * 2)
    k_star = kguide.k_threshold(capacity, base_rtt)
    cases = []
    for mult in multipliers:
        k = max(base_rtt, k_star * mult)
        cases.append(
            _run_trim_star(
                k, capacity, base_rtt, n_trains, bandwidth_bps, delay_s,
                buffer_pkts, duration, mult,
            )
        )
    return cases


def _run_trim_star(
    k: float,
    capacity: float,
    base_rtt: float,
    n_trains: int,
    bandwidth_bps: float,
    delay_s: float,
    buffer_pkts: int,
    duration: float,
    mult: float,
) -> KSweepCase:
    sim = Simulator()
    star = build_star(
        sim, n_trains, bandwidth_bps=bandwidth_bps, delay_s=delay_s,
        buffer_pkts=buffer_pkts,
    )
    sources = []
    sinks = []
    config = TcpConfig(min_rto=1e-3, initial_rto=1e-3, initial_ssthresh=64)
    for i, server in enumerate(star.servers):
        source = TrimSource(
            sim, server, flow_id=i + 1, dst_id=star.frontend.node_id,
            config=config, capacity_pps=capacity, base_rtt=base_rtt,
        )
        source.k = k  # pin the swept threshold
        source.base_rtt = base_rtt  # keeps _update_k from overriding it
        sink = TcpSink(sim, star.frontend, flow_id=i + 1)
        source.send_message(10_000_000)
        sources.append(source)
        sinks.append(sink)

    measure_from = duration * 0.25
    baseline = {}
    queue_samples = []

    def snapshot() -> None:
        for sink in sinks:
            baseline[sink.flow_id] = sink.delivered_segments

    def sample_queue() -> None:
        queue_samples.append(star.bottleneck.backlog_pkts)
        if sim.now < duration:
            sim.schedule(5e-4, sample_queue)

    sim.schedule_at(measure_from, snapshot)
    sim.schedule_at(measure_from, sample_queue)
    sim.run(until=duration)

    window = duration - measure_from
    delivered = sum(
        s.delivered_segments - baseline.get(s.flow_id, 0) for s in sinks
    )
    goodput = delivered * config.mss_bytes * 8.0 / window
    return KSweepCase(
        multiplier=mult,
        k=k,
        goodput_bps=goodput,
        utilization=goodput / bandwidth_bps,
        average_queue_pkts=sum(queue_samples) / max(1, len(queue_samples)),
        dropped_packets=star.network.total_dropped(),
        timeouts=sum(s.stats.timeouts for s in sources),
    )


# ----------------------------------------------------------------------
# Probe policies
# ----------------------------------------------------------------------

@dataclass
class ProbePolicyCase:
    """One inheritance policy on the motivation scenario."""

    protocol: str
    timeouts: int
    dropped_packets: int
    mean_lpt_completion: float
    all_done_time: float


def run_probe_policies(
    protocols: Sequence[str] = ("reno", "gip", "trim"),
    quick: bool = True,
) -> list[ProbePolicyCase]:
    """Compare window-inheritance policies (Fig. 4/6 scenario)."""
    cases = []
    for protocol in protocols:
        params = (
            MotivationParams.quick(protocol)
            if quick
            else MotivationParams.paper(protocol)
        )
        result = run_motivation(params)
        lpts = result.lpt_completion_times
        cases.append(
            ProbePolicyCase(
                protocol=protocol,
                timeouts=result.total_timeouts,
                dropped_packets=result.dropped_packets,
                mean_lpt_completion=sum(lpts) / len(lpts),
                all_done_time=result.all_done_time,
            )
        )
    return cases


# ----------------------------------------------------------------------
# α sweep
# ----------------------------------------------------------------------

@dataclass
class AlphaCase:
    """One smoothed-RTT gain on a fixed ON/OFF stream."""

    alpha: float
    probes_completed: int
    probe_deadline_misses: int
    timeouts: int
    stream_finish_time: float
    delivered_segments: int


def run_alpha_sweep(
    alphas: Sequence[float] = (0.1, 0.25, 0.5, 0.9),
    n_trains: int = 20,
    train_segments: int = 40,
    train_interval: float = 5e-3,
    bottleneck_bps: float = 500e6,
    background: bool = True,
) -> list[AlphaCase]:
    """Replay one ON/OFF stream under different smooth-RTT gains.

    With ``background`` (default) a loss-based long transfer shares the
    bottleneck so the RTT actually *varies* — the regime where the gain
    matters: smooth_RTT is both the gap threshold and the probe
    deadline, so a gain that over- or under-tracks the saw-tooth shows
    up as spurious probes, missed deadlines, or a slower stream.
    """
    cases = []
    for alpha in alphas:
        sim = Simulator()
        star = build_star(sim, 2, frontend_bandwidth_bps=bottleneck_bps)
        if background:
            from repro.tcp.reno import RenoSource

            bg = RenoSource(
                sim, star.servers[1], flow_id=9,
                dst_id=star.frontend.node_id,
                config=TcpConfig(min_rto=0.01, initial_rto=0.01,
                                 initial_ssthresh=64),
            )
            TcpSink(sim, star.frontend, flow_id=9)
            bg.send_message(10_000_000)
        source = TrimSource(
            sim, star.servers[0], flow_id=1, dst_id=star.frontend.node_id,
            config=TcpConfig(min_rto=0.01, initial_rto=0.01),
            capacity_pps=packets_per_second(bottleneck_bps),
            smooth_alpha=alpha,
        )
        sink = TcpSink(sim, star.frontend, flow_id=1)
        messages = []
        for i in range(n_trains):
            sim.schedule_at(
                train_interval * (i + 1),
                lambda: messages.append(source.send_message(train_segments)),
            )
        sim.run(until=2.0)
        finished = [m.finish_time for m in messages if m.finish_time is not None]
        cases.append(
            AlphaCase(
                alpha=alpha,
                probes_completed=source.probes_completed,
                probe_deadline_misses=source.probes_timed_out,
                timeouts=source.stats.timeouts,
                stream_finish_time=max(finished) if finished else float("nan"),
                delivered_segments=sink.next_expected,
            )
        )
    return cases


# ----------------------------------------------------------------------
# Registered experiment
# ----------------------------------------------------------------------

@dataclass
class AblationParams:
    """Knobs of the three ablation studies (no protocol sweep)."""

    preset: str = "quick"
    k_multipliers: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0)
    probe_protocols: Sequence[str] = ("reno", "gip", "trim")
    alphas: Sequence[float] = (0.1, 0.25, 0.5, 0.9)

    @classmethod
    def paper(cls, **overrides: Any) -> "AblationParams":
        overrides.setdefault("preset", "paper")
        return cls(**overrides)

    @classmethod
    def quick(cls, **overrides: Any) -> "AblationParams":
        overrides.setdefault("preset", "quick")
        return cls(**overrides)


@register
class AblationExperiment(Experiment):
    """The three TCP-TRIM design-choice studies as one experiment."""

    id = "ablations"
    title = "Ablations: K sweep, probe policies, alpha sweep"
    params_cls = AblationParams
    uses_protocols = False

    def points(self, params: AblationParams) -> list[Point]:
        return [Point("k_sweep"), Point("probe_policies"), Point("alpha_sweep")]

    def run_point(self, params: AblationParams, point: Point, seed: int) -> Any:
        if point.label == "k_sweep":
            return run_k_sweep(multipliers=params.k_multipliers)
        if point.label == "probe_policies":
            return run_probe_policies(
                protocols=params.probe_protocols,
                quick=params.preset == "quick",
            )
        return run_alpha_sweep(alphas=params.alphas)

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        return {p.label: r for p, r in zip(points, results)}

    def report(self, params: Any, payload: Any) -> None:
        MS = 1e3
        print("K sweep (5 TRIM trains, 1 Gbps star):")
        for case in payload["k_sweep"]:
            print(f"  K={case.multiplier:4.2f}x Eq.22 ({case.k * 1e6:6.0f}us)  "
                  f"util={case.utilization:6.1%}  AQL={case.average_queue_pkts:6.1f}  "
                  f"drops={case.dropped_packets}  to={case.timeouts}")
        print("Probe policies (motivation scenario):")
        for case in payload["probe_policies"]:
            print(f"  {case.protocol:5s}  to={case.timeouts:3d}  "
                  f"drops={case.dropped_packets:5d}  "
                  f"mean LPT={case.mean_lpt_completion * MS:7.1f}ms  "
                  f"done@{case.all_done_time:6.3f}s")
        print("Smooth-RTT gain sweep:")
        for case in payload["alpha_sweep"]:
            print(f"  alpha={case.alpha:4.2f}  probes={case.probes_completed:3d}  "
                  f"deadline_misses={case.probe_deadline_misses:3d}  "
                  f"to={case.timeouts}  done@{case.stream_finish_time * MS:7.1f}ms")
