"""Open-loop offered-load sweeps — the scenario-diversity engine.

Closed-loop figures fix concurrency and measure completion times; this
experiment fixes *offered load* and lets concurrency emerge.  Each
point compiles a seeded arrival schedule (Poisson/MMPP/diurnal, or a
replayed trace), plays it through per-server keep-alive pools onto a
star topology, and measures what the protocol under test delivers:
achieved request rate, completion-latency percentiles, and the pool
churn (cold opens, idle closes, reuse fraction) the paper's
aggressive-TCP premise turns on — every fresh connection restarts
slow-start, so a reconnect storm *is* the aggressive-behavior trigger.

The sweep coordinate is a multiplicative load factor over the arrival
spec's base rate; ``--arrivals`` swaps the process, ``--replay`` swaps
the whole schedule for a recorded trace (one point, factor 1).  Same
seed + same spec ⇒ byte-identical schedules and telemetry under every
backend and ``--jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.scenarios import (
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    run_until,
)
from repro.http.openloop.arrivals import parse_arrivals
from repro.http.openloop.driver import OpenLoopDriver
from repro.http.openloop.sessions import (
    FanoutSpec,
    ScheduledRequest,
    SessionConfig,
    SessionSchedule,
    compile_schedule,
)
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.factory import default_config

__all__ = [
    "OpenLoopCase",
    "OpenLoopExperiment",
    "OpenLoopParams",
    "run_openloop_point",
]


@dataclass
class OpenLoopParams:
    """Offered-load sweep parameters.

    ``arrivals`` is the spec-grammar string (see
    :mod:`repro.http.openloop.arrivals`); ``load_factors`` multiply its
    rates, one sweep point each.  ``replay`` — rows of ``(t, session,
    size)`` — overrides arrivals entirely: the sweep collapses to one
    replayed point, so a recorded trace drives any protocol.
    """

    protocol: str = "reno"
    arrivals: str = "poisson:rate=120"
    load_factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0)
    horizon: float = 2.0
    drain: float = 1.0
    n_servers: int = 4
    mean_requests: float = 3.0
    think_time_s: float = 0.05
    fanout_aggregators: int = 1
    fanout_leaves: int = 1
    idle_timeout_s: float = 0.2
    max_reuse: int = 64
    bandwidth_bps: float = 1e9
    delay_s: float = 50e-6
    buffer_pkts: int = 100
    min_rto: float = 0.01
    replay: Optional[tuple[tuple[float, int, int], ...]] = None

    @classmethod
    def paper(cls, protocol: str = "reno", **overrides: Any) -> "OpenLoopParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "reno", **overrides: Any) -> "OpenLoopParams":
        defaults: dict[str, Any] = dict(
            arrivals="poisson:rate=60",
            load_factors=(0.5, 1.5),
            horizon=1.0,
            drain=0.5,
            n_servers=2,
            mean_requests=2.0,
        )
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)

    def session_config(self) -> SessionConfig:
        return SessionConfig(
            mean_requests=self.mean_requests,
            think_time_s=self.think_time_s,
            fanout=FanoutSpec(
                aggregators=self.fanout_aggregators,
                leaves=self.fanout_leaves,
            ),
        )


@dataclass
class OpenLoopCase:
    """One offered-load point's measurements."""

    load_factor: float
    offered_rate: float  # scheduled requests per second
    offered: int  # scheduled requests
    issued: int
    completed: int
    achieved_rate: float  # completed per horizon second
    latency_p50: Optional[float]
    latency_p99: Optional[float]
    conns_opened: int
    conns_closed_idle: int
    conns_closed_retired: int
    reuse_fraction: float
    timeouts: int


def _percentile(sorted_values: list[float], q: float) -> float:
    pos = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _build_schedule(
    params: OpenLoopParams, factor: float, seed: int
) -> SessionSchedule:
    if params.replay is not None:
        rows = [
            ScheduledRequest(time=t, session=s, size_bytes=b)
            for t, s, b in params.replay
        ]
        # A replayed trace may extend past the preset horizon; stretch
        # it so the drain deadline covers every recorded request.
        last = max((r.time for r in rows), default=0.0)
        horizon = max(params.horizon, last + 1e-9)
        return SessionSchedule.from_requests(rows, horizon=horizon)
    process = parse_arrivals(params.arrivals).scaled(factor)
    return compile_schedule(
        process,
        params.session_config(),
        seed=seed,
        horizon=params.horizon,
    )


def run_openloop_point(
    params: OpenLoopParams, factor: float, seed: int
) -> OpenLoopCase:
    """Compile one schedule and drive it through the simulator."""
    schedule = _build_schedule(params, factor, seed)
    sim = Simulator()
    star = build_star(
        sim,
        params.n_servers,
        bandwidth_bps=params.bandwidth_bps,
        delay_s=params.delay_s,
        buffer_pkts=params.buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(
            params.protocol, params.bandwidth_bps
        ),
    )
    config = default_config(
        params.protocol, min_rto=params.min_rto, initial_rto=params.min_rto
    )
    extras: dict[str, Any] = {}
    if params.protocol == "trim":
        extras["capacity_pps"] = packets_per_second(params.bandwidth_bps)
        extras["base_rtt"] = path_base_rtt(
            [(params.delay_s, params.bandwidth_bps)] * 2
        )
    driver = OpenLoopDriver(
        sim,
        star.frontend,
        star.servers,
        params.protocol,
        config=config,
        idle_timeout_s=params.idle_timeout_s,
        max_reuse=params.max_reuse,
        **extras,
    )
    run = driver.play(schedule)
    deadline = schedule.horizon + params.drain
    run_until(sim, lambda: run.completed >= run.offered, deadline)
    driver.check_conservation()
    stats = driver.pool_stats()
    latencies = sorted(run.latencies)
    return OpenLoopCase(
        load_factor=factor,
        offered_rate=schedule.offered_rate(),
        offered=run.offered,
        issued=run.issued,
        completed=run.completed,
        achieved_rate=run.completed / schedule.horizon,
        latency_p50=_percentile(latencies, 50.0) if latencies else None,
        latency_p99=_percentile(latencies, 99.0) if latencies else None,
        conns_opened=stats.opened,
        conns_closed_idle=stats.closed_idle,
        conns_closed_retired=stats.closed_retired,
        reuse_fraction=stats.reuse_fraction,
        timeouts=driver.total_timeouts(),
    )


@register
class OpenLoopExperiment(Experiment):
    """Offered-load sweep: one independent simulation per load factor."""

    id = "openloop"
    title = "Open-loop offered-load sweep over keep-alive pools"
    params_cls = OpenLoopParams
    accepts_openloop = True

    def points(self, params: OpenLoopParams) -> list[Point]:
        if params.replay is not None:
            return [Point("replay", {"factor": 1.0})]
        return [
            Point(f"load{factor:g}", {"factor": factor})
            for factor in params.load_factors
        ]

    def run_point(
        self, params: OpenLoopParams, point: Point, seed: int
    ) -> OpenLoopCase:
        return run_openloop_point(params, point.kwargs["factor"], seed)

    def reduce(
        self,
        params: Any,
        points: Sequence[Point],
        results: Sequence[Any],
    ) -> Any:
        return [r for r in results if r is not None]

    def report(self, params: Any, payload: Any) -> None:
        MS = 1e3
        source = "replay" if params.replay is not None else params.arrivals
        print(
            f"[{params.protocol}] open-loop load ({source}, "
            f"{params.n_servers} servers, horizon {params.horizon:g}s):"
        )
        for case in payload:
            p50 = f"{case.latency_p50 * MS:7.2f}" if case.latency_p50 else "      -"
            p99 = f"{case.latency_p99 * MS:7.2f}" if case.latency_p99 else "      -"
            print(
                f"  x{case.load_factor:<4g} offered={case.offered_rate:7.1f}/s  "
                f"done={case.completed}/{case.offered}  "
                f"p50={p50} ms  p99={p99} ms  "
                f"conns={case.conns_opened} "
                f"(reuse {case.reuse_fraction * 100:.0f}%)  "
                f"timeouts={case.timeouts}"
            )
