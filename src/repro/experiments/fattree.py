"""Fat-tree protocol comparison — Figure 12 and Table I.

Every server sends 1 MB over a persistent connection to a randomly
selected sink server, split into small objects (2–6 KB, sent from
0.1 s with ON/OFF gaps) and one big remainder sent at 0.5 s — exactly
the window-inheritance trap.  The paper sweeps pods 4–10 on 10 Gbps
links with 350 KB (≈245 packet) buffers and compares TCP, DCTCP, L2DCT,
and TCP-TRIM on mean/max completion time (Fig. 12) and on the total
number of RTO events (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.scenarios import (
    ConnectionSet,
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    run_until,
)
from repro.http.workload import gap_sampler
from repro.metrics.stats import summarize
from repro.net.topology import build_fat_tree
from repro.sim.kernel import Simulator
from repro.sim.randomness import seeded_rng
from repro.tcp.factory import default_config

__all__ = [
    "FatTreeExperiment",
    "FatTreeParams",
    "FatTreeResult",
    "run_fattree",
]


@dataclass
class FatTreeParams:
    """Fig. 12 / Table I parameters."""

    protocol: str = "reno"
    k: int = 4  # pod count
    #: pod counts swept by the registered experiment (``k`` is the
    #: single-run entry point's knob; the sweep overrides it per point)
    pod_counts: Sequence[int] = (4, 6, 8, 10)
    bandwidth_bps: float = 10e9
    delay_s: float = 10e-6
    buffer_pkts: int = 245  # 350 KB of 1460 B packets
    total_bytes: int = 1_000_000
    small_range_bytes: tuple[int, int] = (2_000, 6_000)
    n_small: int = 25
    small_start: float = 0.1
    big_start: float = 0.5
    min_rto: float = 0.05
    deadline: float = 5.0
    seed: int = 1

    @classmethod
    def paper(cls, protocol: str = "reno", **overrides: Any) -> "FatTreeParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "reno", **overrides: Any) -> "FatTreeParams":
        """Smaller transfers; same split structure and topology."""
        defaults = dict(
            pod_counts=(4, 6), total_bytes=300_000, n_small=10, deadline=3.0
        )
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)


@dataclass
class FatTreeResult:
    """Per-server completion statistics plus the Table I timeout count."""

    protocol: str
    k: int
    n_servers: int
    #: per-server completion measured from the first small object
    mean_completion: float
    max_completion: float
    #: completion of the big (window-inheriting) transfer alone — the
    #: discriminating part of the workload
    big_mean_completion: float
    big_max_completion: float
    completed_servers: int
    total_timeouts: int
    dropped_packets: int


def run_fattree(params: FatTreeParams) -> FatTreeResult:
    """Run one (protocol, pod-count) cell of Fig. 12 / Table I."""
    sim = Simulator()
    rng = seeded_rng(params.seed, params.k)
    topo = build_fat_tree(
        sim,
        params.k,
        bandwidth_bps=params.bandwidth_bps,
        delay_s=params.delay_s,
        buffer_pkts=params.buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(params.protocol, params.bandwidth_bps),
    )
    config = default_config(
        params.protocol, min_rto=params.min_rto, initial_rto=params.min_rto
    )
    connections = ConnectionSet(
        sim,
        params.protocol,
        config=config,
        capacity_pps=packets_per_second(params.bandwidth_bps),
        base_rtt=path_base_rtt(
            [(params.delay_s, params.bandwidth_bps)] * 6  # inter-pod path
        ),
    )
    gaps = gap_sampler()
    n_hosts = len(topo.hosts)

    # Random sink per server: a permutation shifted by a random offset
    # guarantees sink != self while keeping the many-to-one collisions
    # random (several servers may pick the same edge switch).
    targets = rng.permutation(n_hosts)
    for i in range(n_hosts):
        if targets[i] == i:  # swap self-assignments with a neighbour
            j = (i + 1) % n_hosts
            targets[i], targets[j] = targets[j], targets[i]

    big_messages = []
    lo, hi = params.small_range_bytes
    mss = config.mss_bytes
    for i, host in enumerate(topo.hosts):
        src, _sink = connections.connect(host, topo.hosts[int(targets[i])])
        small_sizes = rng.integers(lo, hi + 1, params.n_small)
        small_total = int(small_sizes.sum())
        big_bytes = max(mss, params.total_bytes - small_total)
        t = params.small_start
        for size in small_sizes:
            sim.schedule_at(t, lambda s=src, b=int(size): s.send_bytes(b))
            t += float(gaps.sample(rng, 1)[0])
        sim.schedule_at(
            params.big_start,
            lambda s=src, b=big_bytes: big_messages.append(s.send_bytes(b)),
        )

    run_until(
        sim,
        lambda: len(big_messages) == n_hosts
        and all(m.finish_time is not None for m in big_messages),
        params.deadline,
    )

    finished = [m for m in big_messages if m.finish_time is not None]
    if not finished:
        raise RuntimeError("no server finished before the deadline")
    per_server = [m.finish_time - params.small_start for m in finished]
    big_only = [m.completion_time for m in finished]
    stats = summarize(per_server)
    big_stats = summarize(big_only)
    return FatTreeResult(
        protocol=params.protocol,
        k=params.k,
        n_servers=n_hosts,
        mean_completion=stats.mean,
        max_completion=stats.maximum,
        big_mean_completion=big_stats.mean,
        big_max_completion=big_stats.maximum,
        completed_servers=stats.count,
        total_timeouts=connections.total_timeouts,
        dropped_packets=topo.network.total_dropped(),
    )


@register
class FatTreeExperiment(Experiment):
    """Fig. 12 / Table I: one fat-tree run per pod count."""

    id = "fig12"
    aliases = ("table1",)
    title = "Fig. 12 / Table I fat-tree comparison"
    params_cls = FatTreeParams

    def points(self, params: FatTreeParams) -> list[Point]:
        return [Point(f"k{k}", {"k": k}) for k in params.pod_counts]

    def run_point(self, params: FatTreeParams, point: Point, seed: int) -> Any:
        return run_fattree(replace(params, k=point.kwargs["k"], seed=seed))

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        """One FatTreeResult per pod count, in sweep order."""
        return [r for r in results if r is not None]

    def report(self, params: Any, payload: Any) -> None:
        MS = 1e3
        print(f"[{params.protocol}] Fig.12 mean/max completion (ms) "
              f"and Table I timeouts:")
        for r in payload:
            print(f"  pods={r.k:2d}  servers={r.n_servers:3d}  "
                  f"big={r.big_mean_completion * MS:7.1f}"
                  f"/{r.big_max_completion * MS:7.1f}ms  "
                  f"timeouts={r.total_timeouts:5d}")
