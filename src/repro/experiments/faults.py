"""Robustness under injected faults: goodput and RTOs vs intensity.

Not a figure in the paper — a chaos harness around its claims.  N
long-lived senders share the star bottleneck while a deterministic
:class:`~repro.faults.FaultPlan` batters the switch→front-end link:
a loss burst, a delay-jitter window, a background-traffic surge, a
buffer shrink/restore, and a short outage.  The sweep scales the plan's
stochastic magnitudes by an *intensity* factor (0 = fault-free
baseline) and reports, per intensity, the foreground goodput, the RTO
count, and the injected-versus-congestion loss ledger
(:class:`~repro.metrics.faults.FaultReport`).

Comparing protocols under the same seed is meaningful by construction:
the injector draws per-link streams keyed by the point seed and link
name, so Reno, DCTCP, and TRIM face the byte-identical fault schedule.
A custom plan file can replace the built-in one via the CLI's
``--fault-plan`` (see EXPERIMENTS.md, "Fault scenarios")::

    python -m repro.experiments faults --preset quick --fault-plan plan.json
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.scenarios import (
    ConnectionSet,
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    warm_config,
)
from repro.faults import (
    BackgroundSurge,
    BufferResize,
    Corrupt,
    DelayJitter,
    FaultInjector,
    FaultPlan,
    LinkDown,
    LinkUp,
    LossBurst,
)
from repro.metrics.faults import FaultReport, fault_report
from repro.net.packet import MSS_BYTES
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.factory import default_config

__all__ = [
    "FaultsCase",
    "FaultsExperiment",
    "FaultsParams",
    "default_fault_plan",
    "run_faults_case",
]

#: the star bottleneck every built-in fault targets.
BOTTLENECK = "sw->frontend"

#: effectively-infinite message for always-backlogged senders.
_BACKLOGGED_SEGMENTS = 10**9


@dataclass
class FaultsParams:
    """Chaos-sweep parameters."""

    protocol: str = "reno"
    #: plan-scaling factors; 0 is the fault-free baseline.
    intensities: Sequence[float] = (0.0, 0.5, 1.0, 2.0)
    senders: int = 8
    #: extra hosts reserved for BackgroundSurge flows.
    surge_hosts: int = 4
    bandwidth_bps: float = 1e9
    frontend_bandwidth_bps: Optional[float] = None
    delay_s: float = 50e-6
    buffer_pkts: int = 64
    min_rto: float = 0.01
    start_time: float = 0.01
    horizon: float = 1.0
    #: JSON text of a FaultPlan overriding :func:`default_fault_plan`
    #: (text rather than a parsed plan so params stay trivially
    #: JSON-able for the cache key and picklable for workers).
    plan_json: Optional[str] = None

    @classmethod
    def paper(cls, protocol: str = "reno", **overrides: Any) -> "FaultsParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "reno", **overrides: Any) -> "FaultsParams":
        defaults = dict(
            intensities=(0.0, 1.0),
            senders=4,
            surge_hosts=2,
            bandwidth_bps=100e6,
            frontend_bandwidth_bps=50e6,
            buffer_pkts=16,
            horizon=0.6,
        )
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)

    def plan(self) -> FaultPlan:
        """The unscaled plan this sweep runs (custom or built-in)."""
        if self.plan_json is not None:
            return FaultPlan.from_json(self.plan_json)
        return default_fault_plan(self)


def default_fault_plan(params: FaultsParams) -> FaultPlan:
    """The built-in chaos schedule, laid out as fractions of the horizon.

    One of each impairment the subsystem models, spaced so the flows
    have recovery room between faults; the buffer shrink is restored
    before the run ends so the final stretch measures recovery, not a
    crippled switch.
    """
    h = params.horizon
    return FaultPlan.of([
        LossBurst(time=0.15 * h, link=BOTTLENECK, rate=0.05, duration=0.10 * h),
        Corrupt(time=0.26 * h, link=BOTTLENECK, rate=0.02, duration=0.04 * h),
        DelayJitter(time=0.30 * h, link=BOTTLENECK, mean_s=4e-4, duration=0.10 * h),
        BackgroundSurge(time=0.45 * h, flows=params.surge_hosts, duration=0.15 * h),
        BufferResize(time=0.60 * h, link=BOTTLENECK,
                     pkts=max(1, params.buffer_pkts // 4)),
        LinkDown(time=0.72 * h, link=BOTTLENECK),
        LinkUp(time=0.74 * h, link=BOTTLENECK),
        BufferResize(time=0.85 * h, link=BOTTLENECK, pkts=params.buffer_pkts),
    ])


@dataclass
class FaultsCase:
    """One intensity point of the chaos sweep."""

    intensity: float
    goodput_bps: float  # foreground payload delivered over the run
    timeouts: int  # foreground RTO count
    report: FaultReport

    @property
    def injected_losses(self) -> int:
        return self.report.injected_losses

    @property
    def congestion_drops(self) -> int:
        return self.report.congestion_drops


def run_faults_case(params: FaultsParams, intensity: float, seed: int) -> FaultsCase:
    """One run: the scenario under ``plan.scaled(intensity)``."""
    plan = params.plan().scaled(intensity)
    frontend_bw = params.frontend_bandwidth_bps or params.bandwidth_bps
    sim = Simulator()
    star = build_star(
        sim,
        params.senders + params.surge_hosts,
        bandwidth_bps=params.bandwidth_bps,
        delay_s=params.delay_s,
        buffer_pkts=params.buffer_pkts,
        frontend_bandwidth_bps=params.frontend_bandwidth_bps,
        ecn_threshold_pkts=ecn_threshold_for(params.protocol, frontend_bw),
    )
    config = default_config(
        params.protocol, min_rto=params.min_rto, initial_rto=params.min_rto
    )
    connections = ConnectionSet(
        sim,
        params.protocol,
        config=config,
        capacity_pps=packets_per_second(params.bandwidth_bps),
        base_rtt=path_base_rtt([(params.delay_s, params.bandwidth_bps)] * 2),
    )
    foreground = connections.connect_many(
        star.servers[: params.senders], star.frontend, config=warm_config(config)
    )
    surge_sources = connections.connect_many(
        star.servers[params.senders:], star.frontend, config=warm_config(config)
    )
    for source in foreground:
        sim.schedule_at(
            params.start_time,
            lambda s=source: s.send_message(_BACKLOGGED_SEGMENTS),
        )

    def surge_factory(index: int) -> Callable[[], None]:
        source = surge_sources[index % len(surge_sources)]
        source.send_message(_BACKLOGGED_SEGMENTS)
        return source.stop

    injector = FaultInjector(
        sim,
        star.network,
        plan,
        seed=seed,
        surge_factory=surge_factory if surge_sources else None,
    )
    injector.arm()
    sim.run(until=params.horizon)

    foreground_sinks = connections.sinks[: params.senders]
    delivered = sum(sink.delivered_segments for sink in foreground_sinks)
    duration = params.horizon - params.start_time
    goodput = delivered * MSS_BYTES * 8.0 / duration
    return FaultsCase(
        intensity=intensity,
        goodput_bps=goodput,
        timeouts=sum(s.stats.timeouts for s in foreground),
        report=fault_report(star.network, injector.total_stats()),
    )


@register
class FaultsExperiment(Experiment):
    """Chaos sweep: one independent simulation per fault intensity."""

    id = "faults"
    title = "Goodput and RTOs under injected faults"
    params_cls = FaultsParams
    accepts_fault_plan = True

    def points(self, params: FaultsParams) -> list[Point]:
        return [
            Point(f"i{intensity:g}", {"intensity": intensity})
            for intensity in params.intensities
        ]

    def run_point(self, params: FaultsParams, point: Point, seed: int) -> Any:
        return run_faults_case(params, point.kwargs["intensity"], seed)

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        """One FaultsCase per intensity, in sweep order."""
        return [r for r in results if r is not None]

    def report(self, params: Any, payload: Any) -> None:
        print(f"[{params.protocol}] goodput/RTOs vs fault intensity "
              f"({params.senders} senders, horizon {params.horizon:g}s):")
        for case in payload:
            r = case.report
            print(f"  intensity={case.intensity:4g}  "
                  f"goodput={case.goodput_bps / 1e6:7.1f} Mbps  "
                  f"timeouts={case.timeouts:3d}  "
                  f"injected={r.injected_losses:4d} "
                  f"(drop {r.injected_drops}, corrupt {r.corrupted}, "
                  f"outage {r.down_drops}, evict {r.evictions})  "
                  f"congestion={r.congestion_drops}")
