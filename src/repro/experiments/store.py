"""Result persistence: experiment outputs as JSON artifacts.

``python -m repro.experiments <id> --output results.json`` snapshots
whatever the experiment measured, with enough metadata (package
version, preset, seed, timestamp source left to the caller) to audit a
figure later.  Dataclasses, numpy scalars/arrays, and
:class:`~repro.sim.monitor.TimeSeries` all serialize.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.sim.monitor import TimeSeries

__all__ = ["load_results", "save_results", "to_jsonable"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable structures."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if obj != obj:  # NaN
            return None
        if obj in (float("inf"), float("-inf")):
            return None
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return to_jsonable(float(obj))
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if isinstance(obj, TimeSeries):
        return {
            "name": obj.name,
            "times": list(obj.times),
            "values": [to_jsonable(v) for v in obj.values],
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
            if not field.name.startswith("_")
        }
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    if callable(obj):
        return getattr(obj, "__qualname__", repr(obj))
    return repr(obj)


def save_results(
    path: str | Path,
    experiment: str,
    payload: Any,
    preset: str = "quick",
    seed: int | None = None,
    metadata: dict | None = None,
) -> Path:
    """Write an experiment artifact; returns the path written.

    ``metadata`` records run provenance that is *not* part of the
    measurement (worker count, cache hits); it never affects
    ``results``, which stay bit-identical across run configurations.
    """
    from repro import __version__

    path = Path(path)
    document = {
        "experiment": experiment,
        "preset": preset,
        "seed": seed,
        "repro_version": __version__,
        "results": to_jsonable(payload),
    }
    if metadata:
        document["metadata"] = to_jsonable(metadata)
    path.write_text(json.dumps(document, indent=1, sort_keys=True))
    return path


def load_results(path: str | Path) -> dict:
    """Read an artifact written by :func:`save_results`."""
    document = json.loads(Path(path).read_text())
    for key in ("experiment", "preset", "results"):
        if key not in document:
            raise ValueError(f"not a repro results artifact: missing {key!r}")
    return document
