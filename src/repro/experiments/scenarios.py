"""Shared experiment plumbing.

Every experiment needs the same glue: packets-per-second conversion for
TCP-TRIM's ``capacity_pps``, an ECN threshold when DCTCP/L2DCT runs, a
connection factory that passes each protocol what it needs, and a
timeout tally across all senders.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional

from repro.net.node import Host
from repro.net.packet import MSS_BYTES
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig, TcpSink, TcpSource
from repro.tcp.factory import ECN_PROTOCOLS, create_source, default_config

__all__ = [
    "ConnectionSet",
    "dctcp_threshold_pkts",
    "ecn_threshold_for",
    "packets_per_second",
    "path_base_rtt",
    "run_until",
    "warm_config",
]

#: default warm-start slow-start threshold for long-lived background
#: flows.  A fresh flow with an effectively infinite ssthresh slow-starts
#: into a whole-window loss and a long RTO stall; NS2 experiments avoid
#: this startup artifact by configuring a moderate initial ssthresh on
#: the background (long-train) senders, which is what the paper's steady
#: saw-tooth queues (Fig. 9a) imply.  Foreground/SPT connections keep
#: the protocol default — their slow start IS the phenomenon under test.
WARM_SSTHRESH = 64.0


def warm_config(config: TcpConfig, ssthresh: float = WARM_SSTHRESH) -> TcpConfig:
    """A copy of ``config`` with a warm-started slow-start threshold."""
    return replace(config, initial_ssthresh=ssthresh)


def run_until(
    sim: Simulator,
    predicate: Callable[[], bool],
    deadline: float,
    step: float = 0.05,
) -> bool:
    """Advance the simulation until ``predicate()`` or ``deadline``.

    Returns True when the predicate became true.  Used by experiments
    that finish when "all transfers complete" without a fixed horizon.
    """
    if deadline < sim.now:
        raise ValueError("deadline is in the past")
    while not predicate():
        if sim.now >= deadline:
            return False
        if sim.peek_time() is None:
            # The event heap is empty: no callback can ever flip the
            # predicate, so jump straight to the deadline instead of
            # busy-stepping in `step` increments until it.
            sim.run(until=deadline)
            return bool(predicate())
        sim.run(until=min(sim.now + step, deadline))
    return True


def packets_per_second(bandwidth_bps: float, mss_bytes: int = MSS_BYTES) -> float:
    """Link capacity in MSS-sized packets per second (the C of Eq. 22)."""
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    return bandwidth_bps / (8.0 * mss_bytes)


def path_base_rtt(
    links: "list[tuple[float, float]]",
    mss_bytes: int = MSS_BYTES,
    ack_bytes: int = 40,
) -> float:
    """Queue-free RTT of a path given ``(delay_s, bandwidth_bps)`` links.

    Forward direction serializes a full data segment per hop; the
    reverse direction serializes an ACK.  This is the D of Eq. 22.
    """
    if not links:
        raise ValueError("a path needs at least one link")
    forward = sum(d + mss_bytes * 8.0 / b for d, b in links)
    reverse = sum(d + ack_bytes * 8.0 / b for d, b in links)
    return forward + reverse


def dctcp_threshold_pkts(bandwidth_bps: float) -> int:
    """The DCTCP paper's marking-threshold guideline: K = 20 packets at
    1 Gbps and K = 65 at 10 Gbps.  Interpolated as a power law
    (exponent log(65/20)/log(10) ≈ 0.512) — linear scaling would put K
    above the path BDP at 10 Gbps and disable DCTCP's early signal."""
    return max(5, round(20 * (bandwidth_bps / 1e9) ** 0.512))


def ecn_threshold_for(protocol: str, bandwidth_bps: float) -> Optional[int]:
    """Marking threshold a network needs for ``protocol`` (None if n/a)."""
    if protocol in ECN_PROTOCOLS:
        return dctcp_threshold_pkts(bandwidth_bps)
    return None


@dataclass
class ConnectionSet:
    """A batch of same-protocol connections in one experiment.

    Tracks sources and sinks, assigns flow ids, passes TCP-TRIM its
    ``capacity_pps``, and aggregates timeout counts (Table I's metric).
    """

    sim: Simulator
    protocol: str
    config: Optional[TcpConfig] = None
    capacity_pps: Optional[float] = None
    #: queue-free RTT of the scenario's paths; with ``capacity_pps`` it
    #: pins TCP-TRIM's K statically per Eq. 22, as the paper configures.
    base_rtt: Optional[float] = None
    sources: list[TcpSource] = field(default_factory=list)
    sinks: list[TcpSink] = field(default_factory=list)
    _next_flow_id: int = 0

    def connect(
        self,
        src_host: Host,
        dst_host: Host,
        config: Optional[TcpConfig] = None,
    ) -> tuple[TcpSource, TcpSink]:
        """Open a persistent connection from ``src_host`` to ``dst_host``.

        ``config`` overrides the set-wide config for this connection
        (e.g. a warm-started ssthresh for long-lived background flows).
        """
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        kwargs = {}
        if self.protocol == "trim":
            if self.capacity_pps is not None:
                kwargs["capacity_pps"] = self.capacity_pps
            if self.base_rtt is not None:
                kwargs["base_rtt"] = self.base_rtt
        if config is None:
            config = self.config
        if config is None:
            config = default_config(self.protocol)
        source = create_source(
            self.protocol,
            self.sim,
            src_host,
            dst_host.node_id,
            flow_id=flow_id,
            config=config,
            **kwargs,
        )
        sink = TcpSink(self.sim, dst_host, flow_id=flow_id)
        self.sources.append(source)
        self.sinks.append(sink)
        return source, sink

    def connect_many(
        self,
        src_hosts: Iterable[Host],
        dst_host: Host,
        config: Optional[TcpConfig] = None,
    ) -> list[TcpSource]:
        """Open one connection per source host, all towards ``dst_host``."""
        return [self.connect(h, dst_host, config=config)[0] for h in src_hosts]

    @property
    def total_timeouts(self) -> int:
        return sum(s.stats.timeouts for s in self.sources)

    @property
    def timeouts_per_source(self) -> list[int]:
        return [s.stats.timeouts for s in self.sources]
