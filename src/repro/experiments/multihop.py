"""Multi-hop, multi-bottleneck throughput — Figure 11.

Groups A and B (10 senders each) send long trains to the front-end;
group C's 10 senders each send a long train to a distinct group-D
receiver.  The switch1→switch2 and switch2→front-end trunks are both
oversubscribed; group A's traffic crosses both.  The paper reports
per-sender averages of roughly 342.7 / 638 / 318 Mbps for A/B/C under
TCP-TRIM versus 259 / 471 / 233 Mbps under TCP.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.tcp.base import TcpSink

from dataclasses import dataclass

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.scenarios import (
    ConnectionSet,
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    warm_config,
)
from repro.http.apps import LongTrainSender
from repro.net.topology import build_multi_hop
from repro.sim.kernel import Simulator
from repro.tcp.factory import default_config

__all__ = [
    "MultiHopExperiment",
    "MultiHopParams",
    "MultiHopResult",
    "run_multihop",
]


@dataclass
class MultiHopParams:
    """Fig. 11 parameters (paper defaults)."""

    protocol: str = "reno"
    group_size: int = 10
    host_bps: float = 1e9
    trunk_bps: float = 10e9
    host_delay_s: float = 20e-6
    trunk_delay_s: float = 10e-6
    buffer_pkts: int = 100
    trunk_buffer_pkts: int = 250
    start_time: float = 0.05
    end_time: float = 0.55
    measure_from: float = 0.15
    min_rto: float = 10e-3

    @classmethod
    def paper(cls, protocol: str = "reno", **overrides: Any) -> "MultiHopParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "reno", **overrides: Any) -> "MultiHopParams":
        """10× slower links, same oversubscription ratios."""
        defaults = dict(host_bps=1e8, trunk_bps=1e9, end_time=0.8, measure_from=0.2)
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)


@dataclass
class MultiHopResult:
    """Per-sender mean throughput (bps) for each group."""

    protocol: str
    group_a_bps: list[float]
    group_b_bps: list[float]
    group_c_bps: list[float]
    timeouts: int
    dropped_packets: int

    def mean(self, group: str) -> float:
        values = getattr(self, f"group_{group}_bps")
        return sum(values) / len(values)


def run_multihop(params: MultiHopParams) -> MultiHopResult:
    """Run Fig. 11's two-bottleneck scenario."""
    sim = Simulator()
    topo = build_multi_hop(
        sim,
        group_size=params.group_size,
        host_bandwidth_bps=params.host_bps,
        host_delay_s=params.host_delay_s,
        trunk_bandwidth_bps=params.trunk_bps,
        trunk_delay_s=params.trunk_delay_s,
        buffer_pkts=params.buffer_pkts,
        trunk_buffer_pkts=params.trunk_buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(params.protocol, params.host_bps),
    )
    config = default_config(
        params.protocol, min_rto=params.min_rto, initial_rto=max(params.min_rto, 1e-3)
    )
    connections = ConnectionSet(
        sim,
        params.protocol,
        config=config,
        capacity_pps=packets_per_second(params.host_bps),
        base_rtt=path_base_rtt(
            [
                (params.host_delay_s, params.host_bps),
                (params.trunk_delay_s, params.trunk_bps),
                (params.trunk_delay_s, params.trunk_bps),
            ]
        ),
    )
    sources = []
    sinks = []
    lpt_config = warm_config(config)
    for host in topo.group_a + topo.group_b:
        src, sink = connections.connect(host, topo.frontend, config=lpt_config)
        sources.append(src)
        sinks.append(sink)
    for sender, receiver in zip(topo.group_c, topo.group_d):
        src, sink = connections.connect(sender, receiver, config=lpt_config)
        sources.append(src)
        sinks.append(sink)
    for source in sources:
        LongTrainSender(sim, source, params.start_time).start()

    baseline: dict[int, int] = {}

    def snapshot() -> None:
        for sink in sinks:
            baseline[sink.flow_id] = sink.delivered_segments

    sim.schedule_at(params.measure_from, snapshot)
    sim.run(until=params.end_time)

    window = params.end_time - params.measure_from
    mss = config.mss_bytes

    def throughput(sink: TcpSink) -> float:
        segments = sink.delivered_segments - baseline.get(sink.flow_id, 0)
        return segments * mss * 8.0 / window

    g = params.group_size
    return MultiHopResult(
        protocol=params.protocol,
        group_a_bps=[throughput(s) for s in sinks[:g]],
        group_b_bps=[throughput(s) for s in sinks[g : 2 * g]],
        group_c_bps=[throughput(s) for s in sinks[2 * g :]],
        timeouts=connections.total_timeouts,
        dropped_packets=topo.network.total_dropped(),
    )


@register
class MultiHopExperiment(Experiment):
    """Fig. 11: a single two-bottleneck run per protocol."""

    id = "fig11"
    title = "Fig. 11 multi-hop, multi-bottleneck throughput"
    params_cls = MultiHopParams

    def points(self, params: MultiHopParams) -> list[Point]:
        return [Point("run")]

    def run_point(self, params: MultiHopParams, point: Point, seed: int) -> Any:
        return run_multihop(params)

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        return results[0]

    def report(self, params: Any, payload: Any) -> None:
        r = payload
        print(f"[{params.protocol}] Fig.11 per-sender throughput: "
              f"A={r.mean('a') / 1e6:6.1f}Mbps  B={r.mean('b') / 1e6:6.1f}Mbps  "
              f"C={r.mean('c') / 1e6:6.1f}Mbps  "
              f"timeouts={r.timeouts}  drops={r.dropped_packets}")
