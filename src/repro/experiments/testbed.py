"""Testbed-substitute experiments — Figure 13.

The paper's Section IV.D runs on real DELL machines; we re-express both
setups as simulator scenarios (see DESIGN.md's substitution table):

* :func:`run_arct_sweep` — Fig. 13(a): two servers stream large files
  through a 100 Mbps switch while a third sends 100 responses whose
  mean size sweeps 32 KB → 1 MB (each size ±10%); the metric is the
  average response completion time (ARCT), CUBIC versus TCP-TRIM.
* :func:`run_web_service` — Fig. 13(b)–(e): four servers send thousands
  of responses with Fig. 2's size/gap distributions over 1 Gbps links;
  the paper scatter-plots the 64–256 KB samples (TRIM never exceeds
  25 ms) and gives the full CDF (99% < 25 ms for TRIM).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.scenarios import (
    ConnectionSet,
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    run_until,
    warm_config,
)
from repro.http.apps import LongTrainSender, ScheduledResponder
from repro.http.workload import generate_onoff_schedule
from repro.metrics.stats import act, completion_times, percentile
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.sim.randomness import seeded_rng
from repro.tcp.factory import default_config

__all__ = [
    "ArctCase",
    "ArctExperiment",
    "ArctParams",
    "WebServiceExperiment",
    "WebServiceParams",
    "WebServiceResult",
    "run_arct_sweep",
    "run_web_service",
]


# ----------------------------------------------------------------------
# Fig. 13(a): ARCT versus mean response size
# ----------------------------------------------------------------------

@dataclass
class ArctParams:
    """Fig. 13(a) parameters."""

    protocol: str = "cubic"
    mean_sizes_bytes: Sequence[int] = (
        32_768, 65_536, 131_072, 262_144, 524_288, 1_048_576
    )
    n_responses: int = 100
    size_jitter: float = 0.1  # ±10% around the mean, per the paper
    n_background: int = 2
    bandwidth_bps: float = 100e6
    #: one-way host-to-switch latency.  Desktop NICs + kernel stacks at
    #: 100 Mbps sit near half a millisecond, far above fabric latency;
    #: this sets the D of Eq. 22 (and hence TRIM's headroom K − D).
    delay_s: float = 500e-6
    buffer_pkts: int = 100
    #: OFF gap between consecutive responses.  Must exceed the loaded
    #: RTT (tens of ms behind a full 100 Mbps drop-tail queue) so each
    #: response is a fresh packet train that inherits the window of the
    #: previous one — the testbed's request/response think-time.
    response_gap: float = 50e-3
    min_rto: float = 0.2
    deadline_per_response: float = 2.0
    seed: int = 1

    @classmethod
    def paper(cls, protocol: str = "cubic", **overrides: Any) -> "ArctParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "cubic", **overrides: Any) -> "ArctParams":
        defaults = dict(
            mean_sizes_bytes=(32_768, 131_072, 524_288), n_responses=20
        )
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)


@dataclass
class ArctCase:
    """One sweep point: the ARCT at one mean response size."""

    mean_size_bytes: int
    arct: float
    max_ct: float
    completed: int
    timeouts: int


def run_arct_sweep(params: ArctParams) -> list[ArctCase]:
    """Fig. 13(a): ARCT versus mean response size."""
    cases = []
    for mean_size in params.mean_sizes_bytes:
        cases.append(_run_arct_case(params, mean_size))
    return cases


def _run_arct_case(params: ArctParams, mean_size: int) -> ArctCase:
    sim = Simulator()
    rng = seeded_rng(params.seed, mean_size)
    star = build_star(
        sim,
        params.n_background + 1,
        bandwidth_bps=params.bandwidth_bps,
        delay_s=params.delay_s,
        buffer_pkts=params.buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(params.protocol, params.bandwidth_bps),
    )
    config = default_config(
        params.protocol, min_rto=params.min_rto, initial_rto=params.min_rto
    )
    connections = ConnectionSet(
        sim,
        params.protocol,
        config=config,
        capacity_pps=packets_per_second(params.bandwidth_bps),
        base_rtt=path_base_rtt(
            [(params.delay_s, params.bandwidth_bps)] * 2
        ),
    )
    background_hosts = star.servers[: params.n_background]
    responder_host = star.servers[params.n_background]
    for host in background_hosts:
        src, _sink = connections.connect(host, star.frontend, config=warm_config(config))
        LongTrainSender(sim, src, 0.0).start()
    responder_src, _sink = connections.connect(responder_host, star.frontend)

    # Responses are sent back-to-back with an OFF gap after each
    # completion, modelling the testbed's sequential request/response
    # loop over one persistent connection.
    messages = []
    jitter = params.size_jitter

    def send_next() -> None:
        if len(messages) >= params.n_responses:
            return
        size = int(mean_size * rng.uniform(1.0 - jitter, 1.0 + jitter))
        messages.append(
            responder_src.send_bytes(
                max(1, size),
                on_complete=lambda _m: sim.schedule(params.response_gap, send_next),
            )
        )

    sim.schedule_at(0.05, send_next)
    deadline = 0.05 + params.deadline_per_response * params.n_responses
    run_until(
        sim,
        lambda: len(messages) >= params.n_responses
        and all(m.finish_time is not None for m in messages),
        deadline,
        step=0.5,
    )
    times = completion_times(messages)
    if not times:
        raise RuntimeError("no response completed; raise the deadline")
    return ArctCase(
        mean_size_bytes=mean_size,
        arct=act(times),
        max_ct=max(times),
        completed=len(times),
        timeouts=connections.total_timeouts,
    )


# ----------------------------------------------------------------------
# Fig. 13(b)–(e): the web-service scenario
# ----------------------------------------------------------------------

@dataclass
class WebServiceParams:
    """Fig. 13(b)–(e) parameters."""

    protocol: str = "cubic"
    n_servers: int = 4
    n_responses_per_server: int = 1000
    bandwidth_bps: float = 1e9
    delay_s: float = 100e-6
    buffer_pkts: int = 100
    start_time: float = 0.05
    min_rto: float = 0.2
    scatter_band_bytes: tuple[int, int] = (65_536, 262_144)
    tail_threshold: float = 25e-3  # the paper's 25 ms line
    deadline: float = 30.0
    seed: int = 1

    @classmethod
    def paper(cls, protocol: str = "cubic", **overrides: Any) -> "WebServiceParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "cubic", **overrides: Any) -> "WebServiceParams":
        defaults = dict(n_responses_per_server=150, deadline=10.0)
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)


@dataclass
class WebServiceResult:
    """Fig. 13(b)–(e) observables."""

    protocol: str
    all_times: list[float]
    band_times: list[float]  # completion times of 64–256 KB responses
    band_max: float
    band_fraction_under_threshold: float
    p99: float
    fraction_under_threshold: float
    arct: float
    timeouts: int


def run_web_service(params: WebServiceParams) -> WebServiceResult:
    """Fig. 13(b)–(e): thousands of Fig. 2-distributed responses."""
    sim = Simulator()
    rng = seeded_rng(params.seed)
    star = build_star(
        sim,
        params.n_servers,
        bandwidth_bps=params.bandwidth_bps,
        delay_s=params.delay_s,
        buffer_pkts=params.buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(params.protocol, params.bandwidth_bps),
    )
    config = default_config(
        params.protocol, min_rto=params.min_rto, initial_rto=params.min_rto
    )
    connections = ConnectionSet(
        sim,
        params.protocol,
        config=config,
        capacity_pps=packets_per_second(params.bandwidth_bps),
        base_rtt=path_base_rtt(
            [(params.delay_s, params.bandwidth_bps)] * 2
        ),
    )
    responders = []
    sizes_by_responder: list[list[int]] = []
    for host in star.servers:
        src, _sink = connections.connect(host, star.frontend)
        # Draw ON/OFF events until this server has its response quota.
        events = []
        t = params.start_time
        while len(events) < params.n_responses_per_server:
            more = generate_onoff_schedule(
                rng,
                duration=1.0,
                start_time=t,
                drain_rate_bps=params.bandwidth_bps,
            )
            events.extend(more)
            t += 1.0
        events = events[: params.n_responses_per_server]
        sizes_by_responder.append([e.size_bytes for e in events])
        responders.append(ScheduledResponder(sim, src, events).start())

    def all_done() -> bool:
        return all(
            len(r.completed) == params.n_responses_per_server for r in responders
        )

    run_until(sim, all_done, params.deadline, step=0.5)

    all_times: list[float] = []
    band_times: list[float] = []
    lo, hi = params.scatter_band_bytes
    for responder, sizes in zip(responders, sizes_by_responder):
        for message, size in zip(responder.messages, sizes):
            if message.finish_time is None:
                continue
            ct = message.completion_time
            all_times.append(ct)
            if lo <= size <= hi:
                band_times.append(ct)
    if not all_times:
        raise RuntimeError("no responses completed; raise the deadline")
    under = sum(1 for t in all_times if t < params.tail_threshold) / len(all_times)
    band_under = (
        sum(1 for t in band_times if t < params.tail_threshold) / len(band_times)
        if band_times
        else 1.0
    )
    return WebServiceResult(
        protocol=params.protocol,
        all_times=all_times,
        band_times=band_times,
        band_max=max(band_times) if band_times else 0.0,
        band_fraction_under_threshold=band_under,
        p99=percentile(all_times, 99),
        fraction_under_threshold=under,
        arct=act(all_times),
        timeouts=connections.total_timeouts,
    )


@register
class ArctExperiment(Experiment):
    """Fig. 13(a): one independent simulation per mean response size."""

    id = "fig13a"
    title = "Fig. 13(a) ARCT vs mean response size"
    params_cls = ArctParams

    def select_protocols(self, protocols: Sequence[str]) -> list[str]:
        # The testbed comparison is CUBIC (the Linux default) vs TRIM;
        # ECN protocols are out of scope for Fig. 13(a).
        selected = [p for p in protocols if p not in ("dctcp", "l2dct")]
        if selected == ["reno", "trim"]:
            selected = ["cubic", "trim"]
        return selected

    def points(self, params: ArctParams) -> list[Point]:
        return [
            Point(f"size{m}", {"mean_size": m}) for m in params.mean_sizes_bytes
        ]

    def run_point(self, params: ArctParams, point: Point, seed: int) -> Any:
        return _run_arct_case(
            replace(params, seed=seed), point.kwargs["mean_size"]
        )

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        """One ArctCase per mean response size, in sweep order."""
        return [r for r in results if r is not None]

    def report(self, params: Any, payload: Any) -> None:
        MS = 1e3
        print(f"[{params.protocol}] Fig.13a ARCT vs mean response size:")
        for case in payload:
            print(f"  size={case.mean_size_bytes / 1024:7.0f}KB  "
                  f"ARCT={case.arct * MS:9.2f}ms  max={case.max_ct * MS:9.2f}ms  "
                  f"timeouts={case.timeouts}")


@register
class WebServiceExperiment(Experiment):
    """Fig. 13(b)-(e): a single web-service run per protocol."""

    id = "fig13be"
    title = "Fig. 13(b)-(e) web-service response times"
    params_cls = WebServiceParams

    def points(self, params: WebServiceParams) -> list[Point]:
        return [Point("run")]

    def run_point(self, params: WebServiceParams, point: Point, seed: int) -> Any:
        return run_web_service(replace(params, seed=seed))

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        return results[0]

    def report(self, params: Any, payload: Any) -> None:
        MS = 1e3
        r = payload
        print(f"[{params.protocol}] Fig.13b-e web service: "
              f"ARCT={r.arct * MS:7.2f}ms  p99={r.p99 * MS:7.2f}ms  "
              f"64-256KB max={r.band_max * MS:7.2f}ms  "
              f"<25ms: {r.fraction_under_threshold:.1%}  timeouts={r.timeouts}")
