"""Render experiment artifacts as Markdown reports.

``python -m repro.experiments.report results.json [-o report.md]``
turns an artifact written by the CLI's ``--output`` into a readable
report: scalar summaries as bullet lists, lists of case records as
tables, time series as compact summaries.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

from repro.experiments.store import load_results

__all__ = ["main", "render_markdown"]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    if isinstance(value, list):
        return f"[{len(value)} items]"
    if isinstance(value, dict):
        return f"{{{len(value)} keys}}"
    return str(value)


def _is_record_list(value: Any) -> bool:
    """A list of homogeneous dicts renders as a table."""
    return (
        isinstance(value, list)
        and len(value) > 0
        and all(isinstance(item, dict) for item in value)
        and len({frozenset(item.keys()) for item in value}) == 1
        and all(
            not isinstance(v, (dict, list)) for v in value[0].values()
        )
    )


def _is_time_series(value: Any) -> bool:
    return (
        isinstance(value, dict)
        and set(value.keys()) == {"name", "times", "values"}
    )


def _render_table(records: list[dict]) -> list[str]:
    columns = list(records[0].keys())
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for record in records:
        lines.append(
            "| " + " | ".join(_format_value(record[c]) for c in columns) + " |"
        )
    return lines


def _render_value(name: str, value: Any, depth: int) -> list[str]:
    heading = "#" * min(6, depth + 2)
    lines: list[str] = []
    if _is_record_list(value):
        lines.append(f"{heading} {name}")
        lines.append("")
        lines.extend(_render_table(value))
        lines.append("")
    elif _is_time_series(value):
        values = value["values"] or [0]
        finite = [v for v in values if isinstance(v, (int, float))]
        lines.append(
            f"- **{name}** (time series, {len(values)} samples): "
            f"min={_format_value(min(finite))}, "
            f"max={_format_value(max(finite))}, "
            f"mean={_format_value(sum(finite) / len(finite))}"
        )
    elif isinstance(value, dict):
        lines.append(f"{heading} {name}")
        lines.append("")
        scalars = {
            k: v for k, v in value.items()
            if not isinstance(v, (dict, list)) or _is_time_series(v)
        }
        nested = {k: v for k, v in value.items() if k not in scalars}
        for key, val in scalars.items():
            if _is_time_series(val):
                lines.extend(_render_value(key, val, depth + 1))
            else:
                lines.append(f"- **{key}**: {_format_value(val)}")
        if scalars:
            lines.append("")
        for key, val in nested.items():
            lines.extend(_render_value(key, val, depth + 1))
    elif isinstance(value, list):
        lines.append(f"- **{name}**: {[_format_value(v) for v in value]}")
    else:
        lines.append(f"- **{name}**: {_format_value(value)}")
    return lines


def render_markdown(document: dict) -> str:
    """Render a loaded artifact as a Markdown report."""
    lines = [
        f"# Experiment report: {document['experiment']}",
        "",
        f"- preset: `{document['preset']}`",
        f"- seed: `{document.get('seed')}`",
        f"- repro version: `{document.get('repro_version')}`",
        "",
    ]
    results = document["results"]
    if isinstance(results, dict):
        for name, value in results.items():
            lines.extend(_render_value(name, value, depth=0))
    else:
        lines.extend(_render_value("results", results, depth=0))
    return "\n".join(lines).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.report",
        description="Render a results artifact as Markdown.",
    )
    parser.add_argument("artifact", help="JSON file written with --output")
    parser.add_argument("-o", "--output", default=None,
                        help="write the report here instead of stdout")
    args = parser.parse_args(argv)
    report = render_markdown(load_results(args.artifact))
    if args.output:
        Path(args.output).write_text(report)
        print(f"report written to {args.output}")
    else:
        try:
            print(report)
        except BrokenPipeError:  # piped into head etc.
            return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
