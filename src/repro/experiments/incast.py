"""Incast goodput collapse — the phenomenon behind related work [13].

N synchronized senders each transfer one fixed block to a single
front-end (a storage-stripe read / partition-aggregation answer).  The
aggregate goodput of the *batch* — total bytes over the time the last
block lands — collapses for loss-based TCP once the fan-in exceeds what
the switch buffer absorbs: tail losses leave flows waiting out RTOs.
TCP-TRIM's delay back-off keeps buffer headroom, deferring the collapse.

This sweep is not a figure in the paper, but the paper's Fig. 5/7
impairments are incast in miniature; the sweep quantifies the same
mechanism the way the incast literature plots it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.experiments.base import Experiment, Point
from repro.experiments.registry import register
from repro.experiments.scenarios import (
    ConnectionSet,
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    run_until,
)
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.factory import default_config

__all__ = [
    "IncastCase",
    "IncastExperiment",
    "IncastParams",
    "run_incast",
    "run_incast_sweep",
]


@dataclass
class IncastParams:
    """Synchronized block transfer parameters."""

    protocol: str = "reno"
    sender_counts: Sequence[int] = (2, 4, 8, 16, 32, 48)
    block_bytes: int = 64 * 1024  # the classic 64 KB stripe unit
    bandwidth_bps: float = 1e9
    delay_s: float = 50e-6
    buffer_pkts: int = 64
    min_rto: float = 0.2
    start_time: float = 0.01
    deadline: float = 10.0

    @classmethod
    def paper(cls, protocol: str = "reno", **overrides: Any) -> "IncastParams":
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol: str = "reno", **overrides: Any) -> "IncastParams":
        defaults = dict(sender_counts=(2, 8, 24, 48))
        defaults.update(overrides)
        return cls(protocol=protocol, **defaults)


@dataclass
class IncastCase:
    """One fan-in point."""

    n_senders: int
    batch_completion: float  # start of burst to last block acked
    goodput_bps: float  # total payload over batch completion
    timeouts: int
    dropped_packets: int
    completed: int


def run_incast(params: IncastParams, n_senders: int) -> IncastCase:
    """One synchronized batch at the given fan-in."""
    if n_senders < 1:
        raise ValueError("need at least one sender")
    sim = Simulator()
    star = build_star(
        sim,
        n_senders,
        bandwidth_bps=params.bandwidth_bps,
        delay_s=params.delay_s,
        buffer_pkts=params.buffer_pkts,
        ecn_threshold_pkts=ecn_threshold_for(params.protocol, params.bandwidth_bps),
    )
    config = default_config(
        params.protocol, min_rto=params.min_rto, initial_rto=params.min_rto
    )
    connections = ConnectionSet(
        sim,
        params.protocol,
        config=config,
        capacity_pps=packets_per_second(params.bandwidth_bps),
        base_rtt=path_base_rtt([(params.delay_s, params.bandwidth_bps)] * 2),
    )
    sources = connections.connect_many(star.servers, star.frontend)
    messages = []
    for source in sources:
        sim.schedule_at(
            params.start_time,
            lambda s=source: messages.append(s.send_bytes(params.block_bytes)),
        )
    run_until(
        sim,
        lambda: len(messages) == n_senders
        and all(m.finish_time is not None for m in messages),
        params.deadline,
    )
    finished = [m.finish_time for m in messages if m.finish_time is not None]
    if not finished:
        raise RuntimeError("no block completed before the deadline")
    batch = max(finished) - params.start_time
    goodput = len(finished) * params.block_bytes * 8.0 / batch
    return IncastCase(
        n_senders=n_senders,
        batch_completion=batch,
        goodput_bps=goodput,
        timeouts=connections.total_timeouts,
        dropped_packets=star.network.total_dropped(),
        completed=len(finished),
    )


def run_incast_sweep(params: IncastParams) -> list[IncastCase]:
    """Goodput versus fan-in (the classic incast collapse curve)."""
    return [run_incast(params, n) for n in params.sender_counts]


@register
class IncastExperiment(Experiment):
    """Incast collapse: one independent simulation per fan-in."""

    id = "incast"
    title = "Incast goodput vs fan-in"
    params_cls = IncastParams

    def points(self, params: IncastParams) -> list[Point]:
        return [Point(f"n{n}", {"n_senders": n}) for n in params.sender_counts]

    def run_point(self, params: IncastParams, point: Point, seed: int) -> Any:
        return run_incast(params, point.kwargs["n_senders"])

    def reduce(self, params: Any, points: Sequence[Point], results: Sequence[Any]) -> Any:
        """One IncastCase per fan-in, in sweep order."""
        return [r for r in results if r is not None]

    def report(self, params: Any, payload: Any) -> None:
        MS = 1e3
        print(f"[{params.protocol}] incast goodput vs fan-in "
              f"({params.block_bytes // 1024} KB blocks):")
        for case in payload:
            print(f"  n={case.n_senders:3d}  "
                  f"goodput={case.goodput_bps / 1e6:7.1f} Mbps  "
                  f"batch={case.batch_completion * MS:8.1f} ms  "
                  f"timeouts={case.timeouts}")
