"""Experiment harnesses: one module per paper figure/table.

| Module                | Reproduces            |
|-----------------------|-----------------------|
| ``workload_figs``     | Fig. 1, Fig. 2        |
| ``motivation``        | Fig. 4, Fig. 6        |
| ``concurrency``       | Fig. 5, Fig. 7        |
| ``large_scale``       | Fig. 8                |
| ``properties``        | Fig. 9                |
| ``fairness``          | Fig. 10               |
| ``multihop``          | Fig. 11               |
| ``fattree``           | Fig. 12, Table I      |
| ``testbed``           | Fig. 13               |

Each parameter dataclass has ``paper()`` (full published parameters)
and ``quick()`` (reduced-scale, same structure) presets; benchmarks run
``quick`` and EXPERIMENTS.md records both.  ``python -m
repro.experiments <name>`` runs one from the command line.
"""

from repro.experiments.ablation import (
    AlphaCase,
    KSweepCase,
    ProbePolicyCase,
    run_alpha_sweep,
    run_k_sweep,
    run_probe_policies,
)
from repro.experiments.concurrency import (
    ConcurrencyCase,
    ConcurrencyParams,
    run_concurrency,
    run_concurrency_sweep,
)
from repro.experiments.fairness import FairnessParams, FairnessResult, run_fairness
from repro.experiments.incast import (
    IncastCase,
    IncastParams,
    run_incast,
    run_incast_sweep,
)
from repro.experiments.fattree import FatTreeParams, FatTreeResult, run_fattree
from repro.experiments.large_scale import (
    LargeScaleCase,
    LargeScaleParams,
    run_large_scale,
    run_large_scale_sweep,
)
from repro.experiments.motivation import (
    MotivationParams,
    MotivationResult,
    run_motivation,
)
from repro.experiments.multihop import MultiHopParams, MultiHopResult, run_multihop
from repro.experiments.properties import (
    PropertiesCase,
    PropertiesParams,
    run_properties_case,
    run_properties_sweep,
    run_queue_trace,
)
from repro.experiments.scenarios import (
    ConnectionSet,
    dctcp_threshold_pkts,
    ecn_threshold_for,
    packets_per_second,
    run_until,
)
from repro.experiments.testbed import (
    ArctCase,
    ArctParams,
    WebServiceParams,
    WebServiceResult,
    run_arct_sweep,
    run_web_service,
)
from repro.experiments.workload_figs import WorkloadFigures, characterize_workload

__all__ = [
    "AlphaCase",
    "ArctCase",
    "KSweepCase",
    "ProbePolicyCase",
    "run_alpha_sweep",
    "run_k_sweep",
    "run_probe_policies",
    "ArctParams",
    "ConcurrencyCase",
    "ConcurrencyParams",
    "ConnectionSet",
    "FairnessParams",
    "FairnessResult",
    "FatTreeParams",
    "FatTreeResult",
    "IncastCase",
    "IncastParams",
    "LargeScaleCase",
    "LargeScaleParams",
    "MotivationParams",
    "MotivationResult",
    "MultiHopParams",
    "MultiHopResult",
    "PropertiesCase",
    "PropertiesParams",
    "WebServiceParams",
    "WebServiceResult",
    "WorkloadFigures",
    "characterize_workload",
    "dctcp_threshold_pkts",
    "ecn_threshold_for",
    "packets_per_second",
    "run_arct_sweep",
    "run_concurrency",
    "run_concurrency_sweep",
    "run_fairness",
    "run_fattree",
    "run_incast",
    "run_incast_sweep",
    "run_large_scale",
    "run_large_scale_sweep",
    "run_motivation",
    "run_multihop",
    "run_properties_case",
    "run_properties_sweep",
    "run_queue_trace",
    "run_until",
    "run_web_service",
]
