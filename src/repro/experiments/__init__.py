"""Experiment harnesses: one module per paper figure/table.

| Module                | Reproduces            | Registry ids        |
|-----------------------|-----------------------|---------------------|
| ``workload_figs``     | Fig. 1, Fig. 2        | ``fig1``, ``fig2``  |
| ``motivation``        | Fig. 4, Fig. 6        | ``fig4``, ``fig6``  |
| ``concurrency``       | Fig. 5, Fig. 7        | ``fig5``, ``fig7``  |
| ``large_scale``       | Fig. 8                | ``fig8``            |
| ``properties``        | Fig. 9                | ``fig9``            |
| ``fairness``          | Fig. 10               | ``fig10``           |
| ``multihop``          | Fig. 11               | ``fig11``           |
| ``fattree``           | Fig. 12, Table I      | ``fig12``, ``table1``|
| ``testbed``           | Fig. 13               | ``fig13a``, ``fig13be``|
| ``ablation``          | design-choice studies | ``ablations``       |
| ``incast``            | incast collapse       | ``incast``          |

Every experiment implements the :class:`Experiment` protocol — a params
dataclass with ``paper()``/``quick()`` presets, a :meth:`points`
enumeration of independent simulation points, a per-point
:meth:`run_point`, and a :meth:`reduce` fold — and registers itself
under its figure ids::

    from repro.experiments import registry
    from repro.runner import SweepRunner

    experiment = registry.get("fig8")
    params = experiment.make_params("quick", protocol="trim")
    payload = SweepRunner(jobs=4).run(experiment, params, seed=1)

``python -m repro.experiments <id>`` is the command-line face of the
same machinery.  The old ad-hoc ``run_*`` entry points are still
importable from this package but deprecated; import them from their
defining modules (or, better, go through the registry).
"""

from __future__ import annotations

import warnings

from repro.experiments import registry
from repro.experiments.ablation import (
    AblationParams,
    AlphaCase,
    KSweepCase,
    ProbePolicyCase,
)
from repro.experiments.base import Experiment, Point
from repro.experiments.concurrency import ConcurrencyCase, ConcurrencyParams
from repro.experiments.fairness import FairnessParams, FairnessResult
from repro.experiments.fattree import FatTreeParams, FatTreeResult
from repro.experiments.incast import IncastCase, IncastParams
from repro.experiments.large_scale import LargeScaleCase, LargeScaleParams
from repro.experiments.motivation import MotivationParams, MotivationResult
from repro.experiments.multihop import MultiHopParams, MultiHopResult
from repro.experiments.properties import PropertiesCase, PropertiesParams
from repro.experiments.scenarios import (
    ConnectionSet,
    dctcp_threshold_pkts,
    ecn_threshold_for,
    packets_per_second,
    run_until,
)
from repro.experiments.testbed import (
    ArctCase,
    ArctParams,
    WebServiceParams,
    WebServiceResult,
)
from repro.experiments.workload_figs import WorkloadFigures, WorkloadParams

__all__ = [
    "AblationParams",
    "AlphaCase",
    "ArctCase",
    "ArctParams",
    "ConcurrencyCase",
    "ConcurrencyParams",
    "ConnectionSet",
    "Experiment",
    "FairnessParams",
    "FairnessResult",
    "FatTreeParams",
    "FatTreeResult",
    "IncastCase",
    "IncastParams",
    "KSweepCase",
    "LargeScaleCase",
    "LargeScaleParams",
    "MotivationParams",
    "MotivationResult",
    "MultiHopParams",
    "MultiHopResult",
    "Point",
    "ProbePolicyCase",
    "PropertiesCase",
    "PropertiesParams",
    "WebServiceParams",
    "WebServiceResult",
    "WorkloadFigures",
    "WorkloadParams",
    "characterize_workload",
    "dctcp_threshold_pkts",
    "ecn_threshold_for",
    "packets_per_second",
    "registry",
    "run_arct_sweep",
    "run_alpha_sweep",
    "run_concurrency",
    "run_concurrency_sweep",
    "run_fairness",
    "run_fattree",
    "run_incast",
    "run_incast_sweep",
    "run_k_sweep",
    "run_large_scale",
    "run_large_scale_sweep",
    "run_motivation",
    "run_multihop",
    "run_probe_policies",
    "run_properties_case",
    "run_properties_sweep",
    "run_queue_trace",
    "run_until",
    "run_web_service",
]

#: deprecated top-level names → (defining module, registry id to prefer)
_DEPRECATED = {
    "characterize_workload": ("repro.experiments.workload_figs", "fig1"),
    "run_alpha_sweep": ("repro.experiments.ablation", "ablations"),
    "run_arct_sweep": ("repro.experiments.testbed", "fig13a"),
    "run_concurrency": ("repro.experiments.concurrency", "fig5"),
    "run_concurrency_sweep": ("repro.experiments.concurrency", "fig5"),
    "run_fairness": ("repro.experiments.fairness", "fig10"),
    "run_fattree": ("repro.experiments.fattree", "fig12"),
    "run_incast": ("repro.experiments.incast", "incast"),
    "run_incast_sweep": ("repro.experiments.incast", "incast"),
    "run_k_sweep": ("repro.experiments.ablation", "ablations"),
    "run_large_scale": ("repro.experiments.large_scale", "fig8"),
    "run_large_scale_sweep": ("repro.experiments.large_scale", "fig8"),
    "run_motivation": ("repro.experiments.motivation", "fig4"),
    "run_multihop": ("repro.experiments.multihop", "fig11"),
    "run_probe_policies": ("repro.experiments.ablation", "ablations"),
    "run_properties_case": ("repro.experiments.properties", "fig9"),
    "run_properties_sweep": ("repro.experiments.properties", "fig9"),
    "run_queue_trace": ("repro.experiments.properties", "fig9"),
    "run_web_service": ("repro.experiments.testbed", "fig13be"),
}


def __getattr__(name: str) -> object:
    """PEP 562 shim: the old ``run_*`` entry points, with a warning.

    The functions still exist on their defining modules; what is
    deprecated is reaching them through the package root instead of the
    registry/runner API.
    """
    try:
        module_name, experiment_id = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"importing {name!r} from {__name__!r} is deprecated; use "
        f"registry.get({experiment_id!r}) with repro.runner.SweepRunner, "
        f"or import it from {module_name!r}",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), name)
