"""simlint framework: findings, the rule registry, and the file walker.

A *rule* is a class with an ``id`` (``SIM001``...), a one-line
``summary`` of the invariant it protects, a ``fixit`` hint shown with
every finding, and a :meth:`Rule.check` generator that yields
:class:`Finding` records for one parsed module.  Rules register
themselves with the :func:`register_rule` decorator; the CLI and the
test suite discover them through :func:`all_rules`.

Suppression is per line: a trailing ``# simlint: disable=SIM003``
comment silences the named rule(s) on that physical line (comma-
separate several ids, or use ``disable=all``).  Suppressions are meant
to be rare and always paired with a justification comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "dotted_name",
    "lint_paths",
    "lint_source",
    "register_rule",
]

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    fixit: str = field(compare=False, default="")

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.fixit:
            text += f"\n    fix: {self.fixit}"
        return text


class ModuleContext:
    """A parsed module plus everything rules need to inspect it."""

    def __init__(self, path: str, source: str) -> None:
        #: posix-normalized path; rules match roles on it ("/tcp/"...)
        self.path = PurePosixPath(path).as_posix()
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self._suppressed = self._parse_suppressions()
        #: local name -> fully dotted module/object it was imported as,
        #: e.g. ``np`` -> ``numpy``, ``datetime`` -> ``datetime.datetime``
        #: for ``from datetime import datetime``.
        self.import_aliases = self._collect_import_aliases()

    # ------------------------------------------------------------------
    def _parse_suppressions(self) -> dict[int, frozenset[str]]:
        table: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            ids = frozenset(
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            )
            table[lineno] = table.get(lineno, frozenset()) | ids
            # A comment-only suppression line covers the statement that
            # starts on the next line (the justified-comment idiom).
            if line.lstrip().startswith("#"):
                table[lineno + 1] = table.get(lineno + 1, frozenset()) | ids
        return table

    def _collect_import_aliases(self) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".")[0]
                    target = name.name if name.asname else name.name.split(".")[0]
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for name in node.names:
                    if name.name == "*":
                        continue
                    local = name.asname or name.name
                    aliases[local] = f"{node.module}.{name.name}"
        return aliases

    # ------------------------------------------------------------------
    def suppressed(self, lineno: int, rule_id: str) -> bool:
        ids = self._suppressed.get(lineno)
        if ids is None:
            return False
        return rule_id.upper() in ids or "ALL" in ids

    def resolve(self, node: ast.expr) -> str:
        """The fully dotted name behind an expression, import-resolved.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when the module did ``import numpy
        as np``; unresolvable expressions give ``""``.
        """
        chain = dotted_name(node)
        if not chain:
            return ""
        root, _, rest = chain.partition(".")
        resolved_root = self.import_aliases.get(root, root)
        return f"{resolved_root}.{rest}" if rest else resolved_root

    def finding(
        self, node: ast.AST, rule: "Rule", message: str
    ) -> Iterator[Finding]:
        """Yield a finding for ``node`` unless its line suppresses it."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if not self.suppressed(lineno, rule.id):
            yield Finding(self.path, lineno, col, rule.id, message, rule.fixit)


def dotted_name(node: ast.expr) -> str:
    """``a.b.c`` for a Name/Attribute chain; ``""`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class Rule:
    """Base class for simlint rules.  Subclass and :func:`register_rule`."""

    id: str = ""
    summary: str = ""
    fixit: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Rule {self.id}: {self.summary}>"


_RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``cls`` to the global rule registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    _RULES[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    return [_RULES[rule_id]() for rule_id in sorted(_RULES)]


def lint_source(
    source: str, path: str = "<string>", select: Sequence[str] | None = None
) -> list[Finding]:
    """Lint one module given as a string; the unit the tests drive."""
    module = ModuleContext(path, source)
    findings: list[Finding] = []
    for rule in all_rules():
        if select is not None and rule.id not in select:
            continue
        findings.extend(rule.check(module))
    return sorted(findings)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield path


def lint_paths(
    paths: Iterable[str], select: Sequence[str] | None = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(
            lint_source(file.read_text(encoding="utf-8"), str(file), select)
        )
    return sorted(findings)
