"""simlint framework: findings, the rule registry, and the file walker.

A *rule* is a class with an ``id`` (``SIM001``...), a one-line
``summary`` of the invariant it protects, a ``fixit`` hint shown with
every finding, and a :meth:`Rule.check` generator that yields
:class:`Finding` records for one parsed module.  Rules register
themselves with the :func:`register_rule` decorator; the CLI and the
test suite discover them through :func:`all_rules`.

Per-file rules subclass :class:`Rule`; rules that need to see the whole
program (import graph, cross-module taint) subclass
:class:`ProjectRule` and receive a
:class:`~repro.lint.project.ProjectContext` alongside the module under
analysis.  Either way a rule reports findings *per module*, which is
what makes incremental re-linting (see :mod:`repro.lint.cache`) sound:
a module's findings depend only on the module itself plus the project
summaries of the modules it imports.

Suppression is per line: a trailing ``# simlint: disable=SIM003``
comment silences the named rule(s) on that physical line (comma-
separate several ids, or use ``disable=all``).  Suppressions must be
justified — extra comment text on the directive line or a comment line
directly above — or SIM016 flags the directive itself.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ProjectContext

__all__ = [
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "SuppressionDirective",
    "all_rules",
    "dotted_name",
    "lint_paths",
    "lint_source",
    "register_rule",
]

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    fixit: str = field(compare=False, default="")

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.fixit:
            text += f"\n    fix: {self.fixit}"
        return text

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping (the cache and ``--format json`` schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "message": self.message,
            "fixit": self.fixit,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            rule_id=str(data["rule_id"]),
            message=str(data["message"]),
            fixit=str(data.get("fixit", "")),
        )


@dataclass(frozen=True)
class SuppressionDirective:
    """One ``# simlint: disable=...`` comment found in a module."""

    line: int
    ids: frozenset[str]
    #: True when the directive carries a justification: extra comment
    #: text on its own line, or a comment line directly above it.
    justified: bool


class ModuleContext:
    """A parsed module plus everything rules need to inspect it."""

    def __init__(self, path: str, source: str, module_name: str = "") -> None:
        #: posix-normalized path; rules match roles on it ("/tcp/"...)
        self.path = PurePosixPath(path).as_posix()
        #: dotted module name when known ("repro.tcp.base"); the
        #: project builder fills it in, standalone lint leaves it "".
        self.module_name = module_name
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        #: real (tokenizer-verified) suppression directives, in line order.
        self.directives: list[SuppressionDirective] = []
        self._suppressed = self._parse_suppressions()
        #: local name -> fully dotted module/object it was imported as,
        #: e.g. ``np`` -> ``numpy``, ``datetime`` -> ``datetime.datetime``
        #: for ``from datetime import datetime``.
        self.import_aliases = self._collect_import_aliases()

    # ------------------------------------------------------------------
    def _comment_tokens(self) -> list[tuple[int, int, str]]:
        """(line, col, text) for every comment token in the module.

        Tokenizing (rather than regex over raw lines) keeps directives
        inside string literals and docstrings from acting as — or being
        policed as — real suppressions.
        """
        comments: list[tuple[int, int, str]] = []
        try:
            for tok in tokenize.generate_tokens(io.StringIO(self.source).readline):
                if tok.type == tokenize.COMMENT:
                    comments.append((tok.start[0], tok.start[1], tok.string))
        except tokenize.TokenError:  # pragma: no cover - unfinishable input
            pass
        return comments

    def _parse_suppressions(self) -> dict[int, frozenset[str]]:
        comment_lines: dict[int, tuple[int, str]] = {}
        for lineno, col, text in self._comment_tokens():
            comment_lines[lineno] = (col, text)

        table: dict[int, frozenset[str]] = {}
        for lineno, (col, text) in sorted(comment_lines.items()):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            ids = frozenset(
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            )
            own_line = self.lines[lineno - 1].lstrip().startswith("#")
            # Justification: comment text beyond the directive itself on
            # the directive's line, or a (non-directive) comment line
            # directly above.
            extra = (text[: match.start()] + text[match.end():]).strip("# \t")
            above = comment_lines.get(lineno - 1)
            justified = bool(extra) or (
                above is not None and not _SUPPRESS_RE.search(above[1])
            )
            self.directives.append(SuppressionDirective(lineno, ids, justified))
            table[lineno] = table.get(lineno, frozenset()) | ids
            # A comment-only suppression line covers the statement that
            # starts on the next line (the justified-comment idiom).
            if own_line:
                table[lineno + 1] = table.get(lineno + 1, frozenset()) | ids
        return table

    def _collect_import_aliases(self) -> dict[str, str]:
        aliases: dict[str, str] = {}
        package = self.module_name.rpartition(".")[0] if self.module_name else ""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".")[0]
                    target = name.name if name.asname else name.name.split(".")[0]
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level > 0:
                    # Resolve `from .sibling import x` against our package.
                    parts = self.module_name.split(".") if self.module_name else []
                    if len(parts) < node.level:
                        continue
                    anchor = ".".join(parts[: len(parts) - node.level]) or package
                    base = f"{anchor}.{node.module}" if node.module else anchor
                if not base:
                    continue
                for name in node.names:
                    if name.name == "*":
                        continue
                    local = name.asname or name.name
                    aliases[local] = f"{base}.{name.name}"
        return aliases

    # ------------------------------------------------------------------
    def suppressed(self, lineno: int, rule_id: str) -> bool:
        ids = self._suppressed.get(lineno)
        if ids is None:
            return False
        return rule_id.upper() in ids or "ALL" in ids

    def resolve(self, node: ast.expr) -> str:
        """The fully dotted name behind an expression, import-resolved.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when the module did ``import numpy
        as np``; unresolvable expressions give ``""``.
        """
        chain = dotted_name(node)
        if not chain:
            return ""
        return self.resolve_dotted(chain)

    def resolve_dotted(self, chain: str) -> str:
        """Import-resolve an already-extracted dotted name string."""
        if not chain:
            return ""
        root, _, rest = chain.partition(".")
        resolved_root = self.import_aliases.get(root, root)
        return f"{resolved_root}.{rest}" if rest else resolved_root

    def finding(
        self, node: ast.AST, rule: "Rule", message: str
    ) -> Iterator[Finding]:
        """Yield a finding for ``node`` unless its line suppresses it."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if not self.suppressed(lineno, rule.id):
            yield Finding(self.path, lineno, col, rule.id, message, rule.fixit)


def dotted_name(node: ast.expr) -> str:
    """``a.b.c`` for a Name/Attribute chain; ``""`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class Rule:
    """Base class for per-file simlint rules."""

    id: str = ""
    summary: str = ""
    fixit: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Rule {self.id}: {self.summary}>"


class ProjectRule(Rule):
    """A rule that needs whole-program context.

    Subclasses implement :meth:`check_module`; the engine calls it once
    per module with the shared :class:`ProjectContext`, so findings stay
    attributable to a single module (the incremental-cache unit).
    """

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        from repro.lint.project import ProjectContext

        project = ProjectContext.for_single_module(module)
        return self.check_module(project, module)

    def check_module(
        self, project: "ProjectContext", module: ModuleContext
    ) -> Iterator[Finding]:
        raise NotImplementedError


_RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``cls`` to the global rule registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    _RULES[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    _load_rule_modules()
    return [_RULES[rule_id]() for rule_id in sorted(_RULES)]


def _load_rule_modules() -> None:
    """Import the rule modules (idempotent; they register on import)."""
    from repro.lint import rules, xrules  # noqa: F401  (side effect)


def _selected(rule: Rule, select: Sequence[str] | None) -> bool:
    return select is None or rule.id in select


def lint_module_in_project(
    project: "ProjectContext",
    module: ModuleContext,
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Run every rule against one module of a parsed project.

    This is the incremental unit: the cache replays its output for
    modules whose content *and* whose imported modules are unchanged.
    """
    findings: list[Finding] = []
    for rule in all_rules():
        if not _selected(rule, select):
            continue
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_module(project, module))
        else:
            findings.extend(rule.check(module))
    return sorted(findings)


def lint_source(
    source: str, path: str = "<string>", select: Sequence[str] | None = None
) -> list[Finding]:
    """Lint one module given as a string; the unit the tests drive.

    Cross-module rules see a single-module project, so their purely
    local checks still apply (and their fixtures stay one-file).
    """
    from repro.lint.project import ProjectContext

    module = ModuleContext(path, source)
    project = ProjectContext.for_single_module(module)
    return lint_module_in_project(project, module, select)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield path


def lint_paths(
    paths: Iterable[str], select: Sequence[str] | None = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` as one program.

    All files are parsed into a single :class:`ProjectContext` first, so
    cross-module rules can follow imports between them.
    """
    from repro.lint.project import ProjectContext

    project = ProjectContext.from_files(iter_python_files(paths))
    findings: list[Finding] = []
    for info in project.modules_in_path_order():
        findings.extend(lint_module_in_project(project, info.context, select))
    return sorted(findings)
