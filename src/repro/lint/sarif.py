"""SARIF 2.1.0 emission for simlint findings.

One run object, tool driver ``simlint``, one ``result`` per finding
with a ``physicalLocation`` region, and per-rule metadata
(``shortDescription`` = the rule summary, ``help`` = the fixit hint) so
GitHub code scanning renders the same guidance the text output prints.
Paths are emitted repo-relative with forward slashes, as the SARIF spec
expects of ``artifactLocation.uri``.
"""

from __future__ import annotations

import json
from pathlib import PurePosixPath
from typing import Iterable, Sequence

from repro.lint.core import Finding, Rule, all_rules

__all__ = ["SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule: Rule) -> dict[str, object]:
    descriptor: dict[str, object] = {
        "id": rule.id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": "error"},
    }
    if rule.fixit:
        descriptor["help"] = {"text": rule.fixit}
    return descriptor


def _relative_uri(path: str) -> str:
    pure = PurePosixPath(path)
    if pure.is_absolute():
        # Anchor at the repo-conventional `src/` root when present so
        # URIs stay stable across checkouts.
        parts = pure.parts
        if "src" in parts:
            pure = PurePosixPath(*parts[parts.index("src"):])
        else:
            pure = PurePosixPath(pure.name)
    return pure.as_posix()


def to_sarif(
    findings: Iterable[Finding], rules: Sequence[Rule] | None = None
) -> dict[str, object]:
    """A SARIF 2.1.0 log dict for ``findings``."""
    rule_list = list(rules) if rules is not None else all_rules()
    results = [
        {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(finding.path),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            # SARIF columns are 1-based; ast's are 0-based.
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in sorted(findings)
    ]
    return {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": (
                            "https://example.invalid/repro/simlint"
                        ),
                        "rules": [_rule_descriptor(r) for r in rule_list],
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Iterable[Finding], rules: Sequence[Rule] | None = None
) -> str:
    """``to_sarif`` serialized with stable key order."""
    return json.dumps(to_sarif(findings, rules), indent=2, sort_keys=True)
