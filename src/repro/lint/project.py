"""Whole-program context for cross-module simlint rules.

A :class:`ProjectContext` parses every module of the tree under
analysis exactly once and derives three things the SIM011+ rule family
needs:

* an **import graph** between project modules (absolute and relative
  imports resolved to dotted module names), plus its reverse closure —
  the set of modules whose analysis can change when a given module
  changes, which is also the incremental cache's re-lint unit;
* **per-module symbol tables**: top-level functions, classes, and
  class methods by qualified name, so a dotted call site in one module
  can be resolved to the function definition in another;
* **taint summaries** computed to a fixpoint over the call graph —
  "does this function return an unseeded RNG / a wall-clock-derived
  value / an unpicklable object?" — so rules can follow a value through
  helper returns and keyword forwarding instead of only flagging
  constructor call sites.

The context is deliberately syntactic: it never imports analyzed code.
Resolution is conservative — when a receiver or callee cannot be
resolved, no taint is assumed (rules only report *provable* violations,
the property that keeps the shipped tree lintable without noise).
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePosixPath
from typing import Callable, Iterable, Iterator, Optional

from repro.lint.core import ModuleContext, dotted_name

__all__ = ["FunctionInfo", "ModuleInfo", "ProjectContext", "TaintSummary"]


class FunctionInfo:
    """One function or method definition inside a project module."""

    __slots__ = ("module", "qualname", "node", "is_method")

    def __init__(
        self,
        module: "ModuleInfo",
        qualname: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        is_method: bool,
    ) -> None:
        self.module = module
        self.qualname = qualname  # e.g. "helpers.fresh_rng" / "Cls.method"
        self.node = node
        self.is_method = is_method

    @property
    def full_name(self) -> str:
        """Project-unique name: ``<module>.<qualname>``."""
        return f"{self.module.name}.{self.qualname}"


class ModuleInfo:
    """A parsed project module plus its symbol table and imports."""

    __slots__ = ("name", "path", "context", "imports", "functions", "classes")

    def __init__(self, name: str, context: ModuleContext) -> None:
        self.name = name
        self.path = context.path
        self.context = context
        #: dotted names of *project* modules this module imports.
        self.imports: set[str] = set()
        #: qualname -> FunctionInfo for top-level functions and methods.
        self.functions: dict[str, FunctionInfo] = {}
        #: class name -> ClassDef for top-level classes.
        self.classes: dict[str, ast.ClassDef] = {}
        self._index_symbols()

    def _index_symbols(self) -> None:
        for node in self.context.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FunctionInfo(
                    self, node.name, node, is_method=False
                )
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{node.name}.{item.name}"
                        self.functions[qual] = FunctionInfo(
                            self, qual, item, is_method=True
                        )


class TaintSummary:
    """Fixpoint result of one taint family over the whole project.

    ``tainted_functions`` maps the full name of every function that
    *returns* a tainted value to a short human reason (used in finding
    messages: "via helpers.fresh_rng() [unseeded random.Random()]").
    """

    def __init__(self) -> None:
        self.tainted_functions: dict[str, str] = {}

    def reason(self, full_name: str) -> str:
        return self.tainted_functions.get(full_name, "")


def _module_name_for(path: Path) -> str:
    """Infer the dotted module name of ``path`` from package layout.

    Walks up while ``__init__.py`` exists, so ``src/repro/tcp/base.py``
    maps to ``repro.tcp.base`` regardless of the current directory.
    Files outside any package are their bare stem.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:  # a bare __init__.py outside any package
        parts = [path.stem]
    return ".".join(parts)


class ProjectContext:
    """Every module of the tree under analysis, parsed once."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.by_path: dict[str, ModuleInfo] = {
            info.path: info for info in modules.values()
        }
        for info in modules.values():
            info.imports = self._project_imports(info)
        self._summaries: dict[str, TaintSummary] = {}
        self._subclass_cache: dict[str, set[str]] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def from_files(cls, files: Iterable[Path]) -> "ProjectContext":
        modules: dict[str, ModuleInfo] = {}
        for file in files:
            path = Path(file)
            try:
                source = path.read_text(encoding="utf-8")
            except OSError:
                continue
            name = _module_name_for(path)
            context = ModuleContext(str(path), source, module_name=name)
            modules[name] = ModuleInfo(name, context)
        return cls(modules)

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "ProjectContext":
        """Build from in-memory ``{dotted_name: source}`` (tests)."""
        modules: dict[str, ModuleInfo] = {}
        for name, source in sources.items():
            path = name.replace(".", "/") + ".py"
            context = ModuleContext(path, source, module_name=name)
            modules[name] = ModuleInfo(name, context)
        return cls(modules)

    @classmethod
    def for_single_module(cls, module: ModuleContext) -> "ProjectContext":
        """A one-module project (standalone ``lint_source`` calls)."""
        name = module.module_name or _guess_name_from_path(module.path)
        module.module_name = name
        return cls({name: ModuleInfo(name, module)})

    # -- the import graph -----------------------------------------------
    def _project_imports(self, info: ModuleInfo) -> set[str]:
        """Project modules ``info`` imports (directly)."""
        imported: set[str] = set()

        def note(dotted: str) -> None:
            # "repro.tcp.base.TcpSink" may name a module or an object in
            # a module; record the longest project-module prefix.
            parts = dotted.split(".")
            for end in range(len(parts), 0, -1):
                candidate = ".".join(parts[:end])
                if candidate in self.modules and candidate != info.name:
                    imported.add(candidate)
                    return

        for node in ast.walk(info.context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    note(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level > 0:
                    parts = info.name.split(".")
                    if len(parts) < node.level:
                        continue
                    anchor = ".".join(parts[: len(parts) - node.level])
                    base = f"{anchor}.{node.module}" if node.module else anchor
                if not base:
                    continue
                note(base)
                for alias in node.names:
                    if alias.name != "*":
                        note(f"{base}.{alias.name}")
        return imported

    def reverse_closure(self, names: Iterable[str]) -> set[str]:
        """``names`` plus every project module that (transitively)
        imports one of them — the set whose findings may change when
        ``names`` change."""
        importers: dict[str, set[str]] = {name: set() for name in self.modules}
        for info in self.modules.values():
            for dep in info.imports:
                if dep in importers:
                    importers[dep].add(info.name)
        result: set[str] = set()
        frontier = [name for name in names if name in self.modules]
        while frontier:
            name = frontier.pop()
            if name in result:
                continue
            result.add(name)
            frontier.extend(importers.get(name, ()))
        return result

    def modules_in_path_order(self) -> list[ModuleInfo]:
        return sorted(self.modules.values(), key=lambda info: info.path)

    # -- symbol resolution ----------------------------------------------
    def resolve_function(
        self, module: ModuleContext, call: ast.Call
    ) -> Optional[FunctionInfo]:
        """The project function a call site invokes, if resolvable.

        Handles plain names (``fresh_rng()``), imported names
        (``helpers.fresh_rng()`` / ``from helpers import fresh_rng``),
        and same-module ``self.method()`` calls.
        """
        chain = dotted_name(call.func)
        if not chain:
            return None
        info = self.modules.get(module.module_name)
        # self.method() -> a method on a class in this module.  We do not
        # track the receiver's class, so only match when exactly one
        # class in the module defines the method (conservative).
        if chain.startswith("self.") and info is not None:
            method = chain.split(".", 1)[1]
            if "." not in method:
                hits = [
                    fn
                    for qual, fn in info.functions.items()
                    if fn.is_method and qual.endswith(f".{method}")
                ]
                if len(hits) == 1:
                    return hits[0]
            return None
        resolved = module.resolve_dotted(chain)
        return self.lookup(resolved) or (
            self.lookup(f"{module.module_name}.{chain}") if info else None
        )

    def lookup(self, full_name: str) -> Optional[FunctionInfo]:
        """FunctionInfo for ``module.qualname`` if it names one."""
        if not full_name:
            return None
        parts = full_name.split(".")
        for end in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:end])
            info = self.modules.get(mod_name)
            if info is None:
                continue
            qual = ".".join(parts[end:])
            return info.functions.get(qual)
        return None

    # -- class hierarchy -------------------------------------------------
    def subclasses_of(self, base_full_name: str) -> set[str]:
        """Full names of project classes transitively deriving from
        ``base_full_name`` (e.g. ``repro.experiments.base.Experiment``).

        The external base itself (outside the project) participates by
        name, so a project that merely *imports* Experiment still
        resolves its subclasses.
        """
        cached = self._subclass_cache.get(base_full_name)
        if cached is not None:
            return cached
        known = {base_full_name}
        changed = True
        while changed:
            changed = False
            for info in self.modules.values():
                for cls_name, node in info.classes.items():
                    full = f"{info.name}.{cls_name}"
                    if full in known:
                        continue
                    for base in node.bases:
                        resolved = info.context.resolve(base)
                        if not resolved:
                            continue
                        if resolved in known or f"{info.name}.{resolved}" in known:
                            known.add(full)
                            changed = True
                            break
        known.discard(base_full_name)
        self._subclass_cache[base_full_name] = known
        return known

    # -- taint summaries --------------------------------------------------
    def taint_summary(
        self,
        key: str,
        seed: Callable[[ModuleContext, ast.Call, str], str],
        expr_seed: Optional[Callable[[ast.expr], str]] = None,
        local_defs_reason: str = "",
    ) -> TaintSummary:
        """Fixpoint "returns-tainted" summary for one taint family.

        ``seed(module, call, resolved_name)`` returns a non-empty reason
        string when the call expression itself *originates* taint (e.g.
        "unseeded random.Random()"); the fixpoint then propagates taint
        through local assignments, returns, and project-internal calls.
        ``expr_seed`` lets a family taint non-call expressions (SIM013's
        lambdas); ``local_defs_reason`` taints references to functions
        defined inside the analyzed function (closures).  Summaries are
        memoized per project under ``key``.
        """
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        summary = TaintSummary()
        call_reason = self.call_reason_with(seed, summary)

        changed = True
        while changed:
            changed = False
            for info in self.modules.values():
                for fn in info.functions.values():
                    if fn.full_name in summary.tainted_functions:
                        continue
                    reason = _returns_tainted(
                        info.context,
                        fn.node,
                        call_reason,
                        expr_seed=expr_seed,
                        local_defs_reason=local_defs_reason,
                    )
                    if reason:
                        summary.tainted_functions[fn.full_name] = reason
                        changed = True
        self._summaries[key] = summary
        return summary

    def call_reason_with(
        self,
        seed: Callable[[ModuleContext, ast.Call, str], str],
        summary: TaintSummary,
    ) -> Callable[[ModuleContext, ast.Call], str]:
        """A call-site taint oracle: the family's own seeds plus the
        project summary (so calls through helpers report their origin).
        """

        def call_reason(module: ModuleContext, call: ast.Call) -> str:
            resolved = module.resolve(call.func)
            reason = seed(module, call, resolved)
            if reason:
                return reason
            target = self.resolve_function(module, call)
            if target is not None:
                inner = summary.reason(target.full_name)
                if inner:
                    return f"via {target.full_name}() [{inner}]"
            return ""

        return call_reason


def _guess_name_from_path(path: str) -> str:
    pure = PurePosixPath(path)
    parts = [p for p in pure.with_suffix("").parts if p not in ("src", "/")]
    # Keep at most the trailing package-ish segments; a bare fixture
    # path like "repro/tcp/state.py" becomes "repro.tcp.state".
    return ".".join(parts) if parts else "<module>"


# ---------------------------------------------------------------------------
# Local (intra-function) taint propagation shared by the summary fixpoint
# and the rules' sink checks.
# ---------------------------------------------------------------------------


def local_tainted_names(
    module: ModuleContext,
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
    call_reason: Callable[[ModuleContext, ast.Call], str],
    expr_seed: Optional[Callable[[ast.expr], str]] = None,
    local_defs_reason: str = "",
) -> dict[str, str]:
    """Names bound (at any point in ``func``) to a tainted value.

    Statement-ordered single pass: assignments whose right-hand side is
    tainted (directly, through arithmetic, a conditional expression, or
    a call to a tainted function) taint their simple-name targets.
    With ``local_defs_reason``, names of functions/classes defined
    *inside a function scope* are tainted too (pickle cannot resolve
    their qualnames from a worker process).
    """
    tainted: dict[str, str] = {}
    in_function = not isinstance(func, ast.Module)

    for stmt in _statements_in_order(func.body):
        if (
            local_defs_reason
            and in_function
            and isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ):
            tainted[stmt.name] = f"{local_defs_reason} {stmt.name!r}"
            continue
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, ast.AugAssign):
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        reason = _expr_taint(value, module, tainted, call_reason, expr_seed)
        if not reason:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                tainted[target.id] = reason
    return tainted


def expr_taint_reason(
    node: ast.expr,
    module: ModuleContext,
    tainted_names: dict[str, str],
    call_reason: Callable[[ModuleContext, ast.Call], str],
    expr_seed: Optional[Callable[[ast.expr], str]] = None,
) -> str:
    """Public wrapper over :func:`_expr_taint` for rule sink checks."""
    return _expr_taint(node, module, tainted_names, call_reason, expr_seed)


def _expr_taint(
    node: ast.expr,
    module: ModuleContext,
    tainted: dict[str, str],
    call_reason: Callable[[ModuleContext, ast.Call], str],
    expr_seed: Optional[Callable[[ast.expr], str]] = None,
) -> str:
    if expr_seed is not None:
        seeded = expr_seed(node)
        if seeded:
            return seeded
    if isinstance(node, ast.Name):
        return tainted.get(node.id, "")
    if isinstance(node, ast.Call):
        reason = call_reason(module, node)
        if reason:
            return reason
        # keyword forwarding: f(rng=tainted) does not taint the call's
        # *result*; only the callee summary decides that.
        return ""
    if isinstance(node, ast.BinOp):
        return _expr_taint(
            node.left, module, tainted, call_reason, expr_seed
        ) or _expr_taint(node.right, module, tainted, call_reason, expr_seed)
    if isinstance(node, ast.UnaryOp):
        return _expr_taint(node.operand, module, tainted, call_reason, expr_seed)
    if isinstance(node, ast.IfExp):
        return _expr_taint(
            node.body, module, tainted, call_reason, expr_seed
        ) or _expr_taint(node.orelse, module, tainted, call_reason, expr_seed)
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for elt in node.elts:
            reason = _expr_taint(elt, module, tainted, call_reason, expr_seed)
            if reason:
                return reason
        return ""
    if isinstance(node, ast.Dict):
        for value in node.values:
            if value is None:
                continue
            reason = _expr_taint(value, module, tainted, call_reason, expr_seed)
            if reason:
                return reason
        return ""
    if isinstance(node, ast.NamedExpr):
        return _expr_taint(node.value, module, tainted, call_reason, expr_seed)
    if isinstance(node, ast.Starred):
        return _expr_taint(node.value, module, tainted, call_reason, expr_seed)
    return ""


def _returns_tainted(
    module: ModuleContext,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    call_reason: Callable[[ModuleContext, ast.Call], str],
    expr_seed: Optional[Callable[[ast.expr], str]] = None,
    local_defs_reason: str = "",
) -> str:
    """Reason when any ``return`` in ``func`` yields a tainted value."""
    tainted = local_tainted_names(
        module, func, call_reason, expr_seed, local_defs_reason
    )
    for stmt in _statements_in_order(func.body):
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            reason = _expr_taint(
                stmt.value, module, tainted, call_reason, expr_seed
            )
            if reason:
                return reason
    return ""


def _statements_in_order(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement in ``body``, recursing into compound statements
    but *not* into nested function/class definitions (their locals are
    a different scope)."""
    for stmt in body:
        yield stmt
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for field_body in (
            getattr(stmt, "body", None),
            getattr(stmt, "orelse", None),
            getattr(stmt, "finalbody", None),
        ):
            if isinstance(field_body, list):
                yield from _statements_in_order(
                    [s for s in field_body if isinstance(s, ast.stmt)]
                )
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _statements_in_order(handler.body)
