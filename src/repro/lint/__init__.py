"""simlint — AST-based simulator-correctness linter.

Run it with ``python -m repro.lint [paths...]`` (defaults to the
installed ``repro`` package).  Rules enforce the invariants every
reproduced figure rests on: deterministic replay (SIM001/SIM002),
precision-safe time handling (SIM003), state isolation between sweep
points (SIM004/SIM005), kernel discipline (SIM006), and the Experiment
sweep contract (SIM007).  Suppress a deliberate violation with a
``# simlint: disable=SIM00x`` comment plus a justification.

The runtime complement — packet-conservation and protocol-state checks
while a simulation executes — lives in :mod:`repro.sim.invariants` and
is enabled with ``Simulator(check_invariants=True)`` or the CLI's
``--check-invariants`` flag.
"""

from repro.lint import rules as _rules  # registers the rule set on import
from repro.lint.core import (
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register_rule,
)

del _rules

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register_rule",
]
