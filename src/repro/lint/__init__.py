"""simlint — whole-program simulator-correctness linter.

Run it with ``python -m repro.lint [paths...]`` (defaults to the
installed ``repro`` package).  Per-file rules enforce the invariants
every reproduced figure rests on: deterministic replay (SIM001/SIM002),
precision-safe time handling (SIM003), state isolation between sweep
points (SIM004/SIM005), kernel discipline (SIM006), the Experiment
sweep contract (SIM007), sanctioned fault/observer/executor seams
(SIM008-SIM010), and justified suppressions (SIM016).  Cross-module
rules (SIM011-SIM015, :mod:`repro.lint.xrules`) analyze the whole tree
at once through a :class:`~repro.lint.project.ProjectContext` — RNG and
wall-clock taint through helper returns, SweepBackend picklability,
unit-suffix dimension checks, and experiment-registration conformance.

Suppress a deliberate violation with a ``# simlint: disable=SIM00x``
comment plus a justification (SIM016 polices the justification), or a
checked-in baseline entry (:mod:`repro.lint.baseline`).  The engine
re-lints incrementally — a changed module plus its reverse-import
closure — via :mod:`repro.lint.cache`, and emits text, JSON, or SARIF
2.1 (:mod:`repro.lint.sarif`) for code scanning.

The runtime complement — packet-conservation and protocol-state checks
while a simulation executes — lives in :mod:`repro.sim.invariants` and
is enabled with ``Simulator(check_invariants=True)`` or the CLI's
``--check-invariants`` flag.
"""

from repro.lint import rules as _rules  # registers the per-file rule set
from repro.lint import xrules as _xrules  # registers the cross-module rules
from repro.lint.core import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    all_rules,
    lint_module_in_project,
    lint_paths,
    lint_source,
    register_rule,
)
from repro.lint.project import ProjectContext

del _rules, _xrules

__all__ = [
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_module_in_project",
    "lint_paths",
    "lint_source",
    "register_rule",
]
