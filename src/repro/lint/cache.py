"""Incremental lint state: content hashes, replayed findings, journal.

The cache records, per project module, the sha256 of its source, the
project modules it imports, and the findings its last analysis
produced.  On the next run a module is **dirty** when its hash changed,
when it is new, or when it lies in the reverse-import closure of a
dirty/removed module (a change to ``sim.randomness`` can alter the
taint summaries every importer's findings rest on).  Dirty modules are
re-analyzed; everything else replays its recorded findings verbatim.

Soundness rests on the engine's contract (see
:func:`repro.lint.core.lint_module_in_project`): a module's findings
depend only on its own source plus whole-program summaries derived
from the modules it transitively imports.  The cache also fingerprints
the linter itself — editing any file under ``repro/lint`` or changing
``--select`` invalidates every entry, so stale rule logic can never
replay.

Every run returns a :class:`CacheJournal` naming which modules were
analyzed and which were reused; the test suite asserts on it to prove
the one-module-change → closure-only re-lint property.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.lint.core import (
    Finding,
    iter_python_files,
    lint_module_in_project,
)
from repro.lint.project import ProjectContext

__all__ = [
    "CACHE_SCHEMA",
    "CacheJournal",
    "lint_paths_cached",
    "linter_fingerprint",
]

#: Bump when the entry layout changes; mismatched caches are discarded.
CACHE_SCHEMA = "simlint-cache/1"


@dataclass
class CacheJournal:
    """What one cached run did — the incremental-lint audit trail."""

    #: modules re-analyzed this run (dirty set, sorted).
    analyzed: list[str] = field(default_factory=list)
    #: modules whose findings replayed from cache (sorted).
    reused: list[str] = field(default_factory=list)
    #: cached modules that no longer exist on disk (sorted).
    removed: list[str] = field(default_factory=list)
    #: why the whole cache was discarded, if it was ("" otherwise).
    invalidated: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "analyzed": self.analyzed,
            "reused": self.reused,
            "removed": self.removed,
            "invalidated": self.invalidated,
        }


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def linter_fingerprint() -> str:
    """sha256 over the linter's own sources.

    Editing a rule, the engine, or this cache module must invalidate
    every cached finding; hashing the package sources is the cheapest
    sound way to detect that.
    """
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.glob("*.py")):
        digest.update(path.name.encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()


def _load_cache(cache_file: Path, fingerprint: str, select_key: str) -> tuple[
    dict[str, dict[str, object]], str
]:
    """Cached entries, or ``({}, reason)`` when unusable."""
    try:
        raw = json.loads(cache_file.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return {}, "no cache file"
    except (OSError, json.JSONDecodeError):
        return {}, "unreadable cache file"
    if raw.get("schema") != CACHE_SCHEMA:
        return {}, f"cache schema {raw.get('schema')!r} != {CACHE_SCHEMA!r}"
    if raw.get("linter") != fingerprint:
        return {}, "linter sources changed"
    if raw.get("select") != select_key:
        return {}, "rule selection changed"
    entries = raw.get("modules")
    if not isinstance(entries, dict):
        return {}, "malformed cache"
    return entries, ""


def lint_paths_cached(
    paths: Iterable[str],
    cache_file: str | Path,
    select: Sequence[str] | None = None,
    only_modules: Optional[set[str]] = None,
) -> tuple[list[Finding], CacheJournal]:
    """Lint ``paths`` as one program, replaying unchanged modules.

    Returns the full finding list (cached + fresh) and the journal of
    what was re-analyzed.  When ``only_modules`` is given (the
    ``--changed-since`` path), reported findings are restricted to that
    set's reverse-import closure, but the cache is still refreshed for
    every analyzed module.
    """
    cache_path = Path(cache_file)
    fingerprint = linter_fingerprint()
    select_key = ",".join(sorted(select)) if select else ""

    project = ProjectContext.from_files(iter_python_files(paths))
    entries, invalidated = _load_cache(cache_path, fingerprint, select_key)

    hashes = {
        name: _sha256(info.context.source)
        for name, info in project.modules.items()
    }
    changed = {
        name
        for name, digest in hashes.items()
        if entries.get(name, {}).get("sha") != digest
    }
    removed = sorted(set(entries) - set(project.modules))
    # A module that imported a now-removed module must re-lint too: its
    # cross-module resolution results may differ without the dep.
    orphaned = {
        name
        for name, info in project.modules.items()
        if set(entries.get(name, {}).get("imports", ())) & set(removed)
    }
    dirty = project.reverse_closure(changed | orphaned)

    journal = CacheJournal(
        analyzed=sorted(dirty),
        reused=sorted(set(project.modules) - dirty),
        removed=removed,
        invalidated=invalidated,
    )

    findings: list[Finding] = []
    new_entries: dict[str, dict[str, object]] = {}
    for name, info in sorted(project.modules.items()):
        if name in dirty:
            module_findings = lint_module_in_project(
                project, info.context, select
            )
        else:
            module_findings = [
                Finding.from_dict(item)  # type: ignore[arg-type]
                for item in entries[name].get("findings", ())  # type: ignore[union-attr]
            ]
        new_entries[name] = {
            "sha": hashes[name],
            "imports": sorted(info.imports),
            "findings": [f.to_dict() for f in module_findings],
        }
        if only_modules is None or name in only_modules:
            findings.extend(module_findings)

    payload = {
        "schema": CACHE_SCHEMA,
        "linter": fingerprint,
        "select": select_key,
        "modules": new_entries,
    }
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = cache_path.with_suffix(cache_path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8")
    tmp.replace(cache_path)

    return sorted(findings), journal
