"""simlint command line.

Usage::

    python -m repro.lint                 # lint the installed repro package
    python -m repro.lint src/repro       # lint a source tree
    python -m repro.lint --list-rules    # show every rule id and summary
    python -m repro.lint --select SIM001,SIM004 src/repro

Exit status is the number of findings capped at 1 — nonzero means the
tree is not clean, which is what CI keys on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.core import all_rules, lint_paths


def _default_target() -> str:
    import repro

    return str(Path(repro.__file__).parent)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based simulator-correctness linter for repro.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.summary}")
        return 0

    select = None
    if args.select:
        select = [part.strip().upper() for part in args.select.split(",") if part.strip()]
    paths = args.paths or [_default_target()]
    findings = lint_paths(paths, select=select)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"simlint: {len(findings)} finding(s)")
        return 1
    print("simlint: no findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
