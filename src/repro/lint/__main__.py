"""simlint command line.

Usage::

    python -m repro.lint                     # lint the installed repro package
    python -m repro.lint src/repro           # lint a source tree
    python -m repro.lint --list-rules        # show every rule id and summary
    python -m repro.lint --select SIM001,SIM004 src/repro
    python -m repro.lint --format sarif src/repro > simlint.sarif
    python -m repro.lint --cache .simlint-cache.json src/repro
    python -m repro.lint --changed-since HEAD~1 src/repro
    python -m repro.lint --baseline simlint-baseline.json src/repro

Exit-status contract (CI keys on it):

* ``0`` — clean: no findings (after baseline filtering) and no stale
  baseline entries.
* ``1`` — findings were reported, or the baseline carries stale
  entries that must be removed.
* ``2`` — usage or configuration error: unreadable paths, a malformed
  or unjustified baseline, or ``--changed-since`` against a revision
  git cannot resolve.

Every non-``--list-rules`` run ends with a one-line summary count on
stdout (text format) or stderr (json/sarif, keeping the payload pure).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.lint.baseline import Baseline, BaselineError
from repro.lint.cache import lint_paths_cached
from repro.lint.core import Finding, all_rules, iter_python_files, lint_paths
from repro.lint.project import ProjectContext
from repro.lint.sarif import render_sarif

USAGE_ERROR = 2


def _default_target() -> str:
    import repro

    return str(Path(repro.__file__).parent)


def _changed_modules_since(rev: str, paths: list[str]) -> set[str]:
    """Dotted names of project modules touched since ``rev``.

    Resolution reuses the project namer: the diff is matched by absolute
    path against the modules the lint run actually parsed.
    """
    proc = subprocess.run(
        ["git", "diff", "--name-only", rev, "--"],
        capture_output=True,
        text=True,
        check=True,
    )
    changed_files = {
        Path(line).resolve()
        for line in proc.stdout.splitlines()
        if line.endswith(".py")
    }
    changed: set[str] = set()
    project = ProjectContext.from_files(iter_python_files(paths))
    for name, info in project.modules.items():
        if Path(info.path).resolve() in changed_files:
            changed.add(name)
    return project.reverse_closure(changed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Whole-program simulator-correctness linter for repro.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="FILE",
        help="incremental state file; unchanged modules replay cached "
        "findings instead of re-analyzing",
    )
    parser.add_argument(
        "--changed-since",
        default=None,
        metavar="REV",
        help="only report findings for modules changed since the git "
        "revision REV, plus their reverse-import closure",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="filter findings through a checked-in baseline; every entry "
        "must carry a justification",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as a baseline skeleton (entries "
        "get a placeholder justification to replace) and exit 0",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="with --cache: write the analyzed/reused module journal as "
        "JSON (used by tests and CI diagnostics)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.summary}")
        return 0

    select = None
    if args.select:
        select = [
            part.strip().upper()
            for part in args.select.split(",")
            if part.strip()
        ]
    paths = args.paths or [_default_target()]

    only_modules: set[str] | None = None
    if args.changed_since:
        try:
            only_modules = _changed_modules_since(args.changed_since, paths)
        except (subprocess.CalledProcessError, OSError) as exc:
            print(f"simlint: cannot diff against {args.changed_since}: {exc}",
                  file=sys.stderr)
            return USAGE_ERROR

    try:
        if args.cache:
            findings, journal = lint_paths_cached(
                paths, args.cache, select=select, only_modules=only_modules
            )
            if args.journal:
                Path(args.journal).write_text(
                    json.dumps(journal.to_dict(), indent=2) + "\n",
                    encoding="utf-8",
                )
        else:
            findings = lint_paths(paths, select=select)
            if only_modules is not None:
                project = ProjectContext.from_files(iter_python_files(paths))
                keep = {
                    info.path
                    for name, info in project.modules.items()
                    if name in only_modules
                }
                findings = [f for f in findings if f.path in keep]
    except (OSError, SyntaxError) as exc:
        print(f"simlint: cannot lint {paths}: {exc}", file=sys.stderr)
        return USAGE_ERROR

    if args.write_baseline:
        Baseline.from_findings(
            findings, justification="TODO: justify this accepted finding"
        ).dump(args.write_baseline)
        print(
            f"simlint: wrote {len(findings)} baseline entr(ies) to "
            f"{args.write_baseline}; replace the TODO justifications"
        )
        return 0

    stale_entries = []
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except BaselineError as exc:
            print(f"simlint: {exc}", file=sys.stderr)
            return USAGE_ERROR
        findings, stale_entries = baseline.apply(findings)

    return _emit(findings, stale_entries, args.format)


def _emit(
    findings: list[Finding],
    stale_entries: list[object],
    fmt: str,
) -> int:
    summary_stream = sys.stdout if fmt == "text" else sys.stderr
    if fmt == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    elif fmt == "sarif":
        print(render_sarif(findings))
    else:
        for finding in findings:
            print(finding.render())
    for entry in stale_entries:
        print(f"simlint: stale baseline entry: {entry.rule_id} at "  # type: ignore[attr-defined]
              f"{entry.path} (no matching finding; remove it)",  # type: ignore[attr-defined]
              file=summary_stream)
    count = len(findings)
    print(
        f"simlint: {count} finding(s)" if count else "simlint: no findings",
        file=summary_stream,
    )
    return 1 if (findings or stale_entries) else 0


if __name__ == "__main__":
    sys.exit(main())
