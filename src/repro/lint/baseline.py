"""Checked-in finding baseline with enforced justifications.

A baseline lets a known, deliberate violation ride in the tree without
an inline suppression comment — but never silently: every entry must
carry a non-empty ``justification`` string, and the CLI refuses to run
against a baseline containing unjustified entries (exit code 2, the
configuration-error contract).  Entries match findings on
``(path, rule_id, message)`` — line numbers drift with unrelated edits
and deliberately do not participate.

Stale entries (no current finding matches) are reported so baselines
shrink as debt is paid instead of fossilizing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.core import Finding

__all__ = ["BASELINE_SCHEMA", "Baseline", "BaselineEntry", "BaselineError"]

BASELINE_SCHEMA = "simlint-baseline/1"


class BaselineError(ValueError):
    """The baseline file is malformed or carries unjustified entries."""


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: its identity plus why it is accepted."""

    path: str
    rule_id: str
    message: str
    justification: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.path, self.rule_id, self.message)

    def to_dict(self) -> dict[str, str]:
        return {
            "path": self.path,
            "rule_id": self.rule_id,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """A set of baselined findings, keyed by (path, rule_id, message)."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Parse and validate a baseline file.

        Raises :class:`BaselineError` on schema mismatch, duplicate
        entries, or any entry whose justification is empty/whitespace —
        an unjustified baseline entry is a policy violation, not data.
        """
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if raw.get("schema") != BASELINE_SCHEMA:
            raise BaselineError(
                f"baseline schema {raw.get('schema')!r} != {BASELINE_SCHEMA!r}"
            )
        entries: list[BaselineEntry] = []
        seen: set[tuple[str, str, str]] = set()
        for index, item in enumerate(raw.get("entries", ())):
            if not isinstance(item, dict):
                raise BaselineError(f"baseline entry {index} is not an object")
            entry = BaselineEntry(
                path=str(item.get("path", "")),
                rule_id=str(item.get("rule_id", "")),
                message=str(item.get("message", "")),
                justification=str(item.get("justification", "")),
            )
            if not (entry.path and entry.rule_id and entry.message):
                raise BaselineError(
                    f"baseline entry {index} is missing path/rule_id/message"
                )
            justification = entry.justification.strip()
            if not justification or justification.upper().startswith("TODO"):
                raise BaselineError(
                    f"baseline entry {index} ({entry.rule_id} at {entry.path}) "
                    "has no justification; every accepted finding must say why"
                )
            if entry.key in seen:
                raise BaselineError(
                    f"duplicate baseline entry for {entry.rule_id} at "
                    f"{entry.path}"
                )
            seen.add(entry.key)
            entries.append(entry)
        return cls(entries)

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], justification: str
    ) -> "Baseline":
        """A baseline accepting ``findings`` (``--write-baseline``).

        The caller-supplied justification seeds every entry; authors are
        expected to replace it per entry before committing.
        """
        entries: list[BaselineEntry] = []
        seen: set[tuple[str, str, str]] = set()
        for finding in sorted(findings):
            entry = BaselineEntry(
                finding.path, finding.rule_id, finding.message, justification
            )
            if entry.key not in seen:
                seen.add(entry.key)
                entries.append(entry)
        return cls(entries)

    def dump(self, path: str | Path) -> None:
        payload = {
            "schema": BASELINE_SCHEMA,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def apply(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[BaselineEntry]]:
        """``(fresh, stale)``: findings not covered by the baseline, and
        entries no current finding matches (debt that has been paid)."""
        table = {entry.key: entry for entry in self.entries}
        fresh: list[Finding] = []
        matched: set[tuple[str, str, str]] = set()
        for finding in findings:
            key = (finding.path, finding.rule_id, finding.message)
            if key in table:
                matched.add(key)
            else:
                fresh.append(finding)
        stale = [e for e in self.entries if e.key not in matched]
        return fresh, stale
