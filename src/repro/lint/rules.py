"""The simlint rule set.

Each rule protects an invariant the reproduction's credibility rests
on — deterministic replay, conservation-friendly component wiring, or
the Experiment sweep contract.  See CONTRIBUTING.md for the one-line
"what it protects" table and how to add a rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    register_rule,
)

__all__ = [
    "DeliveryHookSwapRule",
    "ExperimentContractRule",
    "FaultBypassRule",
    "HandlerReentrancyRule",
    "ModuleMutableStateRule",
    "MutableDefaultRule",
    "RawExecutorRule",
    "RawSocketRule",
    "TimeEqualityRule",
    "UnjustifiedSuppressionRule",
    "UnseededRandomnessRule",
    "WallClockRule",
]

#: the one module allowed to construct generators and read entropy —
#: everything else must draw from repro.sim.randomness streams/helpers.
RANDOMNESS_HOME = "sim/randomness.py"


def _is_randomness_home(path: str) -> bool:
    return path.endswith(RANDOMNESS_HOME)


@register_rule
class UnseededRandomnessRule(Rule):
    """All randomness must flow through ``repro.sim.randomness``."""

    id = "SIM001"
    summary = "randomness outside sim/randomness.py breaks deterministic replay"
    fixit = (
        "draw from a RandomStreams stream or seeded_rng()/derive_seed() "
        "in repro.sim.randomness instead of constructing generators here"
    )

    #: numpy.random entry points that mint or reseed generator state.
    FORBIDDEN_NP_CALLS = frozenset(
        {
            "default_rng",
            "seed",
            "RandomState",
            "Generator",
            "PCG64",
            "PCG64DXSM",
            "MT19937",
            "Philox",
            "SFC64",
            # module-level convenience draws (global hidden state):
            "random",
            "rand",
            "randn",
            "randint",
            "choice",
            "shuffle",
            "permutation",
            "uniform",
            "normal",
            "exponential",
            "poisson",
            "binomial",
        }
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _is_randomness_home(module.path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "random" or name.name.startswith("random."):
                        yield from module.finding(
                            node,
                            self,
                            "import of the stdlib 'random' module "
                            "(process-global, seed-order-dependent state)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield from module.finding(
                        node,
                        self,
                        "import from the stdlib 'random' module "
                        "(process-global, seed-order-dependent state)",
                    )
            elif isinstance(node, ast.Call):
                name = module.resolve(node.func)
                if name.startswith("numpy.random."):
                    tail = name.rsplit(".", 1)[1]
                    if tail in self.FORBIDDEN_NP_CALLS:
                        yield from module.finding(
                            node,
                            self,
                            f"call to {name}() constructs generator state "
                            "outside sim/randomness.py",
                        )


@register_rule
class WallClockRule(Rule):
    """Simulation code must never read the wall clock."""

    id = "SIM002"
    summary = "wall-clock reads make runs irreproducible"
    fixit = (
        "use the simulator clock (sim.now); for host-side elapsed-time "
        "display use time.perf_counter(), which this rule permits"
    )

    FORBIDDEN = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.localtime",
            "time.gmtime",
            "time.ctime",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _is_randomness_home(module.path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = module.resolve(node.func)
                if name in self.FORBIDDEN:
                    yield from module.finding(
                        node, self, f"wall-clock read via {name}()"
                    )


@register_rule
class TimeEqualityRule(Rule):
    """No exact float equality on simulation timestamps."""

    id = "SIM003"
    summary = "float ==/!= on simulation time is precision-fragile"
    fixit = (
        "compare with an ordering (<, <=) or an explicit tolerance "
        "(math.isclose); exact float tie-breaks need a justified "
        "'# simlint: disable=SIM003'"
    )

    TIME_NAMES = frozenset({"now", "time", "sim_time", "timestamp"})

    @classmethod
    def _is_time_like(cls, node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute):
            ident = node.attr
        elif isinstance(node, ast.Name):
            ident = node.id
        else:
            return False
        return ident in cls.TIME_NAMES or ident.endswith("_time")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                # `x.time == None`-style identity checks are not float
                # comparisons; only flag when neither side is a constant
                # None and at least one side is time-like.
                if any(
                    isinstance(side, ast.Constant) and side.value is None
                    for side in (left, right)
                ):
                    continue
                if self._is_time_like(left) or self._is_time_like(right):
                    yield from module.finding(
                        node,
                        self,
                        "exact float comparison on a simulation-time value",
                    )
                    break


@register_rule
class MutableDefaultRule(Rule):
    """No mutable default arguments."""

    id = "SIM004"
    summary = "mutable defaults alias state across calls (and sweep points)"
    fixit = (
        "default to None and create the container inside the function, "
        "or use dataclasses.field(default_factory=...)"
    )

    MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name.rsplit(".", 1)[-1] in self.MUTABLE_CALLS
        return False

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in [*args.defaults, *args.kw_defaults]:
                if default is not None and self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield from module.finding(
                        default,
                        self,
                        f"mutable default argument in {name}()",
                    )


@register_rule
class ModuleMutableStateRule(Rule):
    """No module-level mutable containers in tcp/ and net/.

    Protocol and network modules are imported once per worker process;
    module-level mutable state leaks between sweep points executed in
    the same worker, silently coupling "independent" simulations.
    """

    id = "SIM005"
    summary = "module-level mutable state in tcp//net/ couples sweep points"
    fixit = (
        "move the state onto an instance created per simulation, or make "
        "it an immutable tuple/frozenset/Mapping; a deliberate registry "
        "needs a justified '# simlint: disable=SIM005'"
    )

    SCOPED_DIRS = ("/tcp/", "/net/")
    MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque", "OrderedDict", "Counter"})

    def _applies(self, path: str) -> bool:
        return any(part in f"/{path}" for part in self.SCOPED_DIRS)

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name.rsplit(".", 1)[-1] in self.MUTABLE_CALLS
        return False

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not self._applies(module.path):
            return
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue  # __all__ and friends: convention, not state
                if self._is_mutable(value):
                    yield from module.finding(
                        node,
                        self,
                        f"module-level mutable container {name!r} in a "
                        "protocol/network module",
                    )


@register_rule
class HandlerReentrancyRule(Rule):
    """Scheduled event handlers must not re-enter the kernel run loop.

    A function handed to ``schedule``/``schedule_at`` executes *inside*
    ``Simulator.run``; calling ``run``/``run_until``/``step`` from it
    re-enters the event loop and corrupts the clock (the kernel raises
    at runtime — this catches it before any simulation is spent).
    """

    id = "SIM006"
    summary = "event handlers re-entering kernel.run*/step corrupt the clock"
    fixit = (
        "handlers only schedule further events; run()/run_until()/step() "
        "belong to the top-level driver that owns the simulator"
    )

    RUN_METHODS = frozenset({"run", "run_until", "step"})
    KERNEL_RECEIVERS = frozenset({"sim", "kernel", "simulator"})

    @staticmethod
    def _callback_names(tree: ast.Module) -> set[str]:
        """Names of functions referenced as schedule() callbacks."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func_name = dotted_name(node.func)
            if func_name.rsplit(".", 1)[-1] not in ("schedule", "schedule_at"):
                continue
            for arg in node.args[1:2]:  # the callback slot
                if isinstance(arg, ast.Attribute):
                    names.add(arg.attr)
                elif isinstance(arg, ast.Name):
                    names.add(arg.id)
        return names

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        callbacks = self._callback_names(module.tree)
        if not callbacks:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in callbacks:
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                chain = dotted_name(call.func).split(".")
                if (
                    len(chain) >= 2
                    and chain[-1] in self.RUN_METHODS
                    and chain[-2] in self.KERNEL_RECEIVERS
                ):
                    yield from module.finding(
                        call,
                        self,
                        f"event handler {node.name}() calls "
                        f"{'.'.join(chain)}() — kernel re-entry",
                    )


@register_rule
class FaultBypassRule(Rule):
    """Failures must be modelled through the faults API, not ad hoc.

    Calling another object's ``_deliver`` (forging or suppressing a
    link delivery) or writing a queue's ``capacity_pkts`` from outside
    the network layer bypasses the fault subsystem: the impairment is
    unseeded (not reproducible across workers), unscheduled (invisible
    to the invariant monitor's fault audit trail), and uncounted (the
    injected-versus-congestion ledger stays blind to it).  The network
    and faults layers themselves are exempt — they *are* the sanctioned
    implementation.
    """

    id = "SIM008"
    summary = "direct link/queue tampering bypasses the seeded fault subsystem"
    fixit = (
        "express the impairment as a repro.faults.FaultPlan event "
        "(LossBurst/Corrupt/DelayJitter/LinkDown/BufferResize) armed by "
        "a FaultInjector; for a sanctioned capacity change call "
        "queue.resize(), which accounts evictions"
    )

    #: layers allowed to touch the delivery path and queue capacity:
    #: the implementation itself.
    EXEMPT_DIRS = ("/net/", "/faults/")

    def _applies(self, path: str) -> bool:
        return not any(part in f"/{path}" for part in self.EXEMPT_DIRS)

    @staticmethod
    def _non_self_attr(node: ast.expr, attr: str) -> bool:
        """True for ``X.<attr>`` where X is not ``self``/``cls``."""
        return (
            isinstance(node, ast.Attribute)
            and node.attr == attr
            and not (
                isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")
            )
        )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not self._applies(module.path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and self._non_self_attr(
                node.func, "_deliver"
            ):
                yield from module.finding(
                    node,
                    self,
                    "direct call to a link's _deliver() forges/drops a "
                    "delivery outside the faults API",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if self._non_self_attr(target, "capacity_pkts"):
                        yield from module.finding(
                            node,
                            self,
                            "direct write to a queue's capacity_pkts "
                            "mutates buffering outside the faults API",
                        )


@register_rule
class DeliveryHookSwapRule(Rule):
    """Delivery monitoring goes through observers, not hook swapping.

    Assigning another object's ``on_deliver`` installs a single hook by
    *replacing* whatever was there; the save-and-restore chaining idiom
    built on it (``self._prev = link.on_deliver; link.on_deliver = me``)
    silently drops other observers whenever detaches are not strictly
    LIFO — the PacketLogger bug this rule exists to keep fixed.  Links
    now support any number of observers natively; the network layer
    itself (which implements the property) and :mod:`repro.obs` are
    exempt.
    """

    id = "SIM009"
    summary = "on_deliver hook-swapping drops observers on non-LIFO detach"
    fixit = (
        "register with link.add_observer(fn) and detach with "
        "link.remove_observer(fn) (order-independent), or record through "
        "the repro.obs telemetry bus instead of a per-link hook"
    )

    #: layers allowed to touch the hook: the implementation itself.
    EXEMPT_DIRS = ("/net/", "/obs/")

    def _applies(self, path: str) -> bool:
        return not any(part in f"/{path}" for part in self.EXEMPT_DIRS)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not self._applies(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if FaultBypassRule._non_self_attr(target, "on_deliver"):
                    yield from module.finding(
                        node,
                        self,
                        "assignment to another object's on_deliver "
                        "replaces its delivery hook; use add_observer()",
                    )


@register_rule
class RawExecutorRule(Rule):
    """Sweep fan-out goes through a SweepBackend, not a raw pool.

    Constructing a :class:`concurrent.futures.ProcessPoolExecutor`
    directly sidesteps the runner's execution seam: the pool's results
    skip the ``(seconds, value)`` timing contract that feeds cost-aware
    scheduling, skip the shared-memory transport choice, and are
    invisible to the journal's backend header.  The backends package —
    which *is* the sanctioned wrapper — is exempt.
    """

    id = "SIM010"
    summary = "raw ProcessPoolExecutor bypasses the SweepBackend seam"
    fixit = (
        "use a repro.runner.backends backend (SerialBackend, "
        "ProcessPoolBackend, SharedMemoryBackend) or create_backend(); "
        "wrap a custom executor in LegacyExecutorBackend"
    )

    #: the sanctioned implementation of the seam.
    EXEMPT_DIRS = ("/runner/backends/",)

    def _applies(self, path: str) -> bool:
        return not any(part in f"/{path}" for part in self.EXEMPT_DIRS)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not self._applies(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name.rsplit(".", 1)[-1] == "ProcessPoolExecutor":
                yield from module.finding(
                    node,
                    self,
                    "direct ProcessPoolExecutor construction outside "
                    "runner/backends/ bypasses the sweep-backend seam",
                )


@register_rule
class UnjustifiedSuppressionRule(Rule):
    """Every ``# simlint: disable=`` directive must carry a reason.

    A suppression is a standing exception to an invariant the figures
    rest on; the justification (extra comment text on the directive's
    line, or a comment line directly above it) is what lets a reviewer
    audit that exception without re-deriving it.  Directives inside
    string literals and docstrings are ignored (they are prose, not
    suppressions).
    """

    id = "SIM016"
    summary = "simlint suppression without a justification comment"
    fixit = (
        "say why on the directive line ('# exact tie-break; see "
        "Event.__lt__  # simlint: disable=SIM003') or in a comment "
        "directly above it"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for directive in module.directives:
            if directive.justified:
                continue
            ids = ",".join(sorted(directive.ids))
            # Deliberately bypasses module.finding(): an unjustified
            # 'disable=all' must not suppress the rule that polices it.
            yield Finding(
                module.path,
                directive.line,
                0,
                self.id,
                f"suppression of {ids} has no justification comment",
                self.fixit,
            )


@register_rule
class ExperimentContractRule(Rule):
    """Experiment subclasses must implement the full sweep contract."""

    id = "SIM007"
    summary = "Experiment subclasses must define points/run_point/reduce"
    fixit = (
        "implement points() (enumerate the sweep), run_point() (execute "
        "one seeded point), and reduce() (fold results into the figure "
        "payload) explicitly — implicit inheritance hides contract drift"
    )

    REQUIRED = ("points", "run_point", "reduce")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name == "Experiment":
                continue  # the abstract base itself
            base_names = {
                dotted_name(base).rsplit(".", 1)[-1] for base in node.bases
            }
            if "Experiment" not in base_names:
                continue
            defined = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            missing = [name for name in self.REQUIRED if name not in defined]
            if missing:
                yield from module.finding(
                    node,
                    self,
                    f"Experiment subclass {node.name} does not define "
                    f"{', '.join(missing)}",
                )


@register_rule
class RawSocketRule(Rule):
    """Socket construction belongs to the dispatch frame layer alone.

    The dispatch protocol's crash-safety story rests on every byte
    crossing one code path: length-prefixed frames with a single
    ``sendall``, EOF distinguished from torn frames, heartbeats under
    the same write lock as results.  A raw socket opened anywhere else
    speaks *around* that protocol — its traffic is invisible to lease
    accounting, survives no chaos test, and silently forks the wire
    format.  ``repro/runner/dispatch/`` is the sanctioned home.
    """

    id = "SIM017"
    summary = "raw socket construction outside runner/dispatch/ forks the wire protocol"
    fixit = (
        "speak through repro.runner.dispatch.frames (send_frame/"
        "recv_frame over listen_socket()/connect_socket()) or add the "
        "transport to the dispatch package itself"
    )

    #: the sanctioned implementation of the transport.
    EXEMPT_DIRS = ("/runner/dispatch/",)

    #: socket-module entry points that mint a connection or listener.
    FORBIDDEN_CALLS = frozenset(
        {
            "socket.socket",
            "socket.create_connection",
            "socket.create_server",
            "socket.socketpair",
        }
    )

    def _applies(self, path: str) -> bool:
        return not any(part in f"/{path}" for part in self.EXEMPT_DIRS)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not self._applies(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name in self.FORBIDDEN_CALLS:
                yield from module.finding(
                    node,
                    self,
                    f"direct {name}() outside runner/dispatch/ bypasses "
                    "the framed dispatch transport",
                )
