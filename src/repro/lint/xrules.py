"""Cross-module simlint rules (SIM011-SIM015).

These rules run on a :class:`~repro.lint.project.ProjectContext` —
they follow values through assignments, helper returns, and imports,
so a determinism hole can no longer hide one call frame away from its
construction site.  Each protects a whole-program invariant:

SIM011
    Every RNG in the tree provably originates from
    ``repro.sim.randomness`` — a helper that launders an unseeded
    ``random.Random()``/``default_rng()`` through a return value taints
    every call site, in any module.
SIM012
    Wall-clock-derived values (``time.time``, and also
    ``perf_counter``, which SIM002 permits for display) never flow into
    simulated event times handed to ``schedule``/``schedule_at``.
SIM013
    Payloads crossing the SweepBackend process boundary (``Point`` /
    ``PointSpec`` contents, ``submit`` arguments) are transitively
    picklable: no lambdas, closures, local classes, generators, or open
    file handles — caught here instead of as a pickle traceback in a
    worker.
SIM014
    Unit-suffixed identifiers (``_s``/``_bytes``/``_pkts``/``_bps``...)
    are never added, subtracted, compared, or keyword-passed across
    units — the seconds/bytes mix-up class of kernel/link/queue bug.
SIM015
    Registered experiments declare their contract (``id``, ``title``,
    ``params_cls``), connection factories are called with keyword-only
    ``flow_id=``/``config=``, and ``run_point`` emits telemetry only
    through the :mod:`repro.obs` bus (no prints, no ad-hoc file
    writes).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import (
    Finding,
    ModuleContext,
    ProjectRule,
    dotted_name,
    register_rule,
)
from repro.lint.project import (
    ProjectContext,
    expr_taint_reason,
    local_tainted_names,
)

__all__ = [
    "ExperimentConformanceRule",
    "ProcessBoundaryRule",
    "RngProvenanceRule",
    "UnitDimensionRule",
    "WallClockTaintRule",
]

RANDOMNESS_HOME = "sim/randomness.py"

#: numpy.random generator constructors (entropy-less calls are
#: nondeterministic anywhere, including inside sim/randomness.py).
_NP_GENERATOR_CTORS = frozenset(
    {"default_rng", "RandomState", "Generator", "PCG64", "PCG64DXSM",
     "MT19937", "Philox", "SFC64"}
)


def _is_randomness_home(path: str) -> bool:
    return path.endswith(RANDOMNESS_HOME)


# ---------------------------------------------------------------------------
# SIM011 — RNG provenance taint
# ---------------------------------------------------------------------------


def _rng_seed(module: ModuleContext, call: ast.Call, resolved: str) -> str:
    """Reason when ``call`` constructs RNG state of illegal provenance."""
    if resolved in ("random.Random", "random.SystemRandom"):
        return f"stdlib {resolved}() (not derived from sim.randomness)"
    if resolved.startswith("numpy.random."):
        tail = resolved.rsplit(".", 1)[1]
        if tail in _NP_GENERATOR_CTORS:
            if not call.args and not call.keywords:
                return (
                    f"entropy-free numpy.random.{tail}() "
                    "(seeded from the OS, different every run)"
                )
            if not _is_randomness_home(module.path):
                return f"numpy.random.{tail}() outside sim/randomness.py"
    return ""


@register_rule
class RngProvenanceRule(ProjectRule):
    """RNGs must provably originate from ``sim.randomness``, even
    through assignments, helper returns, and keyword forwarding."""

    id = "SIM011"
    summary = "RNG state whose provenance is not sim.randomness (cross-module)"
    fixit = (
        "derive the generator with repro.sim.randomness.seeded_rng(seed, ...) "
        "or a RandomStreams stream and pass it down explicitly; a helper "
        "must forward a seeded generator, not mint its own"
    )

    def check_module(
        self, project: ProjectContext, module: ModuleContext
    ) -> Iterator[Finding]:
        summary = project.taint_summary("rng", _rng_seed)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.resolve(node.func)
            direct = _rng_seed(module, node, resolved)
            if direct and "entropy-free" in direct:
                # Seeded constructions are SIM001's per-file finding;
                # the entropy-free flavor is invisible to SIM001 inside
                # the randomness home, so this rule owns it everywhere.
                yield from module.finding(node, self, direct)
                continue
            target = project.resolve_function(module, node)
            if target is None:
                continue
            reason = summary.reason(target.full_name)
            if reason:
                yield from module.finding(
                    node,
                    self,
                    f"RNG obtained from {target.full_name}(), which returns "
                    f"{reason}",
                )


# ---------------------------------------------------------------------------
# SIM012 — wall-clock values must not become simulated event times
# ---------------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_SCHEDULE_METHODS = frozenset({"schedule", "schedule_at", "schedule_transient"})


def _wall_seed(module: ModuleContext, call: ast.Call, resolved: str) -> str:
    if resolved in _WALL_CLOCK_CALLS:
        return f"a wall-clock read ({resolved}())"
    return ""


@register_rule
class WallClockTaintRule(ProjectRule):
    """Wall-clock-derived values must not flow into event times."""

    id = "SIM012"
    summary = "wall-clock-derived value scheduled as a simulation event time"
    fixit = (
        "simulated times are functions of sim.now and model parameters "
        "only; host timing (perf_counter) is for display and BENCH "
        "artifacts, never for schedule()/schedule_at() arguments"
    )

    def check_module(
        self, project: ProjectContext, module: ModuleContext
    ) -> Iterator[Finding]:
        summary = project.taint_summary("wallclock", _wall_seed)
        call_reason = project.call_reason_with(_wall_seed, summary)
        scopes: list[ast.FunctionDef | ast.AsyncFunctionDef | ast.Module] = [
            module.tree
        ]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            tainted = local_tainted_names(module, scope, call_reason)
            for node in _scope_walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                chain = dotted_name(node.func)
                if chain.rsplit(".", 1)[-1] not in _SCHEDULE_METHODS:
                    continue
                if not node.args:
                    continue
                reason = expr_taint_reason(
                    node.args[0], module, tainted, call_reason
                )
                if reason:
                    yield from module.finding(
                        node,
                        self,
                        f"event time passed to {chain}() derives from "
                        f"{reason}",
                    )


def _scope_walk(
    scope: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
) -> Iterator[ast.AST]:
    """``ast.walk`` over a scope, not descending into nested functions
    (they are analyzed as their own scopes)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# SIM013 — process-boundary (SweepBackend) picklability
# ---------------------------------------------------------------------------

#: constructors whose arguments cross the SweepBackend process boundary.
_BOUNDARY_CTORS = frozenset(
    {
        "repro.experiments.base.Point",
        "repro.runner.backends.base.PointSpec",
        "repro.runner.backends.PointSpec",
    }
)

_LOCAL_DEF_REASON = "a function/class defined in a local scope"


def _unpicklable_seed(module: ModuleContext, call: ast.Call, resolved: str) -> str:
    if resolved == "open":
        return "an open file handle"
    return ""


def _unpicklable_expr_seed(node: ast.expr) -> str:
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression"
    return ""


@register_rule
class ProcessBoundaryRule(ProjectRule):
    """Sweep payloads must be transitively picklable and
    registry-resolvable before they reach a worker process."""

    id = "SIM013"
    summary = "unpicklable value in a sweep payload crossing the pool boundary"
    fixit = (
        "Point/PointSpec contents must be plain data (numbers, strings, "
        "dataclasses); replace lambdas/closures with named module-level "
        "functions or registry ids, and never ship file handles or "
        "generators to a worker"
    )

    def check_module(
        self, project: ProjectContext, module: ModuleContext
    ) -> Iterator[Finding]:
        summary = project.taint_summary(
            "unpicklable",
            _unpicklable_seed,
            expr_seed=_unpicklable_expr_seed,
            local_defs_reason=_LOCAL_DEF_REASON,
        )
        call_reason = project.call_reason_with(_unpicklable_seed, summary)
        scopes: list[ast.FunctionDef | ast.AsyncFunctionDef | ast.Module] = [
            module.tree
        ]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            tainted = local_tainted_names(
                module,
                scope,
                call_reason,
                expr_seed=None,  # bare lambdas are fine until shipped
                local_defs_reason=_LOCAL_DEF_REASON,
            )
            for node in _scope_walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                chain = dotted_name(node.func)
                resolved = module.resolve_dotted(chain)
                is_boundary = resolved in _BOUNDARY_CTORS or (
                    chain.rsplit(".", 1)[-1] == "submit" and "." in chain
                )
                if not is_boundary:
                    continue
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    reason = expr_taint_reason(
                        arg,
                        module,
                        tainted,
                        call_reason,
                        expr_seed=_unpicklable_expr_seed,
                    )
                    if reason:
                        yield from module.finding(
                            node,
                            self,
                            f"{chain}() ships {reason} across the "
                            "SweepBackend process boundary",
                        )
                        break


# ---------------------------------------------------------------------------
# SIM014 — unit-dimension checking on suffix-annotated identifiers
# ---------------------------------------------------------------------------

#: identifier suffix -> canonical unit.  Identifiers carry their unit as
#: a trailing ``_<unit>`` component (the tree-wide convention:
#: ``delay_s``, ``buffer_pkts``, ``bandwidth_bps``).
_UNIT_SUFFIXES = {
    "s": "s",
    "sec": "s",
    "secs": "s",
    "seconds": "s",
    "ms": "ms",
    "us": "us",
    "ns": "ns",
    "byte": "bytes",
    "bytes": "bytes",
    "kb": "kb",
    "kib": "kb",
    "mb": "mb",
    "mib": "mb",
    "pkt": "pkts",
    "pkts": "pkts",
    "packet": "pkts",
    "packets": "pkts",
    "segments": "pkts",
    "bps": "bps",
    "kbps": "kbps",
    "mbps": "mbps",
    "gbps": "gbps",
    "pps": "pps",
    "hz": "hz",
}


def _unit_of(node: ast.expr) -> Optional[str]:
    """Canonical unit carried by an identifier, or None."""
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    else:
        return None
    if "_" not in ident:
        return None
    return _UNIT_SUFFIXES.get(ident.rsplit("_", 1)[1].lower())


def _unit_of_param(name: str) -> Optional[str]:
    if "_" not in name:
        return None
    return _UNIT_SUFFIXES.get(name.rsplit("_", 1)[1].lower())


@register_rule
class UnitDimensionRule(ProjectRule):
    """No arithmetic/comparison/keyword-passing across unit suffixes."""

    id = "SIM014"
    summary = "arithmetic or comparison mixes unit-suffixed quantities"
    fixit = (
        "convert explicitly before combining (seconds*bandwidth_bps/8 -> "
        "bytes; bytes*8/bandwidth_bps -> seconds) and name the result "
        "with its own unit suffix"
    )

    def check_module(
        self, project: ProjectContext, module: ModuleContext
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left, right = _unit_of(node.left), _unit_of(node.right)
                if left and right and left != right:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    yield from module.finding(
                        node,
                        self,
                        f"'{op}' combines {left!r} with {right!r} "
                        "(unit mismatch)",
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left_n, right_n in zip(operands, operands[1:]):
                    left, right = _unit_of(left_n), _unit_of(right_n)
                    if left and right and left != right:
                        yield from module.finding(
                            node,
                            self,
                            f"comparison of {left!r} against {right!r} "
                            "(unit mismatch)",
                        )
                        break
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is None:
                        continue
                    expected = _unit_of_param(kw.arg)
                    actual = _unit_of(kw.value)
                    if expected and actual and expected != actual:
                        yield from module.finding(
                            kw.value,
                            self,
                            f"keyword {kw.arg}= receives a {actual!r} "
                            f"value, parameter expects {expected!r}",
                        )


# ---------------------------------------------------------------------------
# SIM015 — experiment contract conformance
# ---------------------------------------------------------------------------

_EXPERIMENT_BASES = (
    "repro.experiments.base.Experiment",
    "repro.experiments.Experiment",
)
_REGISTER_NAMES = (
    "repro.experiments.registry.register",
    "repro.experiments.register",
)
#: class attributes a registered experiment must declare in its body.
_REQUIRED_DECLARATIONS = ("id", "title", "params_cls")

#: factory callables whose flow_id/config arguments are keyword-only by
#: convention: (resolved-name tail, max allowed positional args).
_KEYWORD_ONLY_FACTORIES = {
    "create_source": 4,  # protocol, sim, host, dst_id
    "make_connection": 4,  # protocol, sim, src_host, dst_host
    "TcpSink": 2,  # sim, host
    "connect": 2,  # src_host, dst_host (method: self not counted)
    "connect_many": 2,  # src_hosts, dst_host
}


@register_rule
class ExperimentConformanceRule(ProjectRule):
    """Registered experiments declare their contract; connection
    factories take ``flow_id=``/``config=`` by keyword; ``run_point``
    talks to the world only through the obs bus and its return value."""

    id = "SIM015"
    summary = "experiment/connection contract violation (registration, kwargs, telemetry)"
    fixit = (
        "declare id/title/params_cls in the class body; pass flow_id= "
        "and config= by keyword at every connection call site; emit "
        "telemetry from run_point via the repro.obs bus or the returned "
        "payload (report() is the printing layer)"
    )

    def check_module(
        self, project: ProjectContext, module: ModuleContext
    ) -> Iterator[Finding]:
        yield from self._check_registered_classes(project, module)
        yield from self._check_factory_call_sites(project, module)

    # -- registration contract -----------------------------------------
    def _registered_class_names(self, module: ModuleContext) -> set[str]:
        """Class names this module registers as experiments."""
        registered: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for deco in node.decorator_list:
                    target = deco.func if isinstance(deco, ast.Call) else deco
                    if module.resolve(target) in _REGISTER_NAMES:
                        registered.add(node.name)
            elif isinstance(node, ast.Call):
                if module.resolve(node.func) in _REGISTER_NAMES and node.args:
                    chain = dotted_name(node.args[0])
                    if chain:
                        registered.add(chain)
        return registered

    def _check_registered_classes(
        self, project: ProjectContext, module: ModuleContext
    ) -> Iterator[Finding]:
        experiment_classes: set[str] = set()
        for base in _EXPERIMENT_BASES:
            experiment_classes |= project.subclasses_of(base)
        registered = self._registered_class_names(module)
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in registered:
                continue
            full = f"{module.module_name}.{node.name}"
            if full not in experiment_classes:
                continue
            declared = set()
            for item in node.body:
                if isinstance(item, ast.Assign):
                    declared.update(
                        t.id for t in item.targets if isinstance(t, ast.Name)
                    )
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    declared.add(item.target.id)
            missing = [
                name for name in _REQUIRED_DECLARATIONS if name not in declared
            ]
            if missing:
                yield from module.finding(
                    node,
                    self,
                    f"registered experiment {node.name} does not declare "
                    f"{', '.join(missing)} in its class body "
                    "(params_cls = None must be explicit)",
                )
            yield from self._check_run_point_telemetry(module, node)

    def _check_run_point_telemetry(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name != "run_point":
                continue
            for node in _scope_walk(item):
                if not isinstance(node, ast.Call):
                    continue
                chain = dotted_name(node.func)
                if chain == "print":
                    yield from module.finding(
                        node,
                        self,
                        f"{cls.name}.run_point() prints directly; points "
                        "run in worker processes — telemetry goes through "
                        "the repro.obs bus, presentation through report()",
                    )
                elif chain == "open" and _opens_for_write(node):
                    yield from module.finding(
                        node,
                        self,
                        f"{cls.name}.run_point() writes a file directly; "
                        "export results via the returned payload or the "
                        "repro.obs exporters",
                    )

    # -- keyword-only factory arguments ---------------------------------
    def _check_factory_call_sites(
        self, project: ProjectContext, module: ModuleContext
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if not chain:
                continue
            tail = chain.rsplit(".", 1)[-1]
            limit = _KEYWORD_ONLY_FACTORIES.get(tail)
            if limit is None:
                continue
            if tail in ("connect", "connect_many"):
                # Only the ConnectionSet idiom: `connections.connect(...)`
                # (or the set's own methods via self).  `net.connect()` is
                # the topology builder's link wiring, a different API.
                receiver = chain.rsplit(".", 1)[0] if "." in chain else ""
                owner = receiver.rsplit(".", 1)[-1]
                if "connection" not in owner and owner != "self":
                    continue
            if len(node.args) > limit:
                yield from module.finding(
                    node,
                    self,
                    f"{chain}() passes {len(node.args)} positional "
                    f"arguments (max {limit}); flow_id= and config= are "
                    "keyword-only by contract",
                )


def _opens_for_write(call: ast.Call) -> bool:
    mode = ""
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        mode = str(call.args[1].value)
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            mode = str(kw.value.value)
    return any(ch in mode for ch in "wax+")
