"""Query views over exported telemetry: cwnd and queue timelines.

Both timelines are step functions built from trace rows (either live
``Telemetry.rows()`` output or rows loaded back from JSONL), with
bisect-based point queries — the API the ``trace`` report's staircase
renderer and the analysis notebooks consume.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterable, Mapping, Optional

__all__ = ["CwndTimeline", "QueueTimeline"]


def _flows_present(rows: list[Mapping[str, Any]]) -> list[int]:
    return sorted({int(row["flow"]) for row in rows})


class CwndTimeline:
    """One flow's congestion window as a right-continuous step function."""

    def __init__(
        self,
        flow: int,
        times: list[float],
        cwnd: list[float],
        ssthresh: list[float],
    ) -> None:
        if not (len(times) == len(cwnd) == len(ssthresh)):
            raise ValueError("times/cwnd/ssthresh lengths differ")
        self.flow = flow
        self.times = times
        self.cwnd = cwnd
        self.ssthresh = ssthresh

    @classmethod
    def from_rows(
        cls, rows: Iterable[Mapping[str, Any]], flow: Optional[int] = None
    ) -> "CwndTimeline":
        """Build from trace rows; picks the lowest flow id when
        ``flow`` is not given.  Raises ValueError when the rows hold no
        cwnd records (for the requested flow)."""
        cwnd_rows = [row for row in rows if row.get("ch") == "cwnd"]
        if not cwnd_rows:
            raise ValueError("no cwnd records in trace")
        if flow is None:
            flow = _flows_present(cwnd_rows)[0]
        mine = [row for row in cwnd_rows if int(row["flow"]) == flow]
        if not mine:
            raise ValueError(
                f"no cwnd records for flow {flow}; flows present: "
                f"{_flows_present(cwnd_rows)}"
            )
        mine.sort(key=lambda row: float(row["t"]))  # stable: emission order kept
        return cls(
            flow,
            [float(row["t"]) for row in mine],
            [float(row["cwnd"]) for row in mine],
            [float(row["ssthresh"]) for row in mine],
        )

    def __len__(self) -> int:
        return len(self.times)

    @property
    def t_start(self) -> float:
        return self.times[0]

    @property
    def t_end(self) -> float:
        return self.times[-1]

    @property
    def max_cwnd(self) -> float:
        return max(self.cwnd)

    @property
    def min_cwnd(self) -> float:
        return min(self.cwnd)

    def value_at(self, t: float) -> Optional[float]:
        """The window in force at time ``t`` (None before the first
        sample)."""
        i = bisect_right(self.times, t) - 1
        if i < 0:
            return None
        return self.cwnd[i]

    def steps(self) -> list[tuple[float, float]]:
        """``(time, cwnd)`` pairs — the staircase."""
        return list(zip(self.times, self.cwnd))


class QueueTimeline:
    """One link's queue occupancy samples plus its drop/mark/evict events."""

    def __init__(
        self,
        link: str,
        times: list[float],
        backlog: list[int],
        events: list[tuple[float, str, int]],
    ) -> None:
        if len(times) != len(backlog):
            raise ValueError("times/backlog lengths differ")
        self.link = link
        self.times = times
        self.backlog = backlog
        #: ``(time, kind, backlog)`` for the non-sample kinds.
        self.events = events

    @classmethod
    def from_rows(
        cls, rows: Iterable[Mapping[str, Any]], link: Optional[str] = None
    ) -> "QueueTimeline":
        queue_rows = [row for row in rows if row.get("ch") == "queue"]
        if not queue_rows:
            raise ValueError("no queue records in trace")
        links = sorted({str(row["link"]) for row in queue_rows})
        if link is None:
            link = links[0]
        mine = [row for row in queue_rows if str(row["link"]) == link]
        if not mine:
            raise ValueError(
                f"no queue records for link {link!r}; links present: {links}"
            )
        samples = [row for row in mine if row["kind"] == "sample"]
        samples.sort(key=lambda row: float(row["t"]))
        events = [
            (float(row["t"]), str(row["kind"]), int(row["backlog"]))
            for row in mine
            if row["kind"] != "sample"
        ]
        events.sort(key=lambda item: item[0])
        return cls(
            link,
            [float(row["t"]) for row in samples],
            [int(row["backlog"]) for row in samples],
            events,
        )

    def __len__(self) -> int:
        return len(self.times)

    @property
    def peak_backlog(self) -> int:
        return max(self.backlog) if self.backlog else 0

    def value_at(self, t: float) -> Optional[int]:
        i = bisect_right(self.times, t) - 1
        if i < 0:
            return None
        return self.backlog[i]

    def drops(self) -> list[tuple[float, str, int]]:
        """The loss-causing events (everything except ``mark``)."""
        return [e for e in self.events if e[1] != "mark"]
