"""The ``--trace`` spec grammar.

A trace spec is a comma-separated list of entries::

    all                  every channel
    <channel>            enable one channel (cwnd, rtt, state, probe,
                         queue, rto, fault)
    <channel>@<N>        enable it with 1-in-N decimation (sample
                         channels only; events are never thinned)
    flow=<id>            keep flow-keyed records for this flow only
                         (repeatable; ids accumulate)
    link=<glob>          keep queue records for links matching this
                         fnmatch glob (repeatable)

Examples::

    all
    cwnd@8,queue,probe
    cwnd,probe,flow=0,flow=1
    queue,link=*->frontend

A spec with only ``flow=``/``link=`` filters enables every channel.
Parsing is strict — an unknown channel or malformed entry raises
``ValueError`` with the offending token, so the CLI can reject a bad
``--trace`` before any simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Optional

from repro.obs.records import CHANNELS, SAMPLE_CHANNELS

__all__ = ["TraceSpec"]


@dataclass(frozen=True)
class TraceSpec:
    """A parsed trace spec: enabled channels, decimation, and filters."""

    channels: frozenset[str] = frozenset(CHANNELS)
    decimation: tuple[tuple[str, int], ...] = ()
    flows: Optional[frozenset[int]] = None
    link_globs: tuple[str, ...] = ()
    _decim_map: dict[str, int] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._decim_map.update(dict(self.decimation))

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "TraceSpec":
        """Parse the ``--trace`` grammar; raises ValueError on bad input."""
        channels: set[str] = set()
        decimation: dict[str, int] = {}
        flows: set[int] = set()
        link_globs: list[str] = []
        tokens = [tok.strip() for tok in text.split(",")]
        if not any(tokens):
            raise ValueError("empty trace spec")
        for token in tokens:
            if not token:
                continue
            if token == "all":
                channels.update(CHANNELS)
                continue
            if token.startswith("flow="):
                value = token[len("flow="):]
                try:
                    flows.add(int(value))
                except ValueError:
                    raise ValueError(
                        f"bad flow filter {token!r}: flow ids are integers"
                    ) from None
                continue
            if token.startswith("link="):
                glob = token[len("link="):]
                if not glob:
                    raise ValueError("bad link filter 'link=': empty glob")
                link_globs.append(glob)
                continue
            name, _, step_text = token.partition("@")
            if name not in CHANNELS:
                raise ValueError(
                    f"unknown trace channel {name!r}; valid channels: "
                    f"{', '.join(CHANNELS)} (or 'all')"
                )
            channels.add(name)
            if step_text:
                try:
                    step = int(step_text)
                except ValueError:
                    raise ValueError(
                        f"bad decimation {token!r}: expected "
                        "<channel>@<integer>"
                    ) from None
                if step < 1:
                    raise ValueError(
                        f"bad decimation {token!r}: step must be >= 1"
                    )
                if name not in SAMPLE_CHANNELS:
                    raise ValueError(
                        f"channel {name!r} records discrete events and "
                        "cannot be decimated"
                    )
                decimation[name] = step
        if not channels:
            channels.update(CHANNELS)  # filter-only spec: trace everything
        return cls(
            channels=frozenset(channels),
            decimation=tuple(sorted(decimation.items())),
            flows=frozenset(flows) if flows else None,
            link_globs=tuple(link_globs),
        )

    # ------------------------------------------------------------------
    def wants_channel(self, channel: str) -> bool:
        return channel in self.channels

    def wants_flow(self, flow: int) -> bool:
        return self.flows is None or flow in self.flows

    def wants_link(self, name: str) -> bool:
        if not self.link_globs:
            return True
        return any(fnmatchcase(name, glob) for glob in self.link_globs)

    def decimation_for(self, channel: str) -> int:
        return self._decim_map.get(channel, 1)

    def to_string(self) -> str:
        """Canonical round-trippable form of this spec."""
        parts: list[str] = []
        if self.channels == frozenset(CHANNELS) and not self._decim_map:
            parts.append("all")
        else:
            for channel in CHANNELS:
                if channel not in self.channels:
                    continue
                step = self._decim_map.get(channel, 1)
                parts.append(f"{channel}@{step}" if step > 1 else channel)
        if self.flows is not None:
            parts.extend(f"flow={flow}" for flow in sorted(self.flows))
        parts.extend(f"link={glob}" for glob in self.link_globs)
        return ",".join(parts)
