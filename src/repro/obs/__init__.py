"""repro.obs — the flight recorder.

A low-overhead, seed-deterministic observability layer: a central
:class:`Telemetry` bus attached to the simulation kernel, typed records
from the transport/TRIM/queue/fault emit points, bounded ring buffers
with optional decimation, deterministic JSONL/CSV export, and timeline
query views.  Off by default; a simulation without a bus pays one
attribute load and one None-check per emit point.
"""

from repro.obs.dispatch import DispatchLog
from repro.obs.export import (
    check_jsonl,
    dump_row,
    load_jsonl,
    write_csv,
    write_jsonl,
)
from repro.obs.records import (
    CHANNELS,
    SAMPLE_CHANNELS,
    CwndRecord,
    DispatchRecord,
    FaultRecord,
    PoolRecord,
    ProbeRecord,
    QueueRecord,
    RtoRecord,
    RttRecord,
    SessionRecord,
    StateRecord,
    validate_row,
)
from repro.obs.spec import TraceSpec
from repro.obs.telemetry import DEFAULT_CAPACITY, QueueTap, Telemetry
from repro.obs.timeline import CwndTimeline, QueueTimeline

__all__ = [
    "CHANNELS",
    "DEFAULT_CAPACITY",
    "SAMPLE_CHANNELS",
    "CwndRecord",
    "CwndTimeline",
    "DispatchLog",
    "DispatchRecord",
    "FaultRecord",
    "PoolRecord",
    "ProbeRecord",
    "QueueRecord",
    "QueueTap",
    "QueueTimeline",
    "RtoRecord",
    "RttRecord",
    "SessionRecord",
    "StateRecord",
    "Telemetry",
    "TraceSpec",
    "check_jsonl",
    "dump_row",
    "load_jsonl",
    "validate_row",
    "write_csv",
    "write_jsonl",
]
