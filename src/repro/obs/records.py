"""Typed telemetry records — the flight recorder's vocabulary.

Every record is a small frozen dataclass tagged with the *channel* it
belongs to; a channel is the unit of enabling, filtering, decimation,
and ring-buffer bounding in :class:`repro.obs.telemetry.Telemetry`.
Records serialize to flat JSON rows (``row()``) whose key set per
channel is fixed — the schema the JSONL exporter writes, the ``trace``
report reads back, and the CI smoke job round-trips.

The row encoding is deliberately minimal and deterministic: keys are
sorted by the exporter, floats keep Python's shortest ``repr`` (which
round-trips exactly), and optional fields are simply absent rather than
``null``.  Same seed ⇒ byte-identical JSONL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Optional

__all__ = [
    "CHANNELS",
    "CwndRecord",
    "DispatchRecord",
    "FaultRecord",
    "PoolRecord",
    "ProbeRecord",
    "QueueRecord",
    "REQUIRED_ROW_KEYS",
    "RtoRecord",
    "RttRecord",
    "SessionRecord",
    "StateRecord",
    "validate_row",
]

#: every channel the bus knows, in display order.
CHANNELS: tuple[str, ...] = (
    "cwnd", "rtt", "state", "probe", "queue", "rto", "fault",
    "session", "pool", "dispatch",
)

#: channels carrying periodic samples; only these honour a trace spec's
#: ``@N`` decimation — discrete events (probes, drops, RTOs, faults)
#: are never thinned.
SAMPLE_CHANNELS: frozenset[str] = frozenset({"cwnd", "rtt", "queue"})

#: the keys a well-formed JSONL row must carry, per channel; extra keys
#: are allowed (optional record fields), missing ones are a schema error.
REQUIRED_ROW_KEYS: dict[str, frozenset[str]] = {
    "cwnd": frozenset({"ch", "t", "flow", "cwnd", "ssthresh"}),
    "rtt": frozenset({"ch", "t", "flow", "rtt"}),
    "state": frozenset({"ch", "t", "flow", "state"}),
    "probe": frozenset({"ch", "t", "flow", "event"}),
    "queue": frozenset({"ch", "t", "link", "kind", "backlog"}),
    "rto": frozenset({"ch", "t", "flow", "rto", "cwnd"}),
    "fault": frozenset({"ch", "t", "fault"}),
    "session": frozenset({"ch", "t", "session", "event"}),
    "pool": frozenset({"ch", "t", "pool", "event", "conn"}),
    "dispatch": frozenset({"ch", "t", "event"}),
}

#: queue-record kinds: one periodic sample plus the four event causes.
QUEUE_KINDS: tuple[str, ...] = ("sample", "drop", "early_drop", "mark", "evict")

#: probe lifecycle events (TCP-TRIM Algorithms 1 and 2).
PROBE_EVENTS: tuple[str, ...] = ("enter", "ack", "timeout", "inherit")

#: open-loop session lifecycle events (repro.http.openloop).
SESSION_EVENTS: tuple[str, ...] = ("request", "complete")

#: connection-pool lifecycle events (repro.http.openloop.pool).
POOL_EVENTS: tuple[str, ...] = (
    "open", "reuse", "checkin", "close_idle", "close_retired",
)

#: fleet-dispatch lifecycle events (repro.runner.dispatch): worker and
#: lease life cycle, retry/speculation decisions, quarantine, and the
#: per-host circuit breaker's transitions.
DISPATCH_EVENTS: tuple[str, ...] = (
    "spawn", "hello", "lease", "expire", "worker_dead", "retry",
    "speculate", "result", "quarantine", "breaker_open",
    "breaker_probe", "breaker_close", "shutdown",
)


@dataclass(frozen=True, slots=True)
class CwndRecord:
    """One congestion-window sample for a flow."""

    channel: ClassVar[str] = "cwnd"
    t: float
    flow: int
    cwnd: float
    ssthresh: float

    def row(self) -> dict[str, Any]:
        return {
            "ch": "cwnd", "t": self.t, "flow": self.flow,
            "cwnd": self.cwnd, "ssthresh": self.ssthresh,
        }


@dataclass(frozen=True, slots=True)
class RttRecord:
    """One valid (Karn-filtered) RTT sample."""

    channel: ClassVar[str] = "rtt"
    t: float
    flow: int
    rtt: float

    def row(self) -> dict[str, Any]:
        return {"ch": "rtt", "t": self.t, "flow": self.flow, "rtt": self.rtt}


@dataclass(frozen=True, slots=True)
class StateRecord:
    """A sender state transition (``recovery`` / ``open`` / ``timeout``)."""

    channel: ClassVar[str] = "state"
    t: float
    flow: int
    state: str

    def row(self) -> dict[str, Any]:
        return {
            "ch": "state", "t": self.t, "flow": self.flow, "state": self.state,
        }


@dataclass(frozen=True, slots=True)
class ProbeRecord:
    """One TCP-TRIM probe lifecycle event.

    ``event`` is one of :data:`PROBE_EVENTS`; the optional fields carry
    the data each event has on hand — ``enter`` the saved window and
    probe count, ``ack`` the probe's RTT, ``inherit`` the outcome
    (success flag, Eq. 1 factor, resulting window).
    """

    channel: ClassVar[str] = "probe"
    t: float
    flow: int
    event: str
    saved_cwnd: Optional[float] = None
    n_probes: Optional[int] = None
    rtt: Optional[float] = None
    success: Optional[bool] = None
    factor: Optional[float] = None
    cwnd: Optional[float] = None

    def row(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "ch": "probe", "t": self.t, "flow": self.flow, "event": self.event,
        }
        for key in ("saved_cwnd", "n_probes", "rtt", "success", "factor", "cwnd"):
            value = getattr(self, key)
            if value is not None:
                row[key] = value
        return row


@dataclass(frozen=True, slots=True)
class QueueRecord:
    """A queue occupancy sample or a drop/mark/eviction event.

    ``kind`` is one of :data:`QUEUE_KINDS`; ``backlog`` is the resident
    packet count at the moment of the record (for event kinds: the
    backlog the arriving/evicted packet saw).
    """

    channel: ClassVar[str] = "queue"
    t: float
    link: str
    kind: str
    backlog: int

    def row(self) -> dict[str, Any]:
        return {
            "ch": "queue", "t": self.t, "link": self.link,
            "kind": self.kind, "backlog": self.backlog,
        }


@dataclass(frozen=True, slots=True)
class RtoRecord:
    """A retransmission-timeout firing, after back-off was applied."""

    channel: ClassVar[str] = "rto"
    t: float
    flow: int
    rto: float
    cwnd: float

    def row(self) -> dict[str, Any]:
        return {
            "ch": "rto", "t": self.t, "flow": self.flow,
            "rto": self.rto, "cwnd": self.cwnd,
        }


@dataclass(frozen=True, slots=True)
class FaultRecord:
    """An injected fault taking effect (mirrors the invariant audit trail)."""

    channel: ClassVar[str] = "fault"
    t: float
    fault: str

    def row(self) -> dict[str, Any]:
        return {"ch": "fault", "t": self.t, "fault": self.fault}


@dataclass(frozen=True, slots=True)
class SessionRecord:
    """One open-loop session event.

    ``event`` is one of :data:`SESSION_EVENTS`; ``size`` rides along on
    ``request`` (the response bytes asked for), ``latency`` on
    ``complete`` (request issue to response fully acknowledged).
    """

    channel: ClassVar[str] = "session"
    t: float
    session: int
    event: str
    size: Optional[int] = None
    latency: Optional[float] = None

    def row(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "ch": "session", "t": self.t, "session": self.session,
            "event": self.event,
        }
        if self.size is not None:
            row["size"] = self.size
        if self.latency is not None:
            row["latency"] = self.latency
        return row


@dataclass(frozen=True, slots=True)
class PoolRecord:
    """A connection-pool transition (open/reuse/checkin/close).

    ``pool`` names the pool (one per backend server), ``conn`` the
    connection within it; ``leased``/``idle`` are the pool's occupancy
    right after the transition — the numbers whose conservation the
    open-loop property tests pin.
    """

    channel: ClassVar[str] = "pool"
    t: float
    pool: str
    event: str
    conn: int
    leased: Optional[int] = None
    idle: Optional[int] = None

    def row(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "ch": "pool", "t": self.t, "pool": self.pool,
            "event": self.event, "conn": self.conn,
        }
        if self.leased is not None:
            row["leased"] = self.leased
        if self.idle is not None:
            row["idle"] = self.idle
        return row


@dataclass(frozen=True, slots=True)
class DispatchRecord:
    """One fleet-dispatch event (lease, retry, breaker, quarantine...).

    ``t`` is host-side elapsed seconds since the dispatch log's epoch —
    operational telemetry, deliberately *not* simulation time (the
    dispatcher runs outside any simulation).  ``event`` is one of
    :data:`DISPATCH_EVENTS`; the optional fields carry whatever the
    event has on hand: the worker and host involved, the point label,
    the attempt number, and a free-form ``detail`` (error signature,
    breaker state, lease deadline...).
    """

    channel: ClassVar[str] = "dispatch"
    t: float
    event: str
    worker: Optional[str] = None
    host: Optional[str] = None
    point: Optional[str] = None
    attempt: Optional[int] = None
    detail: Optional[str] = None

    def row(self) -> dict[str, Any]:
        row: dict[str, Any] = {"ch": "dispatch", "t": self.t, "event": self.event}
        for key in ("worker", "host", "point", "attempt", "detail"):
            value = getattr(self, key)
            if value is not None:
                row[key] = value
        return row


def validate_row(row: Any) -> str:
    """Check one decoded JSONL row against the channel schemas.

    Returns the row's channel on success; raises :class:`ValueError`
    naming the problem otherwise.  Used by the ``trace --check`` smoke
    mode and the export round-trip tests.
    """
    if not isinstance(row, dict):
        raise ValueError(f"trace row is not an object: {row!r}")
    channel = row.get("ch")
    if channel not in REQUIRED_ROW_KEYS:
        raise ValueError(f"unknown trace channel {channel!r} in row {row!r}")
    missing = REQUIRED_ROW_KEYS[channel] - set(row)
    if missing:
        raise ValueError(
            f"{channel} row missing key(s) {sorted(missing)}: {row!r}"
        )
    if not isinstance(row["t"], (int, float)):
        raise ValueError(f"trace row time is not a number: {row!r}")
    return channel
