"""Fleet-dispatch telemetry: a standalone, wall-free flight recorder.

The dispatcher runs *outside* any simulation, so its events do not go
through a :class:`~repro.obs.telemetry.Telemetry` bus (which is owned
by a simulator and timestamped in sim seconds).  Instead the backend
owns one :class:`DispatchLog`: a bounded ring of
:class:`~repro.obs.records.DispatchRecord` rows timestamped as elapsed
seconds since the log's epoch on a monotonic clock — operationally
useful ordering without touching wall-clock APIs (simlint SIM002).

The rows share the trace JSONL encoding (``ch``/``t``/sorted keys), so
``repro.obs.export.load_jsonl`` and ``trace --check`` understand a
dumped dispatch log exactly like any other channel's export.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from pathlib import Path
from typing import Callable, Optional, Union

from repro.obs.export import dump_row
from repro.obs.records import DISPATCH_EVENTS, DispatchRecord

__all__ = ["DispatchLog"]

#: default ring capacity — generous for any realistic sweep (a few
#: events per point per retry), bounded so a pathological crash-loop
#: cannot grow memory without bound.
DEFAULT_LOG_CAPACITY = 65536


class DispatchLog:
    """Bounded, ordered record of one dispatch backend's fleet events."""

    def __init__(
        self,
        capacity: int = DEFAULT_LOG_CAPACITY,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._clock = clock
        self._epoch = clock()
        self._records: deque[DispatchRecord] = deque(maxlen=capacity)
        #: events seen in total, even after the ring evicts old rows.
        self.emitted = 0

    def emit(
        self,
        event: str,
        worker: Optional[str] = None,
        host: Optional[str] = None,
        point: Optional[str] = None,
        attempt: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> DispatchRecord:
        """Record one fleet event; returns the stored record."""
        if event not in DISPATCH_EVENTS:
            raise ValueError(
                f"unknown dispatch event {event!r} "
                f"(known: {', '.join(DISPATCH_EVENTS)})"
            )
        record = DispatchRecord(
            t=round(self._clock() - self._epoch, 6),
            event=event,
            worker=worker,
            host=host,
            point=point,
            attempt=attempt,
            detail=detail,
        )
        self._records.append(record)
        self.emitted += 1
        return record

    def records(self) -> list[DispatchRecord]:
        """The retained records, oldest first."""
        return list(self._records)

    def counts(self) -> dict[str, int]:
        """Event -> occurrence count over the retained window."""
        return dict(Counter(record.event for record in self._records))

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write the retained records as trace-compatible JSONL rows."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        lines = [dump_row(record.row()) for record in self._records]
        target.write_text(
            "".join(line + "\n" for line in lines), encoding="utf-8"
        )
        return len(lines)

    def __len__(self) -> int:
        return len(self._records)
