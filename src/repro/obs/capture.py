"""Environment plumbing: trace capture across the sweep-pool boundary.

The experiments CLI turns ``--trace SPEC`` / ``--trace-out DIR`` into
the ``REPRO_TRACE`` / ``REPRO_TRACE_OUT`` environment variables — the
one channel sweep worker processes inherit (exactly as
``--check-invariants`` does).  Every :class:`~repro.sim.kernel.Simulator`
constructed while ``REPRO_TRACE`` is set builds itself a
:class:`~repro.obs.telemetry.Telemetry` bus from the spec and registers
it in this module's process-local active list; after a sweep point
finishes, the runner drains that list and writes one JSONL trace file
per point, named by the point's identity digest — the same
``(experiment, label, seed, params digest)`` key the checkpoint journal
uses, so trace files survive ``--resume`` (a resumed point skips
execution and keeps the file from the run that produced it).
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Any, Optional

from repro.obs.export import write_jsonl
from repro.obs.spec import TraceSpec
from repro.obs.telemetry import Telemetry

__all__ = [
    "ENV_SPEC",
    "ENV_OUT",
    "discard_active",
    "drain_active_rows",
    "export_point_trace",
    "telemetry_from_env",
    "trace_dir",
    "trace_path",
    "tracing_enabled",
]

ENV_SPEC = "REPRO_TRACE"
ENV_OUT = "REPRO_TRACE_OUT"
DEFAULT_TRACE_DIR = "traces"

#: buses created by Simulator construction since the last drain, in
#: creation order.  Process-local: each sweep worker accumulates (and
#: drains) only the simulations it ran itself.
_ACTIVE: list[Telemetry] = []


def tracing_enabled() -> bool:
    """True when ``REPRO_TRACE`` requests capture in this process."""
    return bool(os.environ.get(ENV_SPEC, "").strip())


def telemetry_from_env() -> Optional[Telemetry]:
    """Build (and register) a bus from ``REPRO_TRACE``, or None.

    Called by ``Simulator.__init__`` when no explicit bus was passed.  A
    malformed spec raises ValueError — the CLI validates ``--trace``
    before setting the variable, so this only fires on a hand-set
    environment, where failing loudly beats silently not tracing.
    """
    text = os.environ.get(ENV_SPEC, "").strip()
    if not text:
        return None
    telemetry = Telemetry(TraceSpec.parse(text))
    _ACTIVE.append(telemetry)
    return telemetry


def register(telemetry: Telemetry) -> None:
    """Add an explicitly constructed bus to the active drain list."""
    _ACTIVE.append(telemetry)


def drain_active_rows() -> list[dict[str, Any]]:
    """Rows from every active bus (creation order), clearing the list."""
    buses, _ACTIVE[:] = list(_ACTIVE), []
    rows: list[dict[str, Any]] = []
    for bus in buses:
        rows.extend(bus.rows())
    return rows


def discard_active() -> None:
    """Drop accumulated buses without exporting (failed/retried point)."""
    _ACTIVE.clear()


# ----------------------------------------------------------------------
# Per-point trace files
# ----------------------------------------------------------------------
def trace_dir() -> Path:
    """The trace output directory (``REPRO_TRACE_OUT`` or ./traces)."""
    return Path(
        os.environ.get(ENV_OUT, "").strip() or DEFAULT_TRACE_DIR
    ).expanduser()


def _sanitize(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.=+-]+", "_", label) or "point"


def trace_path(
    experiment_id: str, label: str, seed: int, params_digest: str = ""
) -> Path:
    """Deterministic per-point trace file path.

    Mirrors the checkpoint journal key ``(experiment, label, seed,
    params digest)``: protocol variants of one figure share labels and
    seeds by design, so the digest keeps their traces apart.
    """
    digest = (params_digest or "na")[:8]
    name = f"{experiment_id}-{_sanitize(label)}-seed{seed}-{digest}.jsonl"
    return trace_dir() / name


def export_point_trace(
    experiment_id: str, label: str, seed: int, params_digest: str = ""
) -> Optional[Path]:
    """Drain the active buses into this point's JSONL file.

    Returns the written path, or None when tracing is off.  An empty
    file is still written when the point emitted nothing, so sweep
    tooling can glob one file per executed point.
    """
    if not tracing_enabled():
        discard_active()
        return None
    rows = drain_active_rows()
    return write_jsonl(rows, trace_path(experiment_id, label, seed, params_digest))
