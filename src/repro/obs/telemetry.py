"""The central telemetry bus.

A :class:`Telemetry` instance hangs off a
:class:`~repro.sim.kernel.Simulator` (``sim.telemetry``); instrumented
emit points throughout the transport and network layers do::

    tel = self.sim.telemetry
    if tel is not None:
        tel.on_cwnd(self.sim.now, self.flow_id, self.cwnd, self.ssthresh)

so a simulation without a bus pays exactly one attribute load and one
identity check per emit point — the flight recorder's "zero-cost when
disabled" contract, enforced by the ``kernel_churn`` bench gate.

Records land in per-channel bounded rings (oldest evicted first, the
eviction counted in :attr:`Telemetry.overflow`), with 1-in-N decimation
for the sample channels when the :class:`~repro.obs.spec.TraceSpec`
asks for it.  A global emission sequence number preserves a
deterministic cross-channel merge order for export.

Queue instrumentation is indirect: queues know neither the simulator
nor the bus, so :meth:`Telemetry.queue_tap` hands the owning
:class:`~repro.net.link.Link` a :class:`QueueTap` — a tiny adapter
carrying the clock and the link name — which the link installs on its
queue and consults on enqueue/dequeue.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Optional, Union

from repro.obs.records import (
    CHANNELS,
    CwndRecord,
    FaultRecord,
    PoolRecord,
    ProbeRecord,
    QueueRecord,
    RtoRecord,
    RttRecord,
    SessionRecord,
    StateRecord,
)
from repro.obs.spec import TraceSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["QueueTap", "Telemetry"]

Record = Union[
    CwndRecord, RttRecord, StateRecord, ProbeRecord, QueueRecord,
    RtoRecord, FaultRecord, SessionRecord, PoolRecord,
]

#: default per-channel ring capacity — generous for quick-preset sweeps
#: (a point emits a few thousand cwnd samples) while bounding a paper
#: preset's worst case to tens of MB per channel.
DEFAULT_CAPACITY = 65536


class Telemetry:
    """Bounded, decimating, seed-deterministic record sink."""

    def __init__(
        self,
        spec: Optional[TraceSpec] = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError("telemetry ring capacity must be >= 1")
        self.spec = spec if spec is not None else TraceSpec()
        self.capacity = capacity
        self._buffers: dict[str, deque[tuple[int, Record]]] = {
            ch: deque() for ch in CHANNELS if self.spec.wants_channel(ch)
        }
        #: records evicted from a full ring, per channel.
        self.overflow: dict[str, int] = {ch: 0 for ch in self._buffers}
        #: global emission counter: the deterministic merge key.
        self._seq = 0
        #: per-(channel, key) decimation counters.
        self._decim: dict[tuple[str, Any], int] = {}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _push(self, channel: str, record: Record) -> None:
        buf = self._buffers[channel]
        if len(buf) >= self.capacity:
            buf.popleft()
            self.overflow[channel] += 1
        self._seq += 1
        buf.append((self._seq, record))

    def _keep_sample(self, channel: str, key: Any) -> bool:
        """Decimation: keep the 1st of every N samples per (channel, key)."""
        step = self.spec.decimation_for(channel)
        if step <= 1:
            return True
        slot = (channel, key)
        count = self._decim.get(slot, 0)
        self._decim[slot] = count + 1
        return count % step == 0

    # ------------------------------------------------------------------
    # Emit points (called only when the bus is attached)
    # ------------------------------------------------------------------
    def on_cwnd(self, t: float, flow: int, cwnd: float, ssthresh: float) -> None:
        if "cwnd" not in self._buffers or not self.spec.wants_flow(flow):
            return
        if self._keep_sample("cwnd", flow):
            self._push("cwnd", CwndRecord(t, flow, cwnd, ssthresh))

    def on_rtt(self, t: float, flow: int, rtt: float) -> None:
        if "rtt" not in self._buffers or not self.spec.wants_flow(flow):
            return
        if self._keep_sample("rtt", flow):
            self._push("rtt", RttRecord(t, flow, rtt))

    def on_state(self, t: float, flow: int, state: str) -> None:
        if "state" not in self._buffers or not self.spec.wants_flow(flow):
            return
        self._push("state", StateRecord(t, flow, state))

    def on_probe(
        self,
        t: float,
        flow: int,
        event: str,
        saved_cwnd: Optional[float] = None,
        n_probes: Optional[int] = None,
        rtt: Optional[float] = None,
        success: Optional[bool] = None,
        factor: Optional[float] = None,
        cwnd: Optional[float] = None,
    ) -> None:
        if "probe" not in self._buffers or not self.spec.wants_flow(flow):
            return
        self._push(
            "probe",
            ProbeRecord(
                t, flow, event,
                saved_cwnd=saved_cwnd, n_probes=n_probes, rtt=rtt,
                success=success, factor=factor, cwnd=cwnd,
            ),
        )

    def on_queue_sample(self, t: float, link: str, backlog: int) -> None:
        if "queue" not in self._buffers or not self.spec.wants_link(link):
            return
        if self._keep_sample("queue", link):
            self._push("queue", QueueRecord(t, link, "sample", backlog))

    def on_queue_event(
        self, t: float, link: str, kind: str, backlog: int
    ) -> None:
        if "queue" not in self._buffers or not self.spec.wants_link(link):
            return
        self._push("queue", QueueRecord(t, link, kind, backlog))

    def on_rto(self, t: float, flow: int, rto: float, cwnd: float) -> None:
        if "rto" not in self._buffers or not self.spec.wants_flow(flow):
            return
        self._push("rto", RtoRecord(t, flow, rto, cwnd))

    def on_fault(self, t: float, description: str) -> None:
        if "fault" not in self._buffers:
            return
        self._push("fault", FaultRecord(t, description))

    def on_session(
        self,
        t: float,
        session: int,
        event: str,
        size: Optional[int] = None,
        latency: Optional[float] = None,
    ) -> None:
        if "session" not in self._buffers:
            return
        self._push(
            "session",
            SessionRecord(t, session, event, size=size, latency=latency),
        )

    def on_pool(
        self,
        t: float,
        pool: str,
        event: str,
        conn: int,
        leased: Optional[int] = None,
        idle: Optional[int] = None,
    ) -> None:
        if "pool" not in self._buffers:
            return
        self._push(
            "pool", PoolRecord(t, pool, event, conn, leased=leased, idle=idle)
        )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def queue_tap(self, sim: "Simulator", link_name: str) -> Optional["QueueTap"]:
        """A per-link tap for queue telemetry, or None when the queue
        channel is off (or the link is filtered out) — so disabled links
        keep a plain ``None`` on their hot path."""
        if "queue" not in self._buffers or not self.spec.wants_link(link_name):
            return None
        return QueueTap(sim, link_name, self)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self, channel: Optional[str] = None) -> list[Record]:
        """Buffered records, merged across channels in emission order."""
        if channel is not None:
            if channel not in CHANNELS:
                raise ValueError(f"unknown channel {channel!r}")
            buf = self._buffers.get(channel, ())
            return [record for _, record in buf]
        merged: list[tuple[int, Record]] = []
        for buf in self._buffers.values():
            merged.extend(buf)
        merged.sort(key=lambda item: item[0])
        return [record for _, record in merged]

    def rows(self, channel: Optional[str] = None) -> list[dict[str, Any]]:
        """JSON rows for the buffered records, in emission order."""
        return [record.row() for record in self.records(channel)]

    def counts(self) -> dict[str, int]:
        """Buffered record count per enabled channel."""
        return {ch: len(buf) for ch, buf in self._buffers.items()}

    def total_records(self) -> int:
        return sum(len(buf) for buf in self._buffers.values())

    def clear(self) -> None:
        for buf in self._buffers.values():
            buf.clear()
        self._decim.clear()
        for ch in self.overflow:
            self.overflow[ch] = 0


class QueueTap:
    """Clock-and-name adapter between one link's queue and the bus.

    Queues deliberately hold no simulator reference (see
    ``DropTailQueue.tick``), so the tap carries the clock and the link
    name on their behalf.  Links install it via the ``queue`` property
    setter; queues call it only from their drop/mark/evict branches.
    """

    __slots__ = ("sim", "link", "_telemetry")

    def __init__(self, sim: "Simulator", link: str, telemetry: Telemetry) -> None:
        self.sim = sim
        self.link = link
        self._telemetry = telemetry

    def sample(self, backlog: int) -> None:
        self._telemetry.on_queue_sample(self.sim.now, self.link, backlog)

    def drop(self, backlog: int) -> None:
        self._telemetry.on_queue_event(self.sim.now, self.link, "drop", backlog)

    def early_drop(self, backlog: int) -> None:
        self._telemetry.on_queue_event(
            self.sim.now, self.link, "early_drop", backlog
        )

    def mark(self, backlog: int) -> None:
        self._telemetry.on_queue_event(self.sim.now, self.link, "mark", backlog)

    def evict(self, backlog: int) -> None:
        self._telemetry.on_queue_event(self.sim.now, self.link, "evict", backlog)
