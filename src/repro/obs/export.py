"""Deterministic JSONL/CSV export of telemetry rows.

The JSONL encoding is the flight recorder's interchange format: one
JSON object per line, keys sorted, no whitespace, floats in Python's
shortest round-tripping ``repr``.  Two runs with the same seed produce
byte-identical files — the property the golden telemetry test pins.

``check_jsonl`` is the schema smoke used by ``trace --check`` (and CI):
every line must parse, validate against the per-channel schema in
:mod:`repro.obs.records`, and re-serialize to exactly the bytes read.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Union

from repro.obs.records import validate_row

__all__ = [
    "check_jsonl",
    "dump_row",
    "load_jsonl",
    "write_csv",
    "write_jsonl",
]

PathLike = Union[str, Path]


def dump_row(row: Mapping[str, Any]) -> str:
    """One canonical JSONL line (no trailing newline)."""
    return json.dumps(dict(row), sort_keys=True, separators=(",", ":"))


def write_jsonl(rows: Iterable[Mapping[str, Any]], path: PathLike) -> Path:
    """Write rows as canonical JSONL; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8", newline="\n") as fh:
        for row in rows:
            fh.write(dump_row(row))
            fh.write("\n")
    return target


def load_jsonl(path: PathLike) -> list[dict[str, Any]]:
    """Read a JSONL trace back into a list of row dicts."""
    rows: list[dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad JSONL line: {exc}"
                ) from None
    return rows


def check_jsonl(path: PathLike) -> int:
    """Validate a trace file; returns its record count.

    Checks, per line: JSON parses, the row matches its channel schema,
    and re-serializing reproduces the exact bytes read (the round-trip
    half of the determinism contract).  Raises ValueError on the first
    violation.
    """
    count = 0
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.rstrip("\n")
            if not stripped:
                continue
            try:
                row = json.loads(stripped)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON: {exc}") from None
            try:
                validate_row(row)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            if dump_row(row) != stripped:
                raise ValueError(
                    f"{path}:{lineno}: line is not in canonical form "
                    "(re-serialization differs)"
                )
            count += 1
    return count


def write_csv(rows: Iterable[Mapping[str, Any]], path: PathLike) -> Path:
    """Write rows as CSV with a deterministic header.

    Columns are the union of the rows' keys: ``ch`` and ``t`` first,
    then the remaining keys sorted; absent fields are left empty.
    Intended for one channel per file, but tolerant of mixed rows.
    """
    materialized = [dict(row) for row in rows]
    keys: set[str] = set()
    for row in materialized:
        keys.update(row)
    lead = [k for k in ("ch", "t") if k in keys]
    fields = lead + sorted(keys - set(lead))
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields, restval="")
        writer.writeheader()
        for row in materialized:
            writer.writerow(row)
    return target
