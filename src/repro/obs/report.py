"""ASCII trace reports: ``python -m repro.experiments trace ...``.

Renders the Fig. 1 motivation view from an exported JSONL trace — a
congestion-window staircase for one flow, with queue drop/mark events
summarized underneath — entirely in ASCII so it works over ssh and in
CI logs.  ``--check`` instead validates files against the trace schema
(the CI smoke path).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Mapping, Optional, Sequence

from repro.obs.export import check_jsonl, load_jsonl
from repro.obs.records import CHANNELS
from repro.obs.timeline import CwndTimeline, QueueTimeline

__all__ = ["main", "render_staircase", "summarize_rows"]

DEFAULT_WIDTH = 72
DEFAULT_HEIGHT = 16


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def render_staircase(
    timeline: CwndTimeline,
    width: int = DEFAULT_WIDTH,
    height: int = DEFAULT_HEIGHT,
) -> str:
    """Render a cwnd timeline as a filled ASCII staircase.

    Each column covers an equal slice of the traced interval and shows
    the window in force at the slice midpoint (sample-and-hold), filled
    from the x-axis up — the classic sawtooth/staircase picture.
    """
    if width < 8 or height < 3:
        raise ValueError("staircase needs width >= 8 and height >= 3")
    t0, t1 = timeline.t_start, timeline.t_end
    span = t1 - t0
    top = max(timeline.max_cwnd, 1.0)
    columns: list[int] = []
    for col in range(width):
        frac = (col + 0.5) / width
        value = timeline.value_at(t0 + frac * span) if span > 0 else timeline.cwnd[-1]
        if value is None:
            value = timeline.cwnd[0]
        cells = int(round(value / top * height))
        columns.append(max(0, min(height, cells)))
    label_w = max(len(_fmt(top)), len("0"))
    lines = [
        f"flow {timeline.flow}: cwnd over [{_fmt(t0)}s, {_fmt(t1)}s], "
        f"{len(timeline)} samples, peak {_fmt(timeline.max_cwnd)}"
    ]
    for level in range(height, 0, -1):
        if level == height:
            label = _fmt(top)
        elif level == 1:
            label = _fmt(top / height)
        else:
            label = ""
        body = "".join("#" if cells >= level else " " for cells in columns)
        lines.append(f"{label:>{label_w}} |{body}")
    lines.append(f"{'0':>{label_w}} +{'-' * width}")
    lines.append(f"{'':>{label_w}}  {_fmt(t0)}s{' ' * max(1, width - len(_fmt(t0)) - len(_fmt(t1)) - 2)}{_fmt(t1)}s")
    return "\n".join(lines)


def summarize_rows(rows: Sequence[Mapping[str, Any]]) -> str:
    """A compact per-file summary: channel counts, flows, links, span."""
    counts = {ch: 0 for ch in CHANNELS}
    flows: set[int] = set()
    links: set[str] = set()
    times: list[float] = []
    for row in rows:
        ch = str(row.get("ch", "?"))
        if ch in counts:
            counts[ch] += 1
        if "flow" in row:
            flows.add(int(row["flow"]))
        if "link" in row:
            links.add(str(row["link"]))
        if "t" in row:
            times.append(float(row["t"]))
    parts = [f"{ch}={n}" for ch, n in counts.items() if n]
    lines = [f"records: {len(rows)} ({', '.join(parts) if parts else 'none'})"]
    if times:
        lines.append(f"span: {_fmt(min(times))}s .. {_fmt(max(times))}s")
    if flows:
        lines.append(f"flows: {', '.join(str(f) for f in sorted(flows))}")
    if links:
        lines.append(f"links: {', '.join(sorted(links))}")
    return "\n".join(lines)


def _render_file(
    path: str, flow: Optional[int], width: int, height: int
) -> int:
    rows = load_jsonl(path)
    print(f"== {path}")
    print(summarize_rows(rows))
    try:
        cwnd = CwndTimeline.from_rows(rows, flow=flow)
    except ValueError as exc:
        print(f"(no staircase: {exc})")
    else:
        print()
        print(render_staircase(cwnd, width=width, height=height))
    try:
        queue = QueueTimeline.from_rows(rows)
    except ValueError:
        pass
    else:
        drops = queue.drops()
        marks = [e for e in queue.events if e[1] == "mark"]
        print()
        print(
            f"queue {queue.link}: peak backlog {queue.peak_backlog} pkts, "
            f"{len(drops)} drops/evictions, {len(marks)} ECN marks"
        )
        for t, kind, backlog in drops[:10]:
            print(f"  {_fmt(t)}s {kind} (backlog {backlog})")
        if len(drops) > 10:
            print(f"  ... {len(drops) - 10} more")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments trace",
        description="Render or validate exported JSONL trace files.",
    )
    parser.add_argument("files", nargs="+", help="JSONL trace files")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate schema + canonical form instead of rendering",
    )
    parser.add_argument(
        "--flow", type=int, default=None, help="flow id for the staircase"
    )
    parser.add_argument("--width", type=int, default=DEFAULT_WIDTH)
    parser.add_argument("--height", type=int, default=DEFAULT_HEIGHT)
    args = parser.parse_args(argv)

    status = 0
    for index, path in enumerate(args.files):
        if args.check:
            try:
                count = check_jsonl(path)
            except (OSError, ValueError) as exc:
                print(f"FAIL {path}: {exc}", file=sys.stderr)
                status = 1
            else:
                print(f"ok {path}: {count} records")
            continue
        if index:
            print()
        try:
            _render_file(path, args.flow, args.width, args.height)
        except (OSError, ValueError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
