"""repro — a reproduction of TCP-TRIM (ICDCS 2016).

A packet-level discrete-event network simulator plus the TCP-TRIM
congestion-control algorithm and the baselines the paper evaluates
against (Reno, CUBIC, DCTCP, L2DCT, and a GIP-style restart).

Quickstart::

    from repro import Simulator, build_star, make_connection

    sim = Simulator()
    star = build_star(sim, n_servers=5)
    source, sink = make_connection(
        "trim", sim, star.servers[0], star.frontend, flow_id=1,
        capacity_pps=85_616,
    )
    message = source.send_bytes(128 * 1024)
    sim.run(until=1.0)
    print(f"completed in {message.completion_time * 1e3:.2f} ms")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure and table.
"""

from repro.core import SteadyStateModel, TrimSource, k_threshold, kguide
from repro.experiments.base import Experiment, Point
from repro.faults import FaultInjector, FaultPlan
from repro.net import (
    Network,
    build_fat_tree,
    build_multi_hop,
    build_star,
    build_two_level_tree,
)
from repro.obs import CwndTimeline, QueueTimeline, Telemetry, TraceSpec
from repro.runner import ResultCache, SweepCheckpoint, SweepRunner
from repro.sim import (
    InvariantMonitor,
    InvariantViolation,
    Kernel,
    RandomStreams,
    Simulator,
    derive_seed,
    seeded_rng,
)
from repro.tcp import (
    PROTOCOLS,
    Message,
    TcpConfig,
    TcpSink,
    TcpSource,
    create_source,
    make_connection,
)

__version__ = "1.0.0"


def get_experiment(experiment_id: str) -> Experiment:
    """Resolve a registered experiment by figure id (or alias).

    Thin wrapper over :func:`repro.experiments.registry.get`, imported
    lazily so ``import repro`` does not pull every experiment module.
    """
    from repro.experiments import registry

    return registry.get(experiment_id)


def experiment_ids() -> list[str]:
    """All resolvable experiment ids (canonical ids plus aliases)."""
    from repro.experiments import registry

    return registry.ids()


__all__ = [
    "CwndTimeline",
    "Experiment",
    "FaultInjector",
    "FaultPlan",
    "InvariantMonitor",
    "InvariantViolation",
    "Kernel",
    "Message",
    "Network",
    "PROTOCOLS",
    "Point",
    "QueueTimeline",
    "RandomStreams",
    "ResultCache",
    "Simulator",
    "SteadyStateModel",
    "SweepCheckpoint",
    "SweepRunner",
    "TcpConfig",
    "TcpSink",
    "TcpSource",
    "Telemetry",
    "TraceSpec",
    "TrimSource",
    "build_fat_tree",
    "build_multi_hop",
    "build_star",
    "build_two_level_tree",
    "create_source",
    "derive_seed",
    "seeded_rng",
    "experiment_ids",
    "get_experiment",
    "k_threshold",
    "kguide",
    "make_connection",
]
