"""Application drivers: persistent-connection servers and traffic roles.

The paper's workloads decompose into sender roles, all multiplexed over
persistent TCP connections:

* :class:`ScheduledResponder` — a back-end web server that emits HTTP
  responses (packet trains) at scheduled times (the ON/OFF pattern);
* :class:`LongTrainSender` — a server transferring a long packet train,
  either of fixed size or effectively infinite (throughput tests);
* :func:`burst_at` — the partition/aggregation pattern: many servers
  releasing an SPT at the same instant toward one front-end;
* :class:`HttpSession` — the full request/response loop: a front-end
  sends HTTP requests on a persistent connection and the server answers
  each with a response train once the request arrives, after an
  optional service time.  The OFF periods of the ON/OFF pattern emerge
  from request spacing rather than being scheduled directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.http.workload import OnOffEvent
from repro.net.node import Host
from repro.sim.kernel import Simulator
from repro.tcp.base import Message, TcpConfig, TcpSink, TcpSource
from repro.tcp.factory import create_source

__all__ = ["HttpSession", "LongTrainSender", "ScheduledResponder", "burst_at"]

INFINITE_SEGMENTS = 50_000_000
"""Large enough that a sender never drains within any experiment."""


@dataclass
class ScheduledResponder:
    """Replays an ON/OFF schedule of responses on one connection.

    Each :class:`~repro.http.workload.OnOffEvent` becomes one message on
    ``source`` at its scheduled time; completed messages accumulate in
    :attr:`messages` for completion-time statistics.
    """

    sim: Simulator
    source: TcpSource
    schedule: Iterable[OnOffEvent]
    messages: list[Message] = field(default_factory=list)

    def start(self) -> "ScheduledResponder":
        for event in self.schedule:
            self.sim.schedule_at(event.time, self._emit, event.size_bytes)
        return self

    def _emit(self, size_bytes: int) -> None:
        self.messages.append(self.source.send_bytes(size_bytes))

    @property
    def completed(self) -> list[Message]:
        return [m for m in self.messages if m.finish_time is not None]

    def completion_times(self) -> list[float]:
        return [m.completion_time for m in self.completed]


@dataclass
class LongTrainSender:
    """Sends one long packet train starting at ``start_time``.

    ``segments=None`` means "infinite" (the sender stays backlogged for
    the whole run, as in the throughput/fairness tests); otherwise the
    train is a message whose completion is recorded.
    """

    sim: Simulator
    source: TcpSource
    start_time: float
    segments: Optional[int] = None
    message: Optional[Message] = None

    def start(self) -> "LongTrainSender":
        self.sim.schedule_at(self.start_time, self._begin)
        return self

    def _begin(self) -> None:
        n = self.segments if self.segments is not None else INFINITE_SEGMENTS
        self.message = self.source.send_message(n)

    def stop_at(self, time: float) -> "LongTrainSender":
        """Schedule the sender to stop offering data at ``time``."""
        self.sim.schedule_at(time, self.source.stop)
        return self


def burst_at(
    sim: Simulator,
    sources: Iterable[TcpSource],
    time: float,
    segments: int,
) -> list[Message]:
    """Partition/aggregation: every source emits an SPT at ``time``.

    Returns the (initially unfinished) messages in source order; the
    list fills with completion times as the simulation runs.
    """
    if segments < 1:
        raise ValueError("an SPT needs at least one segment")
    messages: list[Message] = []

    def emit(source: TcpSource) -> None:
        messages.append(source.send_message(segments))

    for source in sources:
        sim.schedule_at(time, emit, source)
    return messages


@dataclass
class Exchange:
    """One request/response pair on an :class:`HttpSession`."""

    request: Message
    response_bytes: int
    #: when the exchange was initiated (for non-persistent sessions this
    #: is the connection attempt, before the handshake round trip)
    start_time: float = 0.0
    response: Optional[Message] = None
    on_complete: Optional[Callable[["Exchange"], None]] = None

    @property
    def completion_time(self) -> float:
        """Exchange initiation to response fully acknowledged."""
        if self.response is None or self.response.finish_time is None:
            raise ValueError("exchange has not completed")
        return self.response.finish_time - self.start_time


class HttpSession:
    """A persistent HTTP session between a front-end and a server.

    Two TCP connections model the two directions of the persistent
    connection: a request channel (front-end → server, small messages)
    and a response channel (server → front-end, running the protocol
    under test).  Calling :meth:`request` sends the request; once it is
    fully delivered the server waits ``service_time`` and transmits the
    response train.  This is the Section II.A loop — the connection's
    OFF periods are whatever the request pattern leaves idle.
    """

    def __init__(
        self,
        sim: Simulator,
        frontend: Host,
        server: Host,
        protocol: str,
        request_flow_id: int,
        response_flow_id: int,
        config: Optional[TcpConfig] = None,
        request_config: Optional[TcpConfig] = None,
        service_time: float = 0.0,
        persistent: bool = True,
        **response_kwargs: Any,
    ) -> None:
        if service_time < 0:
            raise ValueError("service time cannot be negative")
        self.sim = sim
        self.frontend = frontend
        self.server = server
        self.protocol = protocol
        self.service_time = service_time
        self.persistent = persistent
        self._config = config
        self._request_config = request_config or config or TcpConfig()
        self._response_kwargs = response_kwargs
        self._next_flow_id = max(request_flow_id, response_flow_id) + 1
        if persistent:
            self.request_source = create_source(
                "reno", sim, frontend, server.node_id,
                flow_id=request_flow_id, config=self._request_config,
            )
            self.request_sink = TcpSink(sim, server, flow_id=request_flow_id)
            self.response_source = create_source(
                protocol, sim, server, frontend.node_id,
                flow_id=response_flow_id, config=config, **response_kwargs,
            )
            self.response_sink = TcpSink(sim, frontend, flow_id=response_flow_id)
        else:
            # Non-persistent HTTP: every exchange opens a fresh pair of
            # connections and pays an on-path SYN round trip first —
            # exactly the overhead the paper says persistence avoids.
            self.request_source = None
            self.response_source = None
        self.exchanges: list[Exchange] = []

    def _fresh_pair(self) -> tuple[TcpSource, TcpSource]:
        """A new connection pair for one non-persistent exchange."""
        req_id = self._next_flow_id
        resp_id = self._next_flow_id + 1
        self._next_flow_id += 2
        request_source = create_source(
            "reno", self.sim, self.frontend, self.server.node_id,
            flow_id=req_id, config=self._request_config,
        )
        TcpSink(self.sim, self.server, flow_id=req_id)
        response_source = create_source(
            self.protocol, self.sim, self.server, self.frontend.node_id,
            flow_id=resp_id, config=self._config,
            **self._response_kwargs,
        )
        TcpSink(self.sim, self.frontend, flow_id=resp_id)
        return request_source, response_source

    def request(
        self,
        response_bytes: int,
        request_segments: int = 1,
        on_complete: Optional[Callable[[Exchange], None]] = None,
    ) -> Exchange:
        """Issue one HTTP request expecting ``response_bytes`` back."""
        if response_bytes < 1:
            raise ValueError("a response needs at least one byte")
        exchange = Exchange(
            request=None,  # type: ignore[arg-type]  # set just below
            response_bytes=response_bytes,
            start_time=self.sim.now,
            on_complete=on_complete,
        )
        if self.persistent:
            request_source = self.request_source
            response_source = self.response_source
        else:
            request_source, response_source = self._fresh_pair()
        exchange._response_source = response_source  # type: ignore[attr-defined]

        def send_request() -> None:
            exchange.request = request_source.send_message(
                request_segments,
                on_complete=lambda _msg: self._serve(exchange),
            )

        if self.persistent:
            send_request()
        else:
            # The three-way handshake as a real on-path round trip: one
            # SYN-sized segment must be delivered and acknowledged
            # before the request proper goes out.  Its completion time
            # therefore includes whatever queueing the path imposes.
            syn = request_source.send_message(
                1, on_complete=lambda _msg: send_request()
            )
            exchange.request = syn  # submit time = connection attempt
        self.exchanges.append(exchange)
        return exchange

    def _serve(self, exchange: Exchange) -> None:
        self.sim.schedule(self.service_time, self._respond, exchange)

    def _respond(self, exchange: Exchange) -> None:
        source = getattr(exchange, "_response_source", self.response_source)
        exchange.response = source.send_bytes(
            exchange.response_bytes,
            on_complete=lambda _msg: self._finish(exchange),
        )

    def _finish(self, exchange: Exchange) -> None:
        if exchange.on_complete is not None:
            exchange.on_complete(exchange)

    @property
    def completed(self) -> list[Exchange]:
        return [
            e
            for e in self.exchanges
            if e.response is not None and e.response.finish_time is not None
        ]

    def completion_times(self) -> list[float]:
        return [e.completion_time for e in self.completed]
