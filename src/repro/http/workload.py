"""Synthetic ON/OFF HTTP workloads — the substitute for the paper's
2 TB campus trace.

The paper uses its trace only through the Fig. 2 CDFs:

* **PT size** (Fig. 2a): ranges 0.5 KB – 256 KB; ≲20% of trains are
  tiny (≤ 4 KB); about 70% fall in 4 – 128 KB; 10% exceed 128 KB.
* **Inter-train gap** (Fig. 2b): hundreds of microseconds to several
  milliseconds.

We encode those published anchor points as piecewise log-linear inverse
CDFs and sample from them.  Anything between anchors is interpolated on
a log scale (sizes and gaps both span orders of magnitude); this keeps
the workload inside the published envelope without inventing extra
structure the paper does not report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import math

import numpy as np
from numpy.typing import ArrayLike

__all__ = [
    "GAP_CDF_ANCHORS",
    "PT_SIZE_CDF_ANCHORS",
    "PiecewiseLogCdf",
    "OnOffEvent",
    "gap_sampler",
    "generate_onoff_schedule",
    "pt_size_sampler",
    "response_schedule",
]

PT_SIZE_CDF_ANCHORS: tuple[tuple[float, float], ...] = (
    (512.0, 0.0),        # 0.5 KB — smallest observed train
    (4096.0, 0.20),      # ≤ 4 KB: "lower than 20%"
    (131072.0, 0.90),    # 4–128 KB: "about 70%"
    (262144.0, 1.0),     # 256 KB — largest observed train
)
"""Fig. 2(a) anchor points: (train size in bytes, cumulative prob.)."""

GAP_CDF_ANCHORS: tuple[tuple[float, float], ...] = (
    (2e-4, 0.0),   # "hundreds of microseconds" ...
    (1e-3, 0.60),  # most gaps within a millisecond (Fig. 2b's knee)
    (5e-3, 1.0),   # ... "to several milliseconds"
)
"""Fig. 2(b) anchor points: (inter-train gap in seconds, cum. prob.).
The 60% knee at 1 ms is read off the published curve; the endpoints are
stated in the text."""


class PiecewiseLogCdf:
    """Inverse-CDF sampler with log-linear interpolation between anchors.

    ``anchors`` is a sequence of ``(value, cumulative_probability)``
    pairs with strictly increasing values and probabilities running from
    0.0 to 1.0.
    """

    def __init__(self, anchors: Sequence[tuple[float, float]]) -> None:
        if len(anchors) < 2:
            raise ValueError("need at least two anchors")
        values = [v for v, _ in anchors]
        probs = [p for _, p in anchors]
        if any(v <= 0 for v in values):
            raise ValueError("anchor values must be positive (log scale)")
        if any(b <= a for a, b in zip(values, values[1:])):
            raise ValueError("anchor values must be strictly increasing")
        if probs[0] != 0.0 or probs[-1] != 1.0:
            raise ValueError("anchor probabilities must span [0, 1]")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError("anchor probabilities must be non-decreasing")
        self._log_values = np.log(values)
        self._probs = np.asarray(probs)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` values; returns an array of floats."""
        u = rng.random(n)
        return self.quantile(u)

    def quantile(self, u: ArrayLike) -> np.ndarray:
        """The inverse CDF at probabilities ``u`` (array-like in [0,1])."""
        u = np.asarray(u, dtype=float)
        if np.any((u < 0) | (u > 1)):
            raise ValueError("probabilities must lie in [0, 1]")
        return np.exp(np.interp(u, self._probs, self._log_values))

    def cdf(self, values: ArrayLike) -> np.ndarray:
        """The CDF at ``values`` (piecewise log-linear)."""
        values = np.asarray(values, dtype=float)
        if np.any(values <= 0):
            raise ValueError("values must be positive")
        return np.interp(
            np.log(values),
            self._log_values,
            self._probs,
            left=0.0,
            right=1.0,
        )


def pt_size_sampler() -> PiecewiseLogCdf:
    """Sampler for packet-train sizes per Fig. 2(a)."""
    return PiecewiseLogCdf(PT_SIZE_CDF_ANCHORS)


def gap_sampler() -> PiecewiseLogCdf:
    """Sampler for inter-train gaps per Fig. 2(b)."""
    return PiecewiseLogCdf(GAP_CDF_ANCHORS)


@dataclass(frozen=True)
class OnOffEvent:
    """One packet train to be sent: at ``time``, ``size_bytes`` of data."""

    time: float
    size_bytes: int


def generate_onoff_schedule(
    rng: np.random.Generator,
    duration: float,
    start_time: float = 0.0,
    size_cdf: PiecewiseLogCdf | None = None,
    gap_cdf: PiecewiseLogCdf | None = None,
    drain_rate_bps: float | None = 1e9,
) -> list[OnOffEvent]:
    """An ON/OFF schedule for one persistent connection.

    Each train's size comes from the Fig. 2(a) distribution; the OFF
    gap after a train comes from Fig. 2(b) and is measured from the end
    of the train, whose ON duration is approximated as its size drained
    at ``drain_rate_bps`` (pass None to stack gaps from train *starts*,
    which can overlap large trains).  Generation stops once the next
    train would start after ``start_time + duration``.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    size_cdf = size_cdf or pt_size_sampler()
    gap_cdf = gap_cdf or gap_sampler()
    events: list[OnOffEvent] = []
    t = start_time + float(gap_cdf.sample(rng, 1)[0])
    end = start_time + duration
    while t < end:
        size = max(1, int(size_cdf.sample(rng, 1)[0]))
        events.append(OnOffEvent(time=t, size_bytes=size))
        if drain_rate_bps is not None:
            t += size * 8.0 / drain_rate_bps  # ON period
        t += float(gap_cdf.sample(rng, 1)[0])  # OFF period
    return events


def response_schedule(
    rng: np.random.Generator,
    n_responses: int,
    start_time: float,
    mean_interval: float,
    size_range_bytes: tuple[int, int],
    interval_distribution: str = "exponential",
) -> list[OnOffEvent]:
    """The motivation scenario's response stream (Section II.B.1).

    ``n_responses`` responses with sizes uniform in ``size_range_bytes``
    and inter-response intervals of ``mean_interval`` drawn from an
    exponential (default) or uniform distribution — the paper says
    "randomly generated based on 1 ms mean".
    """
    if n_responses < 1:
        raise ValueError("need at least one response")
    if mean_interval <= 0:
        raise ValueError("mean interval must be positive")
    lo, hi = size_range_bytes
    if not 0 < lo <= hi:
        raise ValueError("invalid size range")
    if interval_distribution == "exponential":
        intervals = rng.exponential(mean_interval, n_responses)
    elif interval_distribution == "uniform":
        intervals = rng.uniform(0.0, 2.0 * mean_interval, n_responses)
    else:
        raise ValueError(f"unknown distribution {interval_distribution!r}")
    events = []
    t = start_time
    for i in range(n_responses):
        size = int(rng.integers(lo, hi + 1))
        events.append(OnOffEvent(time=t, size_bytes=size))
        t += float(intervals[i])
    return events


def segments_for_bytes(size_bytes: int, mss_bytes: int = 1460) -> int:
    """Segments needed to carry ``size_bytes`` of response data."""
    if size_bytes < 1:
        raise ValueError("size must be at least one byte")
    return max(1, math.ceil(size_bytes / mss_bytes))
