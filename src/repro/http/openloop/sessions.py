"""User sessions: arrivals → think-time request chains → a schedule.

A *session* is one user: it starts at an arrival-process time, issues a
geometric-length chain of HTTP requests separated by exponential think
times, and sizes every response from the paper's Fig. 2(a) packet-train
distribution (:mod:`repro.http.workload`).  Multi-tier RPC fan-out —
the web-search root → aggregator → leaf pattern — expands each logical
request into ``aggregators × leaves`` synchronized backend requests
whose sizes partition the logical response, which is exactly the
partition/aggregation burst the paper's SPT scenarios model.

:func:`compile_schedule` is pure and seeded: the same
``(arrivals, config, seed, horizon)`` always compiles to the same
:class:`SessionSchedule`, request for request and byte for byte once
exported — the property the golden fixtures and the cross-backend
equivalence tests pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.http.openloop.arrivals import ArrivalProcess
from repro.http.workload import PiecewiseLogCdf, pt_size_sampler
from repro.sim.randomness import RandomStreams

__all__ = [
    "FanoutSpec",
    "ScheduledRequest",
    "SessionConfig",
    "SessionSchedule",
    "compile_schedule",
]


@dataclass(frozen=True)
class ScheduledRequest:
    """One backend request: at ``time``, session ``session`` asks for
    ``size_bytes`` of response data."""

    time: float
    session: int
    size_bytes: int


@dataclass(frozen=True)
class FanoutSpec:
    """Root → aggregator → leaf RPC fan-out (web-search aggregation).

    A logical request becomes ``aggregators * leaves`` leaf requests
    released at the same instant; each leaf carries an equal share of
    the logical response size (rounded up, at least one byte).
    """

    aggregators: int = 1
    leaves: int = 1

    def __post_init__(self) -> None:
        if self.aggregators < 1 or self.leaves < 1:
            raise ValueError("fan-out tiers need at least one branch each")

    @property
    def total_leaves(self) -> int:
        return self.aggregators * self.leaves

    def split(self, size_bytes: int) -> int:
        """Per-leaf share of a logical response of ``size_bytes``."""
        return max(1, math.ceil(size_bytes / self.total_leaves))


@dataclass(frozen=True)
class SessionConfig:
    """Shape of one user session.

    ``mean_requests`` is the mean of the geometric chain length (≥ 1
    request per session); ``think_time_s`` the mean of the exponential
    pause between a session's consecutive requests; ``fanout`` the
    RPC tree each logical request expands through.
    """

    mean_requests: float = 3.0
    think_time_s: float = 0.05
    fanout: FanoutSpec = field(default_factory=FanoutSpec)

    def __post_init__(self) -> None:
        if not math.isfinite(self.mean_requests) or self.mean_requests < 1.0:
            raise ValueError("mean_requests must be >= 1")
        if not math.isfinite(self.think_time_s) or self.think_time_s < 0:
            raise ValueError("think_time_s must be non-negative")


@dataclass(frozen=True)
class SessionSchedule:
    """A compiled open-loop schedule: sorted backend requests."""

    requests: tuple[ScheduledRequest, ...]
    n_sessions: int
    horizon: float

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.n_sessions < 0:
            raise ValueError("n_sessions cannot be negative")
        previous = None
        for request in self.requests:
            if request.size_bytes < 1:
                raise ValueError("request sizes must be at least one byte")
            if previous is not None and request.time < previous:
                raise ValueError("schedule times must be non-decreasing")
            previous = request.time

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[ScheduledRequest]:
        return iter(self.requests)

    @property
    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.requests)

    def offered_rate(self) -> float:
        """Scheduled backend requests per second over the horizon."""
        return len(self.requests) / self.horizon

    @classmethod
    def from_requests(
        cls,
        requests: Iterable[ScheduledRequest],
        horizon: Optional[float] = None,
    ) -> "SessionSchedule":
        """A schedule from loose rows (sorted; sessions counted)."""
        ordered = sorted(requests, key=lambda r: (r.time, r.session))
        sessions = {r.session for r in ordered}
        if horizon is None:
            last = ordered[-1].time if ordered else 0.0
            horizon = max(last, 1e-9) * (1.0 + 1e-9) if last > 0 else 1.0
        return cls(
            requests=tuple(ordered),
            n_sessions=len(sessions),
            horizon=horizon,
        )


def compile_schedule(
    arrivals: ArrivalProcess,
    config: SessionConfig,
    seed: int,
    horizon: float,
    start: float = 0.0,
    size_cdf: Optional[PiecewiseLogCdf] = None,
) -> SessionSchedule:
    """Compile arrivals + session model into a deterministic schedule.

    Draws flow through two named streams — ``openloop.arrivals`` for
    the arrival process, ``openloop.sessions`` for chain lengths, think
    times, and sizes — so adding a consumer to one never perturbs the
    other.  Requests that would start past ``start + horizon`` are
    dropped (the session is truncated at the horizon).
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    streams = RandomStreams(seed)
    arrival_rng = streams.get("openloop.arrivals")
    session_rng = streams.get("openloop.sessions")
    size_cdf = size_cdf or pt_size_sampler()
    end = start + horizon

    requests: list[ScheduledRequest] = []
    arrival_times = arrivals.sample_times(arrival_rng, horizon, start=start)
    for session_id, arrival in enumerate(arrival_times):
        chain = int(session_rng.geometric(1.0 / config.mean_requests))
        sizes = size_cdf.sample(session_rng, chain)
        if chain > 1 and config.think_time_s > 0:
            thinks = session_rng.exponential(config.think_time_s, chain - 1)
        else:
            thinks = [0.0] * (chain - 1)
        t = arrival
        for k in range(chain):
            if t >= end:
                break  # session truncated at the horizon
            logical = max(1, int(sizes[k]))
            leaf_size = config.fanout.split(logical)
            for _leaf in range(config.fanout.total_leaves):
                requests.append(
                    ScheduledRequest(
                        time=t, session=session_id, size_bytes=leaf_size
                    )
                )
            if k + 1 < chain:
                t += float(thinks[k])
    requests.sort(key=lambda r: (r.time, r.session))
    return SessionSchedule(
        requests=tuple(requests),
        n_sessions=len(arrival_times),
        horizon=horizon,
    )
