"""Seeded user-arrival processes behind one spec grammar.

An arrival process turns a ``numpy`` generator and a horizon into a
sorted list of session start times.  Three families cover the open-loop
workloads the data-center literature evaluates against:

* **Poisson** — memoryless arrivals at a constant rate λ; the baseline
  whose inter-arrival coefficient of variation is exactly 1.
* **MMPP** — a two-state Markov-modulated Poisson process (ON/OFF
  bursts): exponential sojourns alternate between a hot and a cold
  rate, producing the bursty arrivals (CV > 1) measured behind real
  front-ends.
* **Diurnal** — a raised-cosine rate schedule between a base and a peak
  rate, sampled by Lewis-Shedler thinning; compresses a day's load
  cycle into an experiment horizon.

Every process is a frozen dataclass parseable from — and canonically
printable back to — the CLI's ``--arrivals`` grammar::

    poisson:rate=200
    mmpp:rate_on=500,rate_off=20,mean_on=0.1,mean_off=0.4
    diurnal:base=50,peak=400,period=1.0

Sampling is deterministic in (spec, seed): chunk sizes for vectorized
draws depend only on the spec and horizon, never on sampled values, so
the draw sequence — and therefore every downstream schedule — is
byte-stable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Union, runtime_checkable

import numpy as np

__all__ = [
    "ArrivalProcess",
    "DiurnalArrivals",
    "MmppArrivals",
    "PoissonArrivals",
    "parse_arrivals",
]


@runtime_checkable
class ArrivalProcess(Protocol):
    """What the session compiler needs from an arrival process."""

    def sample_times(
        self, rng: np.random.Generator, horizon: float, start: float = 0.0
    ) -> list[float]:
        """Sorted arrival times in ``[start, start + horizon)``."""
        ...

    def mean_rate(self) -> float:
        """Long-run average arrivals per second (the offered λ)."""
        ...

    def scaled(self, factor: float) -> "ArrivalProcess":
        """The same process with every rate multiplied by ``factor``."""
        ...

    def to_string(self) -> str:
        """Canonical spec string; ``parse_arrivals`` round-trips it."""
        ...


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if not math.isfinite(value) or value <= 0:
            raise ValueError(f"{name} must be positive and finite, got {value!r}")


def _poisson_times(
    rng: np.random.Generator,
    rate: float,
    start: float,
    end: float,
    chunk: int,
) -> list[float]:
    """Homogeneous Poisson arrivals in ``[start, end)``.

    Gaps are drawn in fixed-size chunks (``chunk`` depends only on the
    caller's spec, keeping the draw count deterministic) and cumulated
    until the horizon is crossed.
    """
    times: list[float] = []
    t = start
    while True:
        gaps = rng.exponential(1.0 / rate, chunk)
        for gap in gaps:
            t += float(gap)
            if t >= end:
                return times
            times.append(t)


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at a constant ``rate`` per second."""

    rate: float

    def __post_init__(self) -> None:
        _check_positive(rate=self.rate)

    def sample_times(
        self, rng: np.random.Generator, horizon: float, start: float = 0.0
    ) -> list[float]:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        chunk = max(64, int(self.rate * horizon * 0.25) + 16)
        return _poisson_times(rng, self.rate, start, start + horizon, chunk)

    def mean_rate(self) -> float:
        return self.rate

    def scaled(self, factor: float) -> "PoissonArrivals":
        _check_positive(factor=factor)
        return PoissonArrivals(rate=self.rate * factor)

    def to_string(self) -> str:
        return f"poisson:rate={_fmt(self.rate)}"


@dataclass(frozen=True)
class MmppArrivals:
    """Two-state Markov-modulated Poisson process (ON/OFF bursts).

    Exponential sojourns of mean ``mean_on`` / ``mean_off`` seconds
    alternate between arrival rates ``rate_on`` and ``rate_off``; the
    process starts in the ON state.  With ``rate_on > rate_off`` the
    inter-arrival coefficient of variation strictly exceeds Poisson's 1
    — the property the workload-realism tests pin.
    """

    rate_on: float
    rate_off: float
    mean_on: float
    mean_off: float

    def __post_init__(self) -> None:
        _check_positive(
            rate_on=self.rate_on,
            rate_off=self.rate_off,
            mean_on=self.mean_on,
            mean_off=self.mean_off,
        )
        if self.rate_on <= self.rate_off:
            raise ValueError(
                "rate_on must exceed rate_off (otherwise the ON state "
                "is not the burst state and the process degenerates)"
            )

    def sample_times(
        self, rng: np.random.Generator, horizon: float, start: float = 0.0
    ) -> list[float]:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        end = start + horizon
        times: list[float] = []
        t = start
        on = True
        # Chunk size per state, fixed by the spec alone (determinism).
        chunks = {
            True: max(16, int(self.rate_on * self.mean_on) + 8),
            False: max(16, int(self.rate_off * self.mean_off) + 8),
        }
        while t < end:
            mean = self.mean_on if on else self.mean_off
            rate = self.rate_on if on else self.rate_off
            sojourn = float(rng.exponential(mean))
            sojourn_end = min(t + sojourn, end)
            times.extend(
                _poisson_times(rng, rate, t, sojourn_end, chunks[on])
            )
            t += sojourn
            on = not on
        return times

    def mean_rate(self) -> float:
        cycle = self.mean_on + self.mean_off
        return (self.rate_on * self.mean_on + self.rate_off * self.mean_off) / cycle

    def scaled(self, factor: float) -> "MmppArrivals":
        _check_positive(factor=factor)
        return MmppArrivals(
            rate_on=self.rate_on * factor,
            rate_off=self.rate_off * factor,
            mean_on=self.mean_on,
            mean_off=self.mean_off,
        )

    def to_string(self) -> str:
        return (
            f"mmpp:rate_on={_fmt(self.rate_on)},rate_off={_fmt(self.rate_off)},"
            f"mean_on={_fmt(self.mean_on)},mean_off={_fmt(self.mean_off)}"
        )


@dataclass(frozen=True)
class DiurnalArrivals:
    """A raised-cosine rate schedule between ``base`` and ``peak``.

    The instantaneous rate is ``base`` at phase 0, ``peak`` half a
    ``period`` later, and back — one compressed day per period.
    Sampling uses Lewis-Shedler thinning against the peak rate, so the
    draw count per chunk depends only on the spec.
    """

    base: float
    peak: float
    period: float

    def __post_init__(self) -> None:
        _check_positive(base=self.base, peak=self.peak, period=self.period)
        if self.peak < self.base:
            raise ValueError("peak rate must be >= base rate")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at absolute time ``t``."""
        phase = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / self.period))
        return self.base + (self.peak - self.base) * phase

    def sample_times(
        self, rng: np.random.Generator, horizon: float, start: float = 0.0
    ) -> list[float]:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        end = start + horizon
        chunk = max(64, int(self.peak * horizon * 0.25) + 16)
        times: list[float] = []
        t = start
        while True:
            gaps = rng.exponential(1.0 / self.peak, chunk)
            keeps = rng.random(chunk)
            for gap, keep in zip(gaps, keeps):
                t += float(gap)
                if t >= end:
                    return times
                if float(keep) * self.peak < self.rate_at(t):
                    times.append(t)

    def mean_rate(self) -> float:
        return 0.5 * (self.base + self.peak)

    def scaled(self, factor: float) -> "DiurnalArrivals":
        _check_positive(factor=factor)
        return DiurnalArrivals(
            base=self.base * factor, peak=self.peak * factor, period=self.period
        )

    def to_string(self) -> str:
        return (
            f"diurnal:base={_fmt(self.base)},peak={_fmt(self.peak)},"
            f"period={_fmt(self.period)}"
        )


def _fmt(value: float) -> str:
    """Shortest exact decimal for a spec float (ints lose the dot)."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


#: kind -> (constructor, required parameter names) for the grammar.
_KINDS: dict[str, tuple[type, tuple[str, ...]]] = {
    "poisson": (PoissonArrivals, ("rate",)),
    "mmpp": (MmppArrivals, ("rate_on", "rate_off", "mean_on", "mean_off")),
    "diurnal": (DiurnalArrivals, ("base", "peak", "period")),
}

AnyArrivals = Union[PoissonArrivals, MmppArrivals, DiurnalArrivals]


def parse_arrivals(text: str) -> AnyArrivals:
    """Parse the ``--arrivals`` grammar; raises ValueError on bad input.

    The grammar is ``<kind>:<key>=<float>[,<key>=<float>...]`` with the
    exact parameter set of the kind — no defaults, no extras — so a
    typo'd key fails loudly before any simulation runs.
    """
    kind, sep, body = text.strip().partition(":")
    if not sep or not kind:
        raise ValueError(
            f"bad arrival spec {text!r}: expected <kind>:<key>=<value>,... "
            f"with kind one of {', '.join(sorted(_KINDS))}"
        )
    if kind not in _KINDS:
        raise ValueError(
            f"unknown arrival kind {kind!r}; valid kinds: "
            f"{', '.join(sorted(_KINDS))}"
        )
    cls, required = _KINDS[kind]
    params: dict[str, float] = {}
    for token in body.split(","):
        token = token.strip()
        if not token:
            continue
        key, eq, value_text = token.partition("=")
        key = key.strip()
        value_text = value_text.strip()
        if not eq or not key:
            raise ValueError(
                f"bad arrival parameter {token!r} in {text!r}: "
                "expected <key>=<float>"
            )
        if key not in required:
            raise ValueError(
                f"unknown parameter {key!r} for {kind!r} arrivals; "
                f"expected: {', '.join(required)}"
            )
        if key in params:
            raise ValueError(f"duplicate parameter {key!r} in {text!r}")
        try:
            params[key] = float(value_text)
        except ValueError:
            raise ValueError(
                f"bad value for {key!r} in {text!r}: {value_text!r} "
                "is not a number"
            ) from None
    missing = [name for name in required if name not in params]
    if missing:
        raise ValueError(
            f"arrival spec {text!r} is missing: {', '.join(missing)}"
        )
    result: AnyArrivals = cls(**params)
    return result
