"""The trace-replay interchange format.

One JSON object per line, canonical encoding (sorted keys, no
whitespace, shortest round-tripping float ``repr``)::

    {"session":0,"size":4096,"t":0.0125}

A trace is a :class:`~repro.http.openloop.sessions.SessionSchedule`
flattened to its ``(t, session, size)`` tuples — everything a driver
needs to offer the same load to *any* protocol.  Exporting a compiled
schedule and replaying the file reproduces the original schedule
byte for byte (the round-trip property test), so real packet traces
converted to this format drive experiments exactly like synthetic
arrivals do.

The encoding deliberately reuses :mod:`repro.obs.export`'s canonical
JSONL conventions (the flight recorder's interchange format) without
its channel schema: trace rows are workload, not telemetry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.http.openloop.sessions import ScheduledRequest, SessionSchedule
from repro.obs.export import dump_row

__all__ = ["check_trace", "load_trace", "trace_rows", "write_trace"]

PathLike = Union[str, Path]

#: exactly the keys a trace row carries — extras are a format error, so
#: a telemetry JSONL handed to --replay fails loudly instead of half
#: parsing.
ROW_KEYS = frozenset({"t", "session", "size"})


def trace_rows(schedule: SessionSchedule) -> list[dict[str, Any]]:
    """The schedule's requests as canonical-order trace rows."""
    return [
        {"t": r.time, "session": r.session, "size": r.size_bytes}
        for r in schedule.requests
    ]


def write_trace(schedule: SessionSchedule, path: PathLike) -> Path:
    """Write a schedule as canonical trace JSONL; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8", newline="\n") as fh:
        for row in trace_rows(schedule):
            fh.write(dump_row(row))
            fh.write("\n")
    return target


def _parse_row(row: Any, where: str) -> ScheduledRequest:
    if not isinstance(row, Mapping):
        raise ValueError(f"{where}: trace row is not an object: {row!r}")
    keys = set(row)
    if keys != ROW_KEYS:
        raise ValueError(
            f"{where}: trace row keys {sorted(keys)} != "
            f"{sorted(ROW_KEYS)}: {dict(row)!r}"
        )
    t = row["t"]
    session = row["session"]
    size = row["size"]
    if not isinstance(t, (int, float)) or isinstance(t, bool):
        raise ValueError(f"{where}: 't' is not a number: {t!r}")
    if not isinstance(session, int) or isinstance(session, bool):
        raise ValueError(f"{where}: 'session' is not an integer: {session!r}")
    if not isinstance(size, int) or isinstance(size, bool) or size < 1:
        raise ValueError(f"{where}: 'size' is not a positive integer: {size!r}")
    if t < 0:
        raise ValueError(f"{where}: 't' is negative: {t!r}")
    return ScheduledRequest(time=float(t), session=session, size_bytes=size)


def load_trace(
    path: PathLike, horizon: Optional[float] = None
) -> SessionSchedule:
    """Read a trace file back into a replayable schedule.

    ``horizon`` overrides the inferred one (just past the last request)
    when the replay should keep offering an idle tail.
    """
    requests: list[ScheduledRequest] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            where = f"{path}:{lineno}"
            try:
                row = json.loads(stripped)
            except ValueError as exc:
                raise ValueError(f"{where}: bad JSONL line: {exc}") from None
            requests.append(_parse_row(row, where))
    return SessionSchedule.from_requests(requests, horizon=horizon)


def check_trace(path: PathLike) -> int:
    """Validate a trace file; returns its request count.

    Per line: JSON parses, the row carries exactly the trace keys with
    valid values, and re-serializing reproduces the exact bytes read —
    the same canonical-form contract ``trace --check`` enforces for
    telemetry files.  Times must be non-decreasing (a trace drives the
    kernel timeline in order).  Raises ValueError on the first
    violation.
    """
    count = 0
    previous: Optional[float] = None
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.rstrip("\n")
            if not stripped:
                continue
            where = f"{path}:{lineno}"
            try:
                row = json.loads(stripped)
            except ValueError as exc:
                raise ValueError(f"{where}: bad JSON: {exc}") from None
            request = _parse_row(row, where)
            if dump_row(row) != stripped:
                raise ValueError(
                    f"{where}: line is not in canonical form "
                    "(re-serialization differs)"
                )
            if previous is not None and request.time < previous:
                raise ValueError(
                    f"{where}: trace times decrease "
                    f"({request.time!r} after {previous!r})"
                )
            previous = request.time
            count += 1
    return count
