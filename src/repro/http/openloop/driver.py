"""Playing a compiled schedule onto the kernel timeline.

The driver is the open-loop half of the request/response loop: it
issues every :class:`~repro.http.openloop.sessions.ScheduledRequest` at
its scheduled time *regardless of whether earlier responses have
landed* — under overload, concurrency piles up exactly as it does
behind a real front-end.  Each request leases a persistent
:class:`~repro.http.apps.HttpSession` from the target server's
:class:`~repro.http.openloop.pool.ConnectionPool` (round-robin across
servers in issue order, so fan-out siblings hit distinct backends) and
returns it on completion; pool churn — cold opens during reconnect
storms, idle closes during lulls — emerges from the arrival pattern.

Every lifecycle step is emitted on the telemetry bus's ``session`` and
``pool`` channels, and the whole run is deterministic in (schedule,
topology, protocol, seed): the golden replay fixture pins the exported
telemetry byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.http.apps import Exchange, HttpSession
from repro.http.openloop.pool import ConnectionPool, PoolStats
from repro.http.openloop.sessions import ScheduledRequest, SessionSchedule
from repro.net.node import Host
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig

__all__ = ["OpenLoopDriver", "OpenLoopRun"]


@dataclass
class OpenLoopRun:
    """What one driven schedule did (fills in as the simulation runs)."""

    offered: int = 0
    issued: int = 0
    completed: int = 0
    latencies: list[float] = field(default_factory=list)
    bytes_completed: int = 0

    @property
    def in_flight(self) -> int:
        """Requests issued but not yet fully acknowledged."""
        return self.issued - self.completed


class OpenLoopDriver:
    """Drives a schedule through per-server keep-alive pools.

    ``servers`` are the backend hosts; requests round-robin across them
    in issue order.  ``config`` (and ``response_kwargs``, e.g. TRIM's
    ``capacity_pps``/``base_rtt``) configure the response connections
    running the protocol under test; requests ride plain Reno, as in
    :class:`~repro.http.apps.HttpSession`.
    """

    def __init__(
        self,
        sim: Simulator,
        frontend: Host,
        servers: list[Host],
        protocol: str,
        config: Optional[TcpConfig] = None,
        request_config: Optional[TcpConfig] = None,
        idle_timeout_s: float = 0.2,
        max_reuse: Optional[int] = None,
        service_time: float = 0.0,
        **response_kwargs: Any,
    ) -> None:
        if not servers:
            raise ValueError("need at least one backend server")
        self.sim = sim
        self.frontend = frontend
        self.servers = servers
        self.protocol = protocol
        self._config = config
        self._request_config = request_config
        self._service_time = service_time
        self._response_kwargs = response_kwargs
        self._next_flow_id = 0
        #: every session ever opened, pooled or since closed — the
        #: roster experiments sum per-connection stats (timeouts) over.
        self.sessions: list[HttpSession] = []
        self.pools: list[ConnectionPool[HttpSession]] = [
            ConnectionPool(
                sim,
                factory=self._session_factory(index),
                idle_timeout_s=idle_timeout_s,
                max_reuse=max_reuse,
                name=f"srv{index}",
            )
            for index in range(len(servers))
        ]
        self._issue_counter = 0

    def _session_factory(self, server_index: int) -> Any:
        def open_session(_conn_id: int) -> HttpSession:
            request_id = self._next_flow_id
            response_id = self._next_flow_id + 1
            self._next_flow_id += 2
            session = HttpSession(
                self.sim,
                self.frontend,
                self.servers[server_index],
                self.protocol,
                request_flow_id=request_id,
                response_flow_id=response_id,
                config=self._config,
                request_config=self._request_config,
                service_time=self._service_time,
                **self._response_kwargs,
            )
            self.sessions.append(session)
            return session

        return open_session

    # ------------------------------------------------------------------
    def play(self, schedule: SessionSchedule) -> OpenLoopRun:
        """Schedule every request onto the timeline; returns the run.

        The returned :class:`OpenLoopRun` fills in as the simulation
        executes — run the kernel past the schedule horizon (plus a
        drain margin) before reading it.
        """
        run = OpenLoopRun(offered=len(schedule))
        for request in schedule:
            self.sim.schedule_at(request.time, self._issue, request, run)
        return run

    def _issue(self, request: ScheduledRequest, run: OpenLoopRun) -> None:
        server_index = self._issue_counter % len(self.servers)
        self._issue_counter += 1
        pool = self.pools[server_index]
        conn_id, session = pool.lease()
        run.issued += 1
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_session(
                self.sim.now, request.session, "request",
                size=request.size_bytes,
            )
        session.request(
            request.size_bytes,
            on_complete=lambda exchange: self._complete(
                request, run, pool, conn_id, exchange
            ),
        )

    def _complete(
        self,
        request: ScheduledRequest,
        run: OpenLoopRun,
        pool: ConnectionPool[HttpSession],
        conn_id: int,
        exchange: Exchange,
    ) -> None:
        run.completed += 1
        run.bytes_completed += request.size_bytes
        latency = exchange.completion_time
        run.latencies.append(latency)
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_session(
                self.sim.now, request.session, "complete", latency=latency
            )
        pool.release(conn_id)

    # ------------------------------------------------------------------
    def pool_stats(self) -> PoolStats:
        """Summed lifecycle counters across the per-server pools."""
        total = PoolStats()
        for pool in self.pools:
            total = total.merged(pool.stats)
        return total

    def check_conservation(self) -> None:
        """Assert no pool lost a connection (opened == closed + live)."""
        for pool in self.pools:
            pool.check_conservation()

    def total_timeouts(self) -> int:
        """RTO firings summed over every response connection opened."""
        return sum(
            session.response_source.timeouts
            for session in self.sessions
            if session.response_source is not None
        )
