"""Open-loop HTTP load engine.

Closed-loop drivers (``repro.http.apps``) issue the next request only
after the previous response lands, so concurrency is whatever the
experiment hard-codes.  Open-loop load inverts that: *users* arrive by
a seeded stochastic process whether or not the system keeps up, each
runs a session of think-time-separated requests, and connections are
leased from a keep-alive pool with churn — concurrency becomes an
emergent property of offered load, exactly the regime the paper's
highly-concurrent persistent-connection premise describes.

The engine splits into a pure, seeded *schedule compiler* and a
simulator *driver*:

* :mod:`~repro.http.openloop.arrivals` — arrival processes (Poisson,
  MMPP on/off bursts, diurnal rate schedules) behind one spec grammar;
* :mod:`~repro.http.openloop.sessions` — user sessions (request chains
  with think times and paper-style size distributions, multi-tier RPC
  fan-out) compiled to a deterministic request schedule;
* :mod:`~repro.http.openloop.trace` — the JSONL trace-replay format
  (one ``{"t", "session", "size"}`` row per request, byte-canonical);
* :mod:`~repro.http.openloop.pool` — the keep-alive connection pool
  (idle timeout, max-reuse retirement, reconnect storms) with a
  conservation invariant: ``opened == closed + leased + idle``;
* :mod:`~repro.http.openloop.driver` — plays a compiled schedule onto
  the kernel timeline through the pool and collects per-request
  latencies plus pool churn statistics.

Same seed + same spec ⇒ byte-identical schedules, trace files, and
telemetry, across processes and sweep backends.
"""

from repro.http.openloop.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    MmppArrivals,
    PoissonArrivals,
    parse_arrivals,
)
from repro.http.openloop.driver import OpenLoopDriver, OpenLoopRun
from repro.http.openloop.pool import ConnectionPool, PoolStats
from repro.http.openloop.sessions import (
    FanoutSpec,
    ScheduledRequest,
    SessionConfig,
    SessionSchedule,
    compile_schedule,
)
from repro.http.openloop.trace import (
    check_trace,
    load_trace,
    trace_rows,
    write_trace,
)

__all__ = [
    "ArrivalProcess",
    "ConnectionPool",
    "DiurnalArrivals",
    "FanoutSpec",
    "MmppArrivals",
    "OpenLoopDriver",
    "OpenLoopRun",
    "PoissonArrivals",
    "PoolStats",
    "ScheduledRequest",
    "SessionConfig",
    "SessionSchedule",
    "check_trace",
    "compile_schedule",
    "load_trace",
    "parse_arrivals",
    "trace_rows",
    "write_trace",
]
