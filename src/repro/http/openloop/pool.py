"""Keep-alive connection pools with churn.

The paper's front-ends multiplex user requests over pools of persistent
connections; what makes the workload *aggressive* is the churn — idle
timeouts close connections during OFF periods, max-reuse policies
retire them, and a burst of arrivals over an empty pool opens many cold
connections at once (a reconnect storm, each new connection restarting
slow-start).

:class:`ConnectionPool` models exactly that lease/release lifecycle on
the kernel timeline, generic over what a "connection" is (the driver
leases :class:`~repro.http.apps.HttpSession` pairs; unit tests lease
stubs).  Idle connections are reused most-recently-released first
(LIFO, the keep-alive idiom: hot connections stay hot, cold ones age
out).  Every transition is counted in :class:`PoolStats` and emitted on
the telemetry bus's ``pool`` channel, and the pool maintains the
conservation invariant the property tests pin::

    opened == closed_idle + closed_retired + leased + idle
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Generic, Optional, TypeVar

from repro.sim.kernel import Event, Simulator

__all__ = ["ConnectionPool", "PoolStats"]

C = TypeVar("C")


@dataclass
class PoolStats:
    """Lifecycle counters for one pool (or a sum over pools)."""

    opened: int = 0
    closed_idle: int = 0
    closed_retired: int = 0
    reused: int = 0
    leases: int = 0

    @property
    def closed(self) -> int:
        return self.closed_idle + self.closed_retired

    @property
    def reuse_fraction(self) -> float:
        """Leases served from the idle list rather than a fresh open."""
        return self.reused / self.leases if self.leases else 0.0

    def merged(self, other: "PoolStats") -> "PoolStats":
        """Element-wise sum (aggregating per-server pools)."""
        return PoolStats(
            opened=self.opened + other.opened,
            closed_idle=self.closed_idle + other.closed_idle,
            closed_retired=self.closed_retired + other.closed_retired,
            reused=self.reused + other.reused,
            leases=self.leases + other.leases,
        )


class _Slot(Generic[C]):
    """One pooled connection's bookkeeping."""

    __slots__ = ("conn", "conn_id", "uses", "idle_timer")

    def __init__(self, conn_id: int, conn: C) -> None:
        self.conn_id = conn_id
        self.conn = conn
        self.uses = 0
        self.idle_timer: Optional[Event] = None


class ConnectionPool(Generic[C]):
    """A keep-alive pool of persistent connections to one backend.

    ``factory(conn_id)`` opens connection ``conn_id`` (ids are dense,
    starting at 0, unique per pool); ``on_close(conn)`` — if given —
    tears one down.  ``idle_timeout_s`` is the keep-alive horizon: a
    connection idle that long closes.  ``max_reuse`` retires a
    connection after that many leases (``None`` = never).  ``name``
    labels the pool's telemetry rows (one pool per backend server).
    """

    def __init__(
        self,
        sim: Simulator,
        factory: Callable[[int], C],
        idle_timeout_s: float = 0.5,
        max_reuse: Optional[int] = None,
        on_close: Optional[Callable[[C], None]] = None,
        name: str = "pool",
    ) -> None:
        if not math.isfinite(idle_timeout_s) or idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive and finite")
        if max_reuse is not None and max_reuse < 1:
            raise ValueError("max_reuse must be >= 1 (or None for unlimited)")
        self.sim = sim
        self.factory = factory
        self.idle_timeout_s = idle_timeout_s
        self.max_reuse = max_reuse
        self.on_close = on_close
        self.name = name
        self.stats = PoolStats()
        self._idle: list[_Slot[C]] = []  # LIFO: most recently released last
        self._leased: dict[int, _Slot[C]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_idle(self) -> int:
        return len(self._idle)

    @property
    def n_leased(self) -> int:
        return len(self._leased)

    def check_conservation(self) -> None:
        """Raise if any connection was lost or double-counted."""
        accounted = self.stats.closed + self.n_leased + self.n_idle
        if self.stats.opened != accounted:
            raise AssertionError(
                f"pool {self.name!r} leaked connections: opened "
                f"{self.stats.opened} != closed {self.stats.closed} + "
                f"leased {self.n_leased} + idle {self.n_idle}"
            )

    # ------------------------------------------------------------------
    # The lease/release lifecycle
    # ------------------------------------------------------------------
    def lease(self) -> tuple[int, C]:
        """Check a connection out: reuse the hottest idle one, or open.

        Returns ``(conn_id, connection)``; the caller must eventually
        :meth:`release` the id (or :meth:`discard` it on failure).
        """
        self.stats.leases += 1
        if self._idle:
            slot = self._idle.pop()
            if slot.idle_timer is not None:
                slot.idle_timer.cancel()
                slot.idle_timer = None
            self.stats.reused += 1
            event = "reuse"
        else:
            slot = _Slot(self._next_id, self.factory(self._next_id))
            self._next_id += 1
            self.stats.opened += 1
            event = "open"
        slot.uses += 1
        self._leased[slot.conn_id] = slot
        self._emit(event, slot.conn_id)
        return slot.conn_id, slot.conn

    def release(self, conn_id: int) -> None:
        """Check a connection back in (idle-arm it or retire it)."""
        slot = self._take_leased(conn_id)
        if self.max_reuse is not None and slot.uses >= self.max_reuse:
            self._close(slot, "close_retired")
            self.stats.closed_retired += 1
            return
        slot.idle_timer = self.sim.schedule(
            self.idle_timeout_s, self._expire, slot
        )
        self._idle.append(slot)
        self._emit("checkin", conn_id)

    def discard(self, conn_id: int) -> None:
        """Drop a leased connection without pooling it (request failed)."""
        slot = self._take_leased(conn_id)
        self._close(slot, "close_retired")
        self.stats.closed_retired += 1

    def _take_leased(self, conn_id: int) -> _Slot[C]:
        try:
            return self._leased.pop(conn_id)
        except KeyError:
            raise ValueError(
                f"connection {conn_id} is not leased from pool {self.name!r}"
            ) from None

    def _expire(self, slot: _Slot[C]) -> None:
        """Idle timer fired: the keep-alive horizon passed unused."""
        slot.idle_timer = None
        self._idle.remove(slot)
        self._close(slot, "close_idle")
        self.stats.closed_idle += 1

    def _close(self, slot: _Slot[C], event: str) -> None:
        if slot.idle_timer is not None:
            slot.idle_timer.cancel()
            slot.idle_timer = None
        if self.on_close is not None:
            self.on_close(slot.conn)
        self._emit(event, slot.conn_id)

    def _emit(self, event: str, conn_id: int) -> None:
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_pool(
                self.sim.now,
                self.name,
                event,
                conn_id,
                leased=self.n_leased,
                idle=self.n_idle,
            )
