"""Packet trains — Section II.A.

The paper defines a *packet train* (PT) as a burst of packets on an HTTP
connection from one source to one destination; two packets whose spacing
exceeds an inter-train gap belong to different trains (after Jain &
Routhier's classic definition [12]).  Short packet trains (SPTs) carry a
few to dozens of packets; long packet trains (LPTs) carry ⪆128 KB.

This module extracts trains from packet logs (simulated or synthetic)
and classifies them, which the Fig. 1 / Fig. 2 benches use to verify the
synthetic workload reproduces the published train statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["LPT_THRESHOLD_BYTES", "PacketTrain", "extract_trains"]

LPT_THRESHOLD_BYTES = 128 * 1024
"""Trains at or above this size are long packet trains (Sec. II.A)."""


@dataclass(frozen=True)
class PacketTrain:
    """A maximal burst of packets with intra-gap ≤ the train gap."""

    start_time: float
    end_time: float
    n_packets: int
    total_bytes: int

    def __post_init__(self) -> None:
        if self.n_packets < 1:
            raise ValueError("a packet train needs at least one packet")
        if self.total_bytes < 1:
            raise ValueError("a packet train needs at least one byte")
        if self.end_time < self.start_time:
            raise ValueError("train end_time precedes start_time")

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def is_long(self) -> bool:
        """True for LPTs (≥ 128 KB, per the paper's Fig. 1 narrative)."""
        return self.total_bytes >= LPT_THRESHOLD_BYTES


def extract_trains(
    times: Sequence[float],
    sizes: Sequence[int],
    gap: float,
) -> list[PacketTrain]:
    """Split a packet log into trains at inter-packet gaps > ``gap``.

    ``times`` must be non-decreasing; ``sizes`` are per-packet bytes.
    """
    if len(times) != len(sizes):
        raise ValueError("times and sizes must have equal length")
    if gap <= 0:
        raise ValueError("inter-train gap must be positive")
    trains: list[PacketTrain] = []
    if not times:
        return trains

    start = prev = times[0]
    count = 1
    total = sizes[0]
    for t, s in zip(times[1:], sizes[1:]):
        if t < prev:
            raise ValueError("packet times must be non-decreasing")
        if t - prev > gap:
            trains.append(PacketTrain(start, prev, count, total))
            start = t
            count = 0
            total = 0
        count += 1
        total += s
        prev = t
    trains.append(PacketTrain(start, prev, count, total))
    return trains


def train_intervals(trains: Iterable[PacketTrain]) -> list[float]:
    """Gaps between consecutive trains (end of one to start of the next)."""
    trains = list(trains)
    return [
        nxt.start_time - cur.end_time
        for cur, nxt in zip(trains, trains[1:])
    ]
