"""HTTP workload layer: packet trains, ON/OFF generators, app drivers."""

from repro.http.apps import (
    Exchange,
    HttpSession,
    LongTrainSender,
    ScheduledResponder,
    burst_at,
)
from repro.http.packet_train import (
    LPT_THRESHOLD_BYTES,
    PacketTrain,
    extract_trains,
    train_intervals,
)
from repro.http.workload import (
    GAP_CDF_ANCHORS,
    PT_SIZE_CDF_ANCHORS,
    OnOffEvent,
    PiecewiseLogCdf,
    gap_sampler,
    generate_onoff_schedule,
    pt_size_sampler,
    response_schedule,
    segments_for_bytes,
)

__all__ = [
    "Exchange",
    "GAP_CDF_ANCHORS",
    "HttpSession",
    "LPT_THRESHOLD_BYTES",
    "LongTrainSender",
    "OnOffEvent",
    "PT_SIZE_CDF_ANCHORS",
    "PacketTrain",
    "PiecewiseLogCdf",
    "ScheduledResponder",
    "burst_at",
    "extract_trains",
    "gap_sampler",
    "generate_onoff_schedule",
    "pt_size_sampler",
    "response_schedule",
    "segments_for_bytes",
    "train_intervals",
]
