"""Network monitors: queue length, throughput, goodput, window traces.

These wrap :class:`repro.sim.monitor.PeriodicSampler` around the
substrate's counters, mirroring the NS2 trace hooks the paper's figures
were produced from.
"""

from __future__ import annotations

from typing import Optional

from repro.net.link import Link
from repro.sim.kernel import Simulator
from repro.sim.monitor import PeriodicSampler, TimeSeries
from repro.tcp.base import TcpSink, TcpSource

__all__ = [
    "CwndTracer",
    "GoodputMeter",
    "QueueMonitor",
    "SinkThroughputMonitor",
    "ThroughputMonitor",
]


class QueueMonitor:
    """Samples a link's egress backlog (packets) at a fixed period."""

    def __init__(self, sim: Simulator, link: Link, period: float = 1e-3) -> None:
        self._sampler = PeriodicSampler(
            sim, period, lambda: link.backlog_pkts, name=f"qlen:{link.name}"
        )

    def start(self, at: Optional[float] = None) -> "QueueMonitor":
        self._sampler.start(at)
        return self

    def stop(self) -> None:
        self._sampler.stop()

    @property
    def series(self) -> TimeSeries:
        return self._sampler.series

    @property
    def average_pkts(self) -> float:
        return self.series.mean()

    @property
    def peak_pkts(self) -> float:
        return self.series.max()


class ThroughputMonitor:
    """Link throughput in bits/s, sampled as deltas of ``tx_bytes``."""

    def __init__(self, sim: Simulator, link: Link, period: float = 10e-3) -> None:
        self.link = link
        self.period = period
        self._last_bytes = 0
        self._sampler = PeriodicSampler(
            sim, period, self._probe, name=f"thr:{link.name}"
        )

    def _probe(self) -> float:
        current = self.link.stats.tx_bytes
        delta = current - self._last_bytes
        self._last_bytes = current
        return delta * 8.0 / self.period

    def start(self, at: Optional[float] = None) -> "ThroughputMonitor":
        if at is None or at <= self._sampler.sim.now:
            self._last_bytes = self.link.stats.tx_bytes
        self._sampler.start(at)
        return self

    def stop(self) -> None:
        self._sampler.stop()

    @property
    def series(self) -> TimeSeries:
        return self._sampler.series

    def mean_bps(self, start: float = 0.0, end: float = float("inf")) -> float:
        window = self.series.window(start, end)
        return window.mean()


class GoodputMeter:
    """Unique application bytes delivered to a sink per unit time."""

    def __init__(self, sim: Simulator, sink: TcpSink) -> None:
        self.sim = sim
        self.sink = sink
        self._start_time: Optional[float] = None
        self._start_segments = 0

    def start(self) -> "GoodputMeter":
        self._start_time = self.sim.now
        self._start_segments = self.sink.delivered_segments
        return self

    def goodput_bps(self, mss_bytes: int = 1460) -> float:
        if self._start_time is None:
            raise RuntimeError("GoodputMeter.start() was never called")
        elapsed = self.sim.now - self._start_time
        if elapsed <= 0:
            raise RuntimeError("no time has elapsed since start()")
        segments = self.sink.delivered_segments - self._start_segments
        return segments * mss_bytes * 8.0 / elapsed


class SinkThroughputMonitor:
    """Per-flow goodput in bits/s, from deltas of a sink's deliveries.

    This is the per-connection counterpart of :class:`ThroughputMonitor`
    (which measures a whole link); Fig. 10's convergence curves are per
    connection, so they sample sinks.
    """

    def __init__(
        self,
        sim: Simulator,
        sink: TcpSink,
        period: float = 10e-3,
        mss_bytes: int = 1460,
    ) -> None:
        self.sink = sink
        self.period = period
        self.mss_bytes = mss_bytes
        self._last_segments = 0
        self._sampler = PeriodicSampler(
            sim, period, self._probe, name=f"flow:{sink.name}"
        )

    def _probe(self) -> float:
        current = self.sink.delivered_segments
        delta = current - self._last_segments
        self._last_segments = current
        return delta * self.mss_bytes * 8.0 / self.period

    def start(self, at: Optional[float] = None) -> "SinkThroughputMonitor":
        self._sampler.start(at)
        return self

    def stop(self) -> None:
        self._sampler.stop()

    @property
    def series(self) -> TimeSeries:
        return self._sampler.series

    def mean_bps(self, start: float = 0.0, end: float = float("inf")) -> float:
        window = self.series.window(start, end)
        return window.mean()


class CwndTracer:
    """Samples a sender's congestion window (segments) at a fixed period."""

    def __init__(self, sim: Simulator, source: TcpSource, period: float = 1e-3) -> None:
        self._sampler = PeriodicSampler(
            sim, period, lambda: source.cwnd, name=f"cwnd:{source.name}"
        )

    def start(self, at: Optional[float] = None) -> "CwndTracer":
        self._sampler.start(at)
        return self

    def stop(self) -> None:
        self._sampler.stop()

    @property
    def series(self) -> TimeSeries:
        return self._sampler.series
