"""Measurement: completion statistics and network monitors."""

from repro.metrics.faults import FaultReport, fault_report
from repro.metrics.monitors import (
    CwndTracer,
    GoodputMeter,
    QueueMonitor,
    SinkThroughputMonitor,
    ThroughputMonitor,
)
from repro.metrics.ascii import cdf_table, sparkline, strip_chart
from repro.metrics.tracing import LoggedPacket, PacketLogger
from repro.metrics.stats import (
    CompletionSummary,
    act,
    cdf_points,
    completion_times,
    jain_fairness,
    percentile,
    summarize,
)

__all__ = [
    "CompletionSummary",
    "CwndTracer",
    "FaultReport",
    "GoodputMeter",
    "LoggedPacket",
    "PacketLogger",
    "QueueMonitor",
    "SinkThroughputMonitor",
    "ThroughputMonitor",
    "act",
    "cdf_points",
    "cdf_table",
    "completion_times",
    "fault_report",
    "jain_fairness",
    "percentile",
    "sparkline",
    "strip_chart",
    "summarize",
]
