"""Completion-time statistics: the paper's headline metrics.

The evaluation reports average completion time (ACT) of packet trains,
min/max completion times, average response completion time (ARCT),
completion-time CDFs, and Jain's fairness index for throughput shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.tcp.base import Message

__all__ = [
    "CompletionSummary",
    "act",
    "cdf_points",
    "completion_times",
    "jain_fairness",
    "percentile",
    "summarize",
]


def completion_times(messages: Iterable[Message]) -> list[float]:
    """Completion times of the *completed* messages, in seconds."""
    return [m.completion_time for m in messages if m.finish_time is not None]


def act(times: Sequence[float]) -> float:
    """Average completion time.  Raises on an empty sample."""
    # len(), not truthiness: a numpy array raises "truth value is
    # ambiguous" under ``not arr`` for any length > 1.
    if len(times) == 0:
        raise ValueError("no completed messages to average")
    return float(np.mean(times))


def percentile(times: Sequence[float], q: float) -> float:
    """The q-th percentile (0–100) of completion times."""
    if len(times) == 0:
        raise ValueError("no samples")
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    return float(np.percentile(times, q))


@dataclass(frozen=True)
class CompletionSummary:
    """Mean / extremes / tail of a completion-time sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p99: float

    def as_row(self, scale: float = 1e3) -> str:
        """Fixed-width text row (default in milliseconds)."""
        return (
            f"n={self.count:5d}  mean={self.mean * scale:9.3f}  "
            f"min={self.minimum * scale:9.3f}  max={self.maximum * scale:9.3f}  "
            f"p50={self.p50 * scale:9.3f}  p99={self.p99 * scale:9.3f}"
        )


def summarize(times: Sequence[float]) -> CompletionSummary:
    """Summary statistics for a completion-time sample."""
    if len(times) == 0:
        raise ValueError("no samples to summarize")
    arr = np.asarray(times, dtype=float)
    return CompletionSummary(
        count=len(arr),
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.percentile(arr, 50)),
        p99=float(np.percentile(arr, 99)),
    )


def cdf_points(samples: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as ``(sorted values, cumulative probabilities)``."""
    if not len(samples):
        raise ValueError("no samples")
    values = np.sort(np.asarray(samples, dtype=float))
    probs = np.arange(1, len(values) + 1) / len(values)
    return values, probs


def jain_fairness(shares: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)``; 1.0 is perfectly fair."""
    if len(shares) == 0:
        raise ValueError("no shares")
    arr = np.asarray(shares, dtype=float)
    if np.any(arr < 0):
        raise ValueError("shares must be non-negative")
    denom = len(arr) * float(np.sum(arr**2))
    if denom == 0:
        return 1.0  # all-zero shares: degenerate but equal
    return float(np.sum(arr)) ** 2 / denom
