"""Terminal rendering of simulation results.

The examples and the CLI runner visualize time series and CDFs without
any plotting dependency: sparklines for single series, strip charts for
a handful of flows, and fixed-width CDF tables.  Pure functions over
:class:`~repro.sim.monitor.TimeSeries` and number sequences, so they
are unit-testable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sim.monitor import TimeSeries

__all__ = ["cdf_table", "sparkline", "strip_chart"]

SPARK_GLYPHS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line bar rendering of ``values``, resampled to ``width``.

    Empty input gives an empty string; a constant series renders at the
    lowest non-blank glyph so it stays visible.
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    values = list(values)
    if not values:
        return ""
    arr = np.asarray(values, dtype=float)
    # Resample by bucket-averaging onto `width` columns.
    edges = np.linspace(0, len(arr), width + 1).astype(int)
    columns = [
        arr[a:b].mean() if b > a else arr[min(a, len(arr) - 1)]
        for a, b in zip(edges, edges[1:])
    ]
    lo, hi = float(min(columns)), float(max(columns))
    span = hi - lo
    glyphs = []
    for c in columns:
        if span == 0:
            level = 1
        else:
            level = 1 + int((c - lo) / span * (len(SPARK_GLYPHS) - 2))
        glyphs.append(SPARK_GLYPHS[level])
    return "".join(glyphs)


def strip_chart(
    series: Sequence[TimeSeries],
    peak: float,
    rows: int = 30,
    width: int = 60,
    glyphs: str = "123456789",
) -> list[str]:
    """Render several flows' time series as rows of positioned digits.

    Each output row covers one time slice; each series' mean value in
    that slice places its digit in a column proportional to
    ``value / peak``.  Returns the rows as strings (caller prints).
    """
    if peak <= 0:
        raise ValueError("peak must be positive")
    if rows < 1 or width < 2:
        raise ValueError("need at least 1 row and 2 columns")
    populated = [s for s in series if len(s)]
    if not populated:
        return []
    t0 = min(s.times[0] for s in populated)
    t1 = max(s.times[-1] for s in populated)
    if t1 <= t0:
        return []
    step = (t1 - t0) / rows
    out = []
    for row in range(rows):
        start, end = t0 + row * step, t0 + (row + 1) * step
        line = [" "] * width
        for idx, s in enumerate(series):
            window = s.window(start, end)
            value = window.mean() if len(window) else 0.0
            col = min(width - 1, int(value / peak * (width - 1)))
            line[col] = glyphs[idx % len(glyphs)]
        out.append(f"{start:9.3f}s |{''.join(line)}|")
    return out


def cdf_table(
    samples: Sequence[float],
    quantiles: Sequence[float] = (0.5, 0.9, 0.95, 0.99, 1.0),
    scale: float = 1e3,
    unit: str = "ms",
) -> list[str]:
    """Fixed-width quantile rows for a sample of completion times."""
    if not len(samples):
        raise ValueError("no samples")
    arr = np.sort(np.asarray(samples, dtype=float))
    rows = []
    for q in quantiles:
        if not 0 <= q <= 1:
            raise ValueError("quantiles must be in [0, 1]")
        value = float(np.quantile(arr, q))
        rows.append(f"p{q * 100:5.1f}  {value * scale:10.3f} {unit}")
    return rows
