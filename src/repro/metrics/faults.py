"""Fault accounting: injected impairments versus congestion.

A run under fault injection loses packets two ways — the network's own
congestion (queue overflow, RED early drops) and the injector's
deliberate impairments (loss bursts, corruption, outages, buffer
evictions).  Conflating them would make every fault sweep unreadable:
"did TRIM lose goodput because its window collapsed, or because we cut
the cable?"  :class:`FaultReport` keeps the two ledgers side by side,
built from the injector's :class:`~repro.faults.injector.FaultStats`
and the network's queue counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultStats
    from repro.net.topology import Network

__all__ = ["FaultReport", "fault_report"]


@dataclass(frozen=True)
class FaultReport:
    """Injected-versus-congestion loss ledger for one run."""

    #: packets destroyed by LossBurst windows.
    injected_drops: int = 0
    #: packets destroyed by Corrupt windows (dropped at the checksum).
    corrupted: int = 0
    #: packets lost mid-flight to a LinkDown outage.
    down_drops: int = 0
    #: resident packets evicted by BufferResize shrinks.
    evictions: int = 0
    #: deliveries that received DelayJitter extra latency (not lost).
    delayed: int = 0
    #: LinkDown events applied.
    outages: int = 0
    #: background flows the injector started.
    surge_flows: int = 0
    #: packets the *network* refused at its queues (tail drops and RED
    #: early drops) — congestion's ledger, untouched by the injector.
    congestion_drops: int = 0

    @property
    def injected_losses(self) -> int:
        """Packets the injector destroyed, by any mechanism."""
        return (self.injected_drops + self.corrupted + self.down_drops
                + self.evictions)

    @property
    def total_losses(self) -> int:
        """Everything lost: injected plus congestion."""
        return self.injected_losses + self.congestion_drops


def fault_report(network: "Network", stats: "FaultStats") -> FaultReport:
    """Build the ledger from a finished run's network and injector."""
    return FaultReport(
        injected_drops=stats.injected_drops,
        corrupted=stats.corrupted,
        down_drops=stats.down_drops,
        evictions=stats.evictions,
        delayed=stats.delayed,
        outages=stats.outages,
        surge_flows=stats.surge_flows,
        congestion_drops=network.total_dropped(),
    )
