"""Packet-level tracing — the NS2 trace-file substitute.

:class:`PacketLogger` hooks a link's delivery path and records
``(time, flow_id, seq, size)`` for every packet (optionally filtered to
one flow or to data packets).  The log feeds the Section II.A
packet-train analysis (:func:`repro.http.packet_train.extract_trains`),
which is how Fig. 1's staircase was produced from live traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.http.packet_train import PacketTrain, extract_trains
from repro.net.link import Link
from repro.net.packet import Packet

__all__ = ["LoggedPacket", "PacketLogger"]


@dataclass(frozen=True)
class LoggedPacket:
    """One trace record."""

    time: float
    flow_id: int
    seq: int
    size_bytes: int
    is_retransmission: bool


class PacketLogger:
    """Records every packet a link delivers.

    Registers as a link delivery *observer* (``Link.add_observer``), so
    any number of loggers and monitors can share a link and detach in
    any order.  (The old save-and-restore ``on_deliver`` chaining
    silently dropped other observers whenever detaches were not strictly
    LIFO; simlint's SIM009 now flags that idiom.)
    """

    def __init__(
        self,
        link: Link,
        flow_id: Optional[int] = None,
        data_only: bool = True,
    ) -> None:
        self.link = link
        self.flow_id = flow_id
        self.data_only = data_only
        self.records: list[LoggedPacket] = []
        self._attached = True
        link.add_observer(self._on_deliver)

    def _on_deliver(self, pkt: Packet) -> None:
        if self.data_only and not pkt.is_data:
            return
        if self.flow_id is not None and pkt.flow_id != self.flow_id:
            return
        self.records.append(
            LoggedPacket(
                time=self.link.sim.now,
                flow_id=pkt.flow_id,
                seq=pkt.seq,
                size_bytes=pkt.size_bytes,
                is_retransmission=pkt.is_retransmission,
            )
        )

    def detach(self) -> None:
        """Stop logging.  Idempotent; other observers are unaffected."""
        if self._attached:
            self._attached = False
            self.link.remove_observer(self._on_deliver)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def times(self) -> list[float]:
        return [r.time for r in self.records]

    @property
    def sizes(self) -> list[int]:
        return [r.size_bytes for r in self.records]

    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.records)

    def trains(self, gap: float) -> list[PacketTrain]:
        """Extract packet trains from the log (Sec. II.A definition)."""
        return extract_trains(self.times, self.sizes, gap=gap)
