"""Egress queues: drop-tail, ECN-threshold marking, and classic RED.

``DropTailQueue`` is the paper's COTS-switch model: a FIFO measured in
packets that silently drops arrivals once full.  ``EcnQueue`` adds
DCTCP-style marking — an arriving ECN-capable packet has CE set when the
instantaneous queue occupancy is at or above the marking threshold; it
still tail-drops at capacity, so non-ECN flows see normal losses.
``RedQueue`` implements Floyd & Jacobson's Random Early Detection as an
additional AQM substrate (NS2 ships it; the DCTCP lineage compares
against it), with an optional mark-instead-of-drop ECN mode.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import Packet
from repro.sim.randomness import seeded_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.telemetry import QueueTap

__all__ = ["DropTailQueue", "EcnQueue", "QueueStats", "RedQueue"]


@dataclass(slots=True)
class QueueStats:
    """Counters a queue keeps over its lifetime."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    marked: int = 0
    peak_length: int = 0
    #: resident packets destroyed by a capacity shrink (fault injection's
    #: BufferResize), accounted apart from ``dropped`` so congestion
    #: losses and injected losses stay distinguishable.  Conservation:
    #: ``enqueued == dequeued + evicted + len(queue)``.
    evicted: int = 0


class DropTailQueue:
    """FIFO queue with a fixed capacity in packets.

    ``capacity_pkts`` counts waiting packets only; the packet currently
    being serialized by the link is not in the queue (matching NS2's
    DropTail accounting, which the paper's "buffer of 100 packets ⇒ at
    most 118 packets in flight" arithmetic assumes).
    """

    def __init__(self, capacity_pkts: int, name: str = "") -> None:
        if capacity_pkts < 1:
            raise ValueError("queue capacity must be at least 1 packet")
        self.capacity_pkts = capacity_pkts
        self.name = name
        self.stats = QueueStats()
        self._fifo: deque[Packet] = deque()
        self.on_drop: Optional[Callable[[Packet], None]] = None
        #: flight-recorder tap, installed by the owning link's ``queue``
        #: setter; queues report drop/mark/evict *causes* through it
        #: (occupancy sampling stays with the link, which has the clock).
        self.tap: Optional["QueueTap"] = None

    def __len__(self) -> int:
        return len(self._fifo)

    def tick(self, now: float) -> None:
        """Advance the queue's notion of time (used by time-aware AQMs;
        a no-op for plain drop-tail).  Links call this before touching
        the queue so the queue never needs a simulator reference."""

    def enqueue(self, pkt: Packet) -> bool:
        """Add ``pkt``; returns False (and drops it) when full."""
        if len(self._fifo) >= self.capacity_pkts:
            self.stats.dropped += 1
            if self.on_drop is not None:
                self.on_drop(pkt)
            if self.tap is not None:
                self.tap.drop(len(self._fifo))
            return False
        self._admit(pkt)
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty."""
        if not self._fifo:
            return None
        self.stats.dequeued += 1
        return self._fifo.popleft()

    def resize(self, capacity_pkts: int) -> int:
        """Change the capacity at runtime; returns the eviction count.

        Drop semantics, chosen to mirror a switch ASIC reclaiming buffer
        cells: when the new capacity is below the resident backlog, the
        *newest* packets are evicted (they are the ones a smaller buffer
        would have tail-dropped on arrival), counted in
        ``stats.evicted`` and reported to ``on_drop``.  Growing the
        capacity never touches resident packets.  This is the one
        sanctioned mutation of a live queue's capacity — fault plans
        reach it through ``BufferResize`` events (simlint SIM008 flags
        direct capacity writes elsewhere).
        """
        if capacity_pkts < 1:
            raise ValueError("queue capacity must be at least 1 packet")
        self.capacity_pkts = capacity_pkts
        evicted = 0
        while len(self._fifo) > capacity_pkts:
            pkt = self._fifo.pop()  # newest first
            self.stats.evicted += 1
            evicted += 1
            if self.on_drop is not None:
                self.on_drop(pkt)
            if self.tap is not None:
                self.tap.evict(len(self._fifo))
        return evicted

    def _admit(self, pkt: Packet) -> None:
        self._fifo.append(pkt)
        self.stats.enqueued += 1
        if len(self._fifo) > self.stats.peak_length:
            self.stats.peak_length = len(self._fifo)


class EcnQueue(DropTailQueue):
    """Drop-tail queue with DCTCP threshold marking.

    An ECN-capable arrival is CE-marked when the queue already holds at
    least ``mark_threshold_pkts`` packets (instantaneous marking, as the
    DCTCP paper prescribes for low-latency operation).
    """

    def __init__(
        self,
        capacity_pkts: int,
        mark_threshold_pkts: int,
        name: str = "",
    ) -> None:
        super().__init__(capacity_pkts, name)
        if not 0 < mark_threshold_pkts <= capacity_pkts:
            raise ValueError(
                "mark threshold must be in (0, capacity]; got "
                f"{mark_threshold_pkts} for capacity {capacity_pkts}"
            )
        self.mark_threshold_pkts = mark_threshold_pkts

    def enqueue(self, pkt: Packet) -> bool:
        if len(self._fifo) >= self.capacity_pkts:
            self.stats.dropped += 1
            if self.on_drop is not None:
                self.on_drop(pkt)
            if self.tap is not None:
                self.tap.drop(len(self._fifo))
            return False
        if pkt.ecn_capable and len(self._fifo) >= self.mark_threshold_pkts:
            pkt.ecn_ce = True
            self.stats.marked += 1
            if self.tap is not None:
                self.tap.mark(len(self._fifo))
        self._admit(pkt)
        return True

    def resize(self, capacity_pkts: int) -> int:
        """Resize, clamping the marking threshold into (0, capacity]."""
        evicted = super().resize(capacity_pkts)
        if self.mark_threshold_pkts > capacity_pkts:
            self.mark_threshold_pkts = capacity_pkts
        return evicted


class RedQueue(DropTailQueue):
    """Random Early Detection (Floyd & Jacobson 1993).

    The average queue length is an EWMA updated on every arrival, with
    the standard idle-time correction (the average decays as if ``m``
    small packets had drained while the queue sat empty).  Between
    ``min_threshold`` and ``max_threshold`` arrivals are dropped (or
    CE-marked when ``ecn_mode`` and the packet is ECN-capable) with the
    count-corrected probability ``pa = pb / (1 − count·pb)``; at or
    above ``max_threshold`` every arrival is dropped/marked.  Physical
    capacity still tail-drops.
    """

    WEIGHT = 0.002  # the classic w_q

    def __init__(
        self,
        capacity_pkts: int,
        min_threshold: float,
        max_threshold: float,
        max_probability: float = 0.1,
        ecn_mode: bool = False,
        mean_tx_time: float = 12e-6,  # one MSS at 1 Gbps
        seed: int = 0,
        name: str = "",
    ) -> None:
        super().__init__(capacity_pkts, name)
        if not 0 < min_threshold < max_threshold <= capacity_pkts:
            raise ValueError(
                "need 0 < min_threshold < max_threshold <= capacity"
            )
        if not 0 < max_probability <= 1:
            raise ValueError("max_probability must be in (0, 1]")
        if mean_tx_time <= 0:
            raise ValueError("mean_tx_time must be positive")
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_probability = max_probability
        self.ecn_mode = ecn_mode
        self.mean_tx_time = mean_tx_time
        self.avg = 0.0
        self._count = -1
        self._idle_since: Optional[float] = 0.0
        self._rng = seeded_rng(seed)
        #: the caller (link) advances this clock via tick(); kept
        #: explicit so the queue stays independent of the simulator.
        self.now = 0.0

    def tick(self, now: float) -> None:
        self.now = now

    def enqueue(self, pkt: Packet) -> bool:
        self._update_average()
        if len(self._fifo) >= self.capacity_pkts:
            self.stats.dropped += 1
            self._count = 0
            if self.on_drop is not None:
                self.on_drop(pkt)
            if self.tap is not None:
                self.tap.drop(len(self._fifo))
            return False
        if self._early_action():
            if self.ecn_mode and pkt.ecn_capable:
                pkt.ecn_ce = True
                self.stats.marked += 1
                if self.tap is not None:
                    self.tap.mark(len(self._fifo))
            else:
                self.stats.dropped += 1
                self._count = 0
                if self.on_drop is not None:
                    self.on_drop(pkt)
                if self.tap is not None:
                    self.tap.early_drop(len(self._fifo))
                return False
        self._admit(pkt)
        return True

    def dequeue(self) -> Optional[Packet]:
        pkt = super().dequeue()
        if pkt is not None and not self._fifo:
            self._idle_since = self.now
        return pkt

    def resize(self, capacity_pkts: int) -> int:
        """Resize, rescaling both RED thresholds when the new capacity
        falls below ``max_threshold`` (their ratio — and therefore the
        shape of the drop-probability ramp — is preserved)."""
        evicted = super().resize(capacity_pkts)
        if self.max_threshold > capacity_pkts:
            scale = capacity_pkts / self.max_threshold
            self.max_threshold = float(capacity_pkts)
            self.min_threshold *= scale
        return evicted

    # ------------------------------------------------------------------
    def _update_average(self) -> None:
        q = len(self._fifo)
        if q == 0 and self._idle_since is not None:
            # Idle correction: decay as if m packets drained meanwhile.
            m = max(0.0, (self.now - self._idle_since) / self.mean_tx_time)
            self.avg *= (1.0 - self.WEIGHT) ** m
            self._idle_since = None
        else:
            self.avg = (1.0 - self.WEIGHT) * self.avg + self.WEIGHT * q

    def _early_action(self) -> bool:
        """True when RED decides to drop/mark this arrival."""
        if self.avg < self.min_threshold:
            self._count = -1
            return False
        if self.avg >= self.max_threshold:
            self._count = 0
            return True
        self._count += 1
        pb = self.max_probability * (
            (self.avg - self.min_threshold)
            / (self.max_threshold - self.min_threshold)
        )
        denominator = 1.0 - self._count * pb
        pa = 1.0 if denominator <= 0 else min(1.0, pb / denominator)
        if self._rng.random() < pa:
            self._count = 0
            return True
        return False
