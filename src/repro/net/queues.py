"""Egress queues: drop-tail, ECN-threshold marking, and classic RED.

``DropTailQueue`` is the paper's COTS-switch model: a FIFO measured in
packets that silently drops arrivals once full.  ``EcnQueue`` adds
DCTCP-style marking — an arriving ECN-capable packet has CE set when the
instantaneous queue occupancy is at or above the marking threshold; it
still tail-drops at capacity, so non-ECN flows see normal losses.
``RedQueue`` implements Floyd & Jacobson's Random Early Detection as an
additional AQM substrate (NS2 ships it; the DCTCP lineage compares
against it), with an optional mark-instead-of-drop ECN mode.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import Packet
from repro.sim.randomness import seeded_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.telemetry import QueueTap

__all__ = ["DropTailQueue", "EcnQueue", "FairQueue", "QueueStats", "RedQueue"]


@dataclass(slots=True)
class QueueStats:
    """Counters a queue keeps over its lifetime."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    marked: int = 0
    peak_length: int = 0
    #: resident packets destroyed by a capacity shrink (fault injection's
    #: BufferResize), accounted apart from ``dropped`` so congestion
    #: losses and injected losses stay distinguishable.  Conservation:
    #: ``enqueued == dequeued + evicted + len(queue)``.
    evicted: int = 0


class DropTailQueue:
    """FIFO queue with a fixed capacity in packets.

    ``capacity_pkts`` counts waiting packets only; the packet currently
    being serialized by the link is not in the queue (matching NS2's
    DropTail accounting, which the paper's "buffer of 100 packets ⇒ at
    most 118 packets in flight" arithmetic assumes).
    """

    def __init__(self, capacity_pkts: int, name: str = "") -> None:
        if capacity_pkts < 1:
            raise ValueError("queue capacity must be at least 1 packet")
        self.capacity_pkts = capacity_pkts
        self.name = name
        self.stats = QueueStats()
        self._fifo: deque[Packet] = deque()
        self.on_drop: Optional[Callable[[Packet], None]] = None
        #: flight-recorder tap, installed by the owning link's ``queue``
        #: setter; queues report drop/mark/evict *causes* through it
        #: (occupancy sampling stays with the link, which has the clock).
        self.tap: Optional["QueueTap"] = None

    def __len__(self) -> int:
        return len(self._fifo)

    def tick(self, now: float) -> None:
        """Advance the queue's notion of time (used by time-aware AQMs;
        a no-op for plain drop-tail).  Links call this before touching
        the queue so the queue never needs a simulator reference."""

    def enqueue(self, pkt: Packet) -> bool:
        """Add ``pkt``; returns False (and drops it) when full."""
        if len(self._fifo) >= self.capacity_pkts:
            self.stats.dropped += 1
            if self.on_drop is not None:
                self.on_drop(pkt)
            if self.tap is not None:
                self.tap.drop(len(self._fifo))
            return False
        self._admit(pkt)
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty."""
        if not self._fifo:
            return None
        self.stats.dequeued += 1
        return self._fifo.popleft()

    def resize(self, capacity_pkts: int) -> int:
        """Change the capacity at runtime; returns the eviction count.

        Drop semantics, chosen to mirror a switch ASIC reclaiming buffer
        cells: when the new capacity is below the resident backlog, the
        *newest* packets are evicted (they are the ones a smaller buffer
        would have tail-dropped on arrival), counted in
        ``stats.evicted`` and reported to ``on_drop``.  Growing the
        capacity never touches resident packets.  This is the one
        sanctioned mutation of a live queue's capacity — fault plans
        reach it through ``BufferResize`` events (simlint SIM008 flags
        direct capacity writes elsewhere).
        """
        if capacity_pkts < 1:
            raise ValueError("queue capacity must be at least 1 packet")
        self.capacity_pkts = capacity_pkts
        evicted = 0
        while len(self._fifo) > capacity_pkts:
            pkt = self._fifo.pop()  # newest first
            self.stats.evicted += 1
            evicted += 1
            if self.on_drop is not None:
                self.on_drop(pkt)
            if self.tap is not None:
                self.tap.evict(len(self._fifo))
        return evicted

    def _admit(self, pkt: Packet) -> None:
        self._fifo.append(pkt)
        self.stats.enqueued += 1
        if len(self._fifo) > self.stats.peak_length:
            self.stats.peak_length = len(self._fifo)


class EcnQueue(DropTailQueue):
    """Drop-tail queue with DCTCP threshold marking.

    An ECN-capable arrival is CE-marked when the queue already holds at
    least ``mark_threshold_pkts`` packets (instantaneous marking, as the
    DCTCP paper prescribes for low-latency operation).
    """

    def __init__(
        self,
        capacity_pkts: int,
        mark_threshold_pkts: int,
        name: str = "",
    ) -> None:
        super().__init__(capacity_pkts, name)
        if not 0 < mark_threshold_pkts <= capacity_pkts:
            raise ValueError(
                "mark threshold must be in (0, capacity]; got "
                f"{mark_threshold_pkts} for capacity {capacity_pkts}"
            )
        self.mark_threshold_pkts = mark_threshold_pkts

    def enqueue(self, pkt: Packet) -> bool:
        if len(self._fifo) >= self.capacity_pkts:
            self.stats.dropped += 1
            if self.on_drop is not None:
                self.on_drop(pkt)
            if self.tap is not None:
                self.tap.drop(len(self._fifo))
            return False
        if pkt.ecn_capable and len(self._fifo) >= self.mark_threshold_pkts:
            pkt.ecn_ce = True
            self.stats.marked += 1
            if self.tap is not None:
                self.tap.mark(len(self._fifo))
        self._admit(pkt)
        return True

    def resize(self, capacity_pkts: int) -> int:
        """Resize, clamping the marking threshold into (0, capacity]."""
        evicted = super().resize(capacity_pkts)
        if self.mark_threshold_pkts > capacity_pkts:
            self.mark_threshold_pkts = capacity_pkts
        return evicted


class FairQueue(DropTailQueue):
    """FairQ/HSCC-style switch-assisted per-flow fairness discipline.

    The switch keeps one FIFO per flow and serves the FIFOs round-robin
    (equal-size data segments make round-robin equivalent to
    deficit-round-robin here, as in the FairQ line of work).  Shared
    buffer, two assists:

    * **longest-queue drop** — an arrival that finds the shared buffer
      full evicts the head of the currently longest per-flow backlog
      (the flow hogging the buffer pays, not the newcomer), unless the
      newcomer *is* the hog, in which case the arrival itself drops;
    * **fair-share feedback** — an ECN-capable arrival whose flow
      already holds at least ``capacity / active_flows`` packets is
      CE-marked, telling exactly the over-share senders to back off
      while under-share flows keep ramping.

    Conservation identity and the reporting surface (``stats``,
    ``on_drop``, ``tap``) match :class:`DropTailQueue` exactly, so the
    runtime invariant monitor and the flight recorder work unchanged;
    ``resize`` evicts from the longest backlogs first (the shared
    buffer reclaims cells from the hogs).
    """

    def __init__(self, capacity_pkts: int, name: str = "") -> None:
        super().__init__(capacity_pkts, name)
        #: per-flow FIFOs, insertion-ordered (dict order is the
        #: round-robin seeding order for determinism).
        self._flows: dict[int, deque[Packet]] = {}
        #: round-robin service order over flows with backlog.
        self._rr: deque[int] = deque()
        self._resident = 0

    def __len__(self) -> int:
        return self._resident

    # ------------------------------------------------------------------
    def fair_share_pkts(self) -> int:
        """Per-flow fair share of the buffer given the active flows."""
        active = sum(1 for q in self._flows.values() if q)
        return max(1, self.capacity_pkts // max(1, active))

    def backlog_of(self, flow_id: int) -> int:
        """Resident packets of one flow (0 for unknown flows)."""
        q = self._flows.get(flow_id)
        return 0 if q is None else len(q)

    def _longest_flow(self) -> int:
        """The flow with the largest backlog (ties: lowest flow id)."""
        return max(
            (fid for fid, q in self._flows.items() if q),
            key=lambda fid: (len(self._flows[fid]), -fid),
        )

    def _drop_resident_head(self, flow_id: int) -> None:
        """Remove the head packet of ``flow_id``'s FIFO to make room.

        A longest-queue-drop removal is a congestion loss (``dropped``,
        ``on_drop``) of an already-admitted packet, so it must *also*
        count as an eviction to keep the conservation identity
        ``enqueued == dequeued + evicted + resident`` balanced.
        """
        q = self._flows[flow_id]
        victim = q.popleft()
        if not q:
            self._rr.remove(flow_id)
        self._resident -= 1
        self.stats.dropped += 1
        self.stats.evicted += 1
        if self.on_drop is not None:
            self.on_drop(victim)
        if self.tap is not None:
            self.tap.drop(self._resident)

    def enqueue(self, pkt: Packet) -> bool:
        if self._resident >= self.capacity_pkts:
            hog = self._longest_flow()
            if hog == pkt.flow_id or self.backlog_of(hog) <= 1:
                # The newcomer is the hog (or every backlog is a single
                # packet): tail-drop the arrival itself.
                self.stats.dropped += 1
                if self.on_drop is not None:
                    self.on_drop(pkt)
                if self.tap is not None:
                    self.tap.drop(self._resident)
                return False
            self._drop_resident_head(hog)
        if (
            pkt.ecn_capable
            and self.backlog_of(pkt.flow_id) >= self.fair_share_pkts()
        ):
            pkt.ecn_ce = True
            self.stats.marked += 1
            if self.tap is not None:
                self.tap.mark(self._resident)
        self._admit(pkt)
        return True

    def _admit(self, pkt: Packet) -> None:
        q = self._flows.get(pkt.flow_id)
        if q is None:
            q = self._flows[pkt.flow_id] = deque()
        if not q:
            self._rr.append(pkt.flow_id)
        q.append(pkt)
        self._resident += 1
        self.stats.enqueued += 1
        if self._resident > self.stats.peak_length:
            self.stats.peak_length = self._resident

    def dequeue(self) -> Optional[Packet]:
        while self._rr:
            flow_id = self._rr.popleft()
            q = self._flows[flow_id]
            if not q:
                continue  # emptied by a drop/evict since it was queued
            pkt = q.popleft()
            if q:
                self._rr.append(flow_id)
            self._resident -= 1
            self.stats.dequeued += 1
            return pkt
        return None

    def resize(self, capacity_pkts: int) -> int:
        """Shrink by reclaiming cells from the longest backlogs first
        (newest packet of the hog flow each time), counted as
        evictions exactly like the drop-tail model."""
        if capacity_pkts < 1:
            raise ValueError("queue capacity must be at least 1 packet")
        self.capacity_pkts = capacity_pkts
        evicted = 0
        while self._resident > capacity_pkts:
            hog = self._longest_flow()
            q = self._flows[hog]
            pkt = q.pop()  # newest of the hog
            if not q:
                self._rr.remove(hog)
            self._resident -= 1
            self.stats.evicted += 1
            evicted += 1
            if self.on_drop is not None:
                self.on_drop(pkt)
            if self.tap is not None:
                self.tap.evict(self._resident)
        return evicted


class RedQueue(DropTailQueue):
    """Random Early Detection (Floyd & Jacobson 1993).

    The average queue length is an EWMA updated on every arrival, with
    the standard idle-time correction (the average decays as if ``m``
    small packets had drained while the queue sat empty).  Between
    ``min_threshold`` and ``max_threshold`` arrivals are dropped (or
    CE-marked when ``ecn_mode`` and the packet is ECN-capable) with the
    count-corrected probability ``pa = pb / (1 − count·pb)``; at or
    above ``max_threshold`` every arrival is dropped/marked.  Physical
    capacity still tail-drops.
    """

    WEIGHT = 0.002  # the classic w_q

    def __init__(
        self,
        capacity_pkts: int,
        min_threshold: float,
        max_threshold: float,
        max_probability: float = 0.1,
        ecn_mode: bool = False,
        mean_tx_time: float = 12e-6,  # one MSS at 1 Gbps
        seed: int = 0,
        name: str = "",
    ) -> None:
        super().__init__(capacity_pkts, name)
        if not 0 < min_threshold < max_threshold <= capacity_pkts:
            raise ValueError(
                "need 0 < min_threshold < max_threshold <= capacity"
            )
        if not 0 < max_probability <= 1:
            raise ValueError("max_probability must be in (0, 1]")
        if mean_tx_time <= 0:
            raise ValueError("mean_tx_time must be positive")
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_probability = max_probability
        self.ecn_mode = ecn_mode
        self.mean_tx_time = mean_tx_time
        self.avg = 0.0
        self._count = -1
        self._idle_since: Optional[float] = 0.0
        self._rng = seeded_rng(seed)
        #: the caller (link) advances this clock via tick(); kept
        #: explicit so the queue stays independent of the simulator.
        self.now = 0.0

    def tick(self, now: float) -> None:
        self.now = now

    def enqueue(self, pkt: Packet) -> bool:
        self._update_average()
        if len(self._fifo) >= self.capacity_pkts:
            self.stats.dropped += 1
            self._count = 0
            if self.on_drop is not None:
                self.on_drop(pkt)
            if self.tap is not None:
                self.tap.drop(len(self._fifo))
            return False
        if self._early_action():
            if self.ecn_mode and pkt.ecn_capable:
                pkt.ecn_ce = True
                self.stats.marked += 1
                if self.tap is not None:
                    self.tap.mark(len(self._fifo))
            else:
                self.stats.dropped += 1
                self._count = 0
                if self.on_drop is not None:
                    self.on_drop(pkt)
                if self.tap is not None:
                    self.tap.early_drop(len(self._fifo))
                return False
        self._admit(pkt)
        return True

    def dequeue(self) -> Optional[Packet]:
        pkt = super().dequeue()
        if pkt is not None and not self._fifo:
            self._idle_since = self.now
        return pkt

    def resize(self, capacity_pkts: int) -> int:
        """Resize, rescaling both RED thresholds when the new capacity
        falls below ``max_threshold`` (their ratio — and therefore the
        shape of the drop-probability ramp — is preserved)."""
        evicted = super().resize(capacity_pkts)
        if self.max_threshold > capacity_pkts:
            scale = capacity_pkts / self.max_threshold
            self.max_threshold = float(capacity_pkts)
            self.min_threshold *= scale
        return evicted

    # ------------------------------------------------------------------
    def _update_average(self) -> None:
        q = len(self._fifo)
        if q == 0 and self._idle_since is not None:
            # Idle correction: decay as if m packets drained meanwhile.
            m = max(0.0, (self.now - self._idle_since) / self.mean_tx_time)
            self.avg *= (1.0 - self.WEIGHT) ** m
            self._idle_since = None
        else:
            self.avg = (1.0 - self.WEIGHT) * self.avg + self.WEIGHT * q

    def _early_action(self) -> bool:
        """True when RED decides to drop/mark this arrival."""
        if self.avg < self.min_threshold:
            self._count = -1
            return False
        if self.avg >= self.max_threshold:
            self._count = 0
            return True
        self._count += 1
        pb = self.max_probability * (
            (self.avg - self.min_threshold)
            / (self.max_threshold - self.min_threshold)
        )
        denominator = 1.0 - self._count * pb
        pa = 1.0 if denominator <= 0 else min(1.0, pb / denominator)
        if self._rng.random() < pa:
            self._count = 0
            return True
        return False
