"""Nodes: hosts (endpoints) and switches (store-and-forward routers).

A node owns one egress :class:`~repro.net.link.Link` per neighbour.
Switches forward on packet destination via a static routing table that
may hold several equal-cost next hops (ECMP); the hop is picked by
hashing the flow id, so a connection's packets stay on one path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

from repro.net.packet import Packet
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link

__all__ = ["Agent", "Host", "Node", "Switch"]


class Agent(Protocol):
    """Anything attachable to a host that consumes packets for a flow."""

    def receive_packet(self, pkt: Packet) -> None: ...


class Node:
    """Base class holding identity and per-neighbour egress links."""

    def __init__(self, sim: Simulator, node_id: int, name: str = "") -> None:
        self.sim = sim
        self.node_id = node_id
        self.name = name or f"node{node_id}"
        self.egress: dict[int, "Link"] = {}

    def attach_link(self, link: "Link") -> None:
        """Register ``link`` as this node's egress towards its far end."""
        if link.src_node is not self:
            raise ValueError(f"link {link.name} does not originate at {self.name}")
        self.egress[link.dst_node.node_id] = link

    def receive(self, pkt: Packet) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name})"


class Host(Node):
    """An endpoint: demultiplexes arriving packets to transport agents.

    A host usually has a single egress link (its NIC).  Data packets are
    delivered to the sink registered for the flow; ACKs to the source.
    Both are registered under the same flow id on their own hosts.
    """

    def __init__(self, sim: Simulator, node_id: int, name: str = "") -> None:
        super().__init__(sim, node_id, name)
        self._agents: dict[int, Agent] = {}
        self._nic: Optional["Link"] = None  # memoized single-egress link

    def attach_link(self, link: "Link") -> None:
        super().attach_link(link)
        self._nic = None  # a second link invalidates the single-NIC cache

    def attach_agent(self, flow_id: int, agent: Agent) -> None:
        if flow_id in self._agents:
            raise ValueError(f"flow {flow_id} already attached to {self.name}")
        self._agents[flow_id] = agent

    def agent_for(self, flow_id: int) -> Optional[Agent]:
        return self._agents.get(flow_id)

    @property
    def nic(self) -> "Link":
        """The host's single egress link; raises if it has 0 or many."""
        nic = self._nic
        if nic is not None:
            return nic
        if len(self.egress) != 1:
            raise ValueError(
                f"{self.name} has {len(self.egress)} egress links, expected 1"
            )
        nic = next(iter(self.egress.values()))
        self._nic = nic
        return nic

    def send(self, pkt: Packet) -> None:
        """Emit ``pkt`` on the NIC (single-homed hosts)."""
        nic = self._nic
        if nic is None:
            nic = self.nic
        nic.send(pkt)

    def receive(self, pkt: Packet) -> None:
        if pkt.dst != self.node_id:
            raise RuntimeError(
                f"{self.name} received packet for node {pkt.dst}; routing bug"
            )
        agent = self._agents.get(pkt.flow_id)
        if agent is None:
            raise RuntimeError(
                f"{self.name} has no agent for flow {pkt.flow_id}"
            )
        agent.receive_packet(pkt)


class Switch(Node):
    """Store-and-forward switch with static (possibly ECMP) routes.

    ``routes`` maps destination node id → tuple of next-hop node ids.
    """

    def __init__(self, sim: Simulator, node_id: int, name: str = "") -> None:
        super().__init__(sim, node_id, name)
        self.routes: dict[int, tuple[int, ...]] = {}

    def set_route(self, dst: int, next_hops: tuple[int, ...]) -> None:
        if not next_hops:
            raise ValueError("route needs at least one next hop")
        for hop in next_hops:
            if hop not in self.egress:
                raise ValueError(
                    f"{self.name} has no egress link to next hop {hop}"
                )
        self.routes[dst] = next_hops

    def receive(self, pkt: Packet) -> None:
        next_hops = self.routes.get(pkt.dst)
        if next_hops is None:
            raise RuntimeError(f"{self.name} has no route to node {pkt.dst}")
        if len(next_hops) == 1:
            hop = next_hops[0]
        else:
            hop = next_hops[_flow_hash(pkt.flow_id) % len(next_hops)]
        self.egress[hop].send(pkt)


def _flow_hash(flow_id: int) -> int:
    """Deterministic scramble so consecutive flow ids spread across paths."""
    x = (flow_id + 0x9E3779B9) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x85EBCA6B) & 0xFFFFFFFF
    x ^= x >> 13
    x = (x * 0xC2B2AE35) & 0xFFFFFFFF
    x ^= x >> 16
    return x
