"""Topology construction.

:class:`Network` is the container an experiment builds: it owns the
simulator's nodes and links and knows how to wire duplex cables and
compute routes.  The module also provides the four topologies the paper
evaluates on:

* :func:`build_star` — the many-to-one scenario of Sections II.B and
  IV.A/IV.B (N servers and a front-end behind one switch).
* :func:`build_two_level_tree` — the large-scale topology of Fig. 8(a)
  (edge switches × 42 servers behind a fabric switch).
* :func:`build_multi_hop` — the two-bottleneck topology of Fig. 11(a).
* :func:`build_fat_tree` — the k-ary fat-tree of Section IV.C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.link import Link
from repro.net.node import Host, Node, Switch
from repro.net.queues import DropTailQueue, EcnQueue
from repro.net.routing import build_routing_tables
from repro.sim.kernel import Simulator

__all__ = [
    "FatTree",
    "LeafSpine",
    "MultiHopTopology",
    "Network",
    "StarTopology",
    "TwoLevelTree",
    "build_fat_tree",
    "build_leaf_spine",
    "build_multi_hop",
    "build_star",
    "build_two_level_tree",
]

HOST_BUFFER_PKTS = None
"""Default host NIC egress buffer: ``None`` means "same as the switch
buffer of the cable", which is how NS2 sizes per-link drop-tail queues —
a sender dumping a whole inherited window can therefore lose packets at
its own access queue as well as at the shared bottleneck, exactly as in
the paper's simulations."""


class Network:
    """A set of nodes and links on one simulator."""

    def __init__(self, sim: Simulator, ecn_threshold_pkts: Optional[int] = None) -> None:
        self.sim = sim
        self.nodes: list[Node] = []
        self.links: list[Link] = []
        self._next_id = 0
        #: When set, every switch egress queue marks ECN at this threshold
        #: (needed by DCTCP/L2DCT runs; harmless for non-ECN-capable flows).
        self.ecn_threshold_pkts = ecn_threshold_pkts

    # ------------------------------------------------------------------
    def add_host(self, name: str = "") -> Host:
        host = Host(self.sim, self._next_id, name)
        self._next_id += 1
        self.nodes.append(host)
        return host

    def add_switch(self, name: str = "") -> Switch:
        switch = Switch(self.sim, self._next_id, name)
        self._next_id += 1
        self.nodes.append(switch)
        return switch

    def connect(
        self,
        a: Node,
        b: Node,
        bandwidth_bps: float,
        delay_s: float,
        buffer_pkts: Optional[int] = None,
        host_buffer_pkts: Optional[int] = HOST_BUFFER_PKTS,
    ) -> tuple[Link, Link]:
        """Wire a duplex cable: two independent unidirectional links.

        ``buffer_pkts`` sizes switch egress queues.  Host egress queues
        get ``host_buffer_pkts`` (defaulting to the same size).  Switch
        queues mark ECN when the network was built with
        ``ecn_threshold_pkts``; host queues never mark.
        """
        forward = self._make_link(a, b, bandwidth_bps, delay_s, buffer_pkts, host_buffer_pkts)
        reverse = self._make_link(b, a, bandwidth_bps, delay_s, buffer_pkts, host_buffer_pkts)
        return forward, reverse

    def _make_link(
        self,
        src: Node,
        dst: Node,
        bandwidth_bps: float,
        delay_s: float,
        buffer_pkts: Optional[int],
        host_buffer_pkts: Optional[int],
    ) -> Link:
        name = f"{src.name}->{dst.name}"
        capacity = buffer_pkts if buffer_pkts is not None else 100
        if isinstance(src, Switch):
            if self.ecn_threshold_pkts is not None:
                queue = EcnQueue(
                    capacity, min(self.ecn_threshold_pkts, capacity), name=name
                )
            else:
                queue = DropTailQueue(capacity, name=name)
        else:
            host_capacity = host_buffer_pkts if host_buffer_pkts is not None else capacity
            queue = DropTailQueue(host_capacity, name=name)
        link = Link(self.sim, src, dst, bandwidth_bps, delay_s, queue, name=name)
        src.attach_link(link)
        self.links.append(link)
        return link

    def finalize_routes(self) -> None:
        """Compute all switch routing tables.  Call after wiring."""
        build_routing_tables(self.nodes)

    def link_between(self, a: Node, b: Node) -> Link:
        """The egress link from ``a`` towards ``b``."""
        link = a.egress.get(b.node_id)
        if link is None:
            raise KeyError(f"no link {a.name} -> {b.name}")
        return link

    def total_dropped(self) -> int:
        """Sum of packets dropped at every queue in the network."""
        return sum(link.queue.stats.dropped for link in self.links)


# ----------------------------------------------------------------------
# Star (many-to-one) — Sections II.B, IV.A, IV.B
# ----------------------------------------------------------------------

@dataclass
class StarTopology:
    network: Network
    switch: Switch
    frontend: Host
    servers: list[Host]
    bottleneck: Link = field(init=False)

    def __post_init__(self) -> None:
        self.bottleneck = self.network.link_between(self.switch, self.frontend)


def build_star(
    sim: Simulator,
    n_servers: int,
    bandwidth_bps: float = 1e9,
    delay_s: float = 50e-6,
    buffer_pkts: int = 100,
    frontend_bandwidth_bps: Optional[float] = None,
    frontend_delay_s: Optional[float] = None,
    ecn_threshold_pkts: Optional[int] = None,
) -> StarTopology:
    """N servers and one front-end, all hanging off a single switch.

    The paper's default: 1 Gbps links with 50 µs one-way latency and a
    100-packet switch buffer; the switch→front-end port is the
    bottleneck for many-to-one traffic.
    """
    if n_servers < 1:
        raise ValueError("need at least one server")
    net = Network(sim, ecn_threshold_pkts=ecn_threshold_pkts)
    switch = net.add_switch("sw")
    frontend = net.add_host("frontend")
    net.connect(
        switch,
        frontend,
        frontend_bandwidth_bps or bandwidth_bps,
        frontend_delay_s if frontend_delay_s is not None else delay_s,
        buffer_pkts,
    )
    servers = []
    for i in range(n_servers):
        server = net.add_host(f"server{i}")
        net.connect(server, switch, bandwidth_bps, delay_s, buffer_pkts)
        servers.append(server)
    net.finalize_routes()
    return StarTopology(net, switch, frontend, servers)


# ----------------------------------------------------------------------
# Two-level tree — Fig. 8(a)
# ----------------------------------------------------------------------

@dataclass
class TwoLevelTree:
    network: Network
    fabric: Switch
    frontend: Host
    edge_switches: list[Switch]
    #: servers grouped by their edge switch
    server_groups: list[list[Host]]

    @property
    def servers(self) -> list[Host]:
        return [s for group in self.server_groups for s in group]


def build_two_level_tree(
    sim: Simulator,
    n_switches: int,
    servers_per_switch: int = 42,
    edge_bandwidth_bps: float = 1e9,
    edge_delay_s: float = 20e-6,
    frontend_bandwidth_bps: float = 10e9,
    frontend_delay_s: float = 10e-6,
    buffer_pkts: int = 100,
    fabric_buffer_pkts: Optional[int] = None,
    ecn_threshold_pkts: Optional[int] = None,
) -> TwoLevelTree:
    """Fig. 8(a): edge switches × servers behind a fabric switch.

    All links are 1 Gbps / 20 µs except the fabric→front-end cable
    (10 Gbps / 10 µs).
    """
    net = Network(sim, ecn_threshold_pkts=ecn_threshold_pkts)
    fabric = net.add_switch("fabric")
    frontend = net.add_host("frontend")
    net.connect(
        fabric,
        frontend,
        frontend_bandwidth_bps,
        frontend_delay_s,
        fabric_buffer_pkts if fabric_buffer_pkts is not None else buffer_pkts,
    )
    edge_switches: list[Switch] = []
    server_groups: list[list[Host]] = []
    for s in range(n_switches):
        edge = net.add_switch(f"edge{s}")
        net.connect(edge, fabric, edge_bandwidth_bps, edge_delay_s, buffer_pkts)
        group = []
        for i in range(servers_per_switch):
            server = net.add_host(f"s{s}h{i}")
            net.connect(server, edge, edge_bandwidth_bps, edge_delay_s, buffer_pkts)
            group.append(server)
        edge_switches.append(edge)
        server_groups.append(group)
    net.finalize_routes()
    return TwoLevelTree(net, fabric, frontend, edge_switches, server_groups)


# ----------------------------------------------------------------------
# Multi-hop, two-bottleneck — Fig. 11(a)
# ----------------------------------------------------------------------

@dataclass
class MultiHopTopology:
    network: Network
    switch1: Switch
    switch2: Switch
    frontend: Host
    group_a: list[Host]  # senders at switch1, cross both bottlenecks
    group_b: list[Host]  # senders at switch2, cross the second bottleneck
    group_c: list[Host]  # senders at switch1, cross the first bottleneck
    group_d: list[Host]  # receivers at switch2 for group C


def build_multi_hop(
    sim: Simulator,
    group_size: int = 10,
    host_bandwidth_bps: float = 1e9,
    host_delay_s: float = 20e-6,
    trunk_bandwidth_bps: float = 10e9,
    trunk_delay_s: float = 10e-6,
    buffer_pkts: int = 100,
    trunk_buffer_pkts: int = 250,
    ecn_threshold_pkts: Optional[int] = None,
) -> MultiHopTopology:
    """Fig. 11(a): groups A and C feed switch 1; the switch1→switch2 and
    switch2→front-end 10 Gbps trunks are both oversubscribed."""
    net = Network(sim, ecn_threshold_pkts=ecn_threshold_pkts)
    switch1 = net.add_switch("sw1")
    switch2 = net.add_switch("sw2")
    frontend = net.add_host("frontend")
    net.connect(switch1, switch2, trunk_bandwidth_bps, trunk_delay_s, trunk_buffer_pkts)
    net.connect(switch2, frontend, trunk_bandwidth_bps, trunk_delay_s, trunk_buffer_pkts)

    def hosts(prefix: str, switch: Switch) -> list[Host]:
        out = []
        for i in range(group_size):
            host = net.add_host(f"{prefix}{i}")
            net.connect(host, switch, host_bandwidth_bps, host_delay_s, buffer_pkts)
            out.append(host)
        return out

    group_a = hosts("a", switch1)
    group_c = hosts("c", switch1)
    group_b = hosts("b", switch2)
    group_d = hosts("d", switch2)
    net.finalize_routes()
    return MultiHopTopology(
        net, switch1, switch2, frontend, group_a, group_b, group_c, group_d
    )


# ----------------------------------------------------------------------
# Leaf-spine — the common two-tier Clos fabric
# ----------------------------------------------------------------------

@dataclass
class LeafSpine:
    network: Network
    leaves: list[Switch]
    spines: list[Switch]
    #: hosts grouped by their leaf switch
    host_groups: list[list[Host]]

    @property
    def hosts(self) -> list[Host]:
        return [h for group in self.host_groups for h in group]


def build_leaf_spine(
    sim: Simulator,
    n_leaves: int,
    n_spines: int,
    hosts_per_leaf: int,
    host_bandwidth_bps: float = 10e9,
    fabric_bandwidth_bps: float = 40e9,
    delay_s: float = 10e-6,
    buffer_pkts: int = 245,
    ecn_threshold_pkts: Optional[int] = None,
) -> LeafSpine:
    """A two-tier Clos: every leaf connects to every spine.

    Cross-leaf flows ECMP across all ``n_spines`` equal-cost paths by
    flow-id hash; intra-leaf traffic never leaves the leaf.  This is
    the ubiquitous modern DC fabric the fat-tree generalizes.
    """
    if n_leaves < 1 or n_spines < 1 or hosts_per_leaf < 1:
        raise ValueError("need at least one leaf, spine, and host per leaf")
    net = Network(sim, ecn_threshold_pkts=ecn_threshold_pkts)
    spines = [net.add_switch(f"spine{i}") for i in range(n_spines)]
    leaves: list[Switch] = []
    host_groups: list[list[Host]] = []
    for l in range(n_leaves):
        leaf = net.add_switch(f"leaf{l}")
        for spine in spines:
            net.connect(leaf, spine, fabric_bandwidth_bps, delay_s, buffer_pkts)
        group = []
        for h in range(hosts_per_leaf):
            host = net.add_host(f"l{l}h{h}")
            net.connect(host, leaf, host_bandwidth_bps, delay_s, buffer_pkts)
            group.append(host)
        leaves.append(leaf)
        host_groups.append(group)
    net.finalize_routes()
    return LeafSpine(net, leaves, spines, host_groups)


# ----------------------------------------------------------------------
# k-ary fat-tree — Section IV.C
# ----------------------------------------------------------------------

@dataclass
class FatTree:
    network: Network
    k: int
    core: list[Switch]
    aggregation: list[list[Switch]]  # per pod
    edge: list[list[Switch]]  # per pod
    hosts: list[Host]


def build_fat_tree(
    sim: Simulator,
    k: int,
    bandwidth_bps: float = 10e9,
    delay_s: float = 10e-6,
    buffer_pkts: int = 245,
    ecn_threshold_pkts: Optional[int] = None,
) -> FatTree:
    """Standard k-ary fat-tree: k pods, (k/2)² hosts per pod, (k/2)² cores.

    The paper uses 10 Gbps links and 350 KB buffers; 350 KB / 1460 B ≈
    245 packets, hence the default ``buffer_pkts``.  ECMP spreads flows
    across the equal-cost core paths by flow-id hash.
    """
    if k < 2 or k % 2:
        raise ValueError("fat-tree requires an even k >= 2")
    net = Network(sim, ecn_threshold_pkts=ecn_threshold_pkts)
    half = k // 2

    core = [net.add_switch(f"core{i}") for i in range(half * half)]
    aggregation: list[list[Switch]] = []
    edge: list[list[Switch]] = []
    hosts: list[Host] = []

    for pod in range(k):
        aggs = [net.add_switch(f"p{pod}a{i}") for i in range(half)]
        edges = [net.add_switch(f"p{pod}e{i}") for i in range(half)]
        aggregation.append(aggs)
        edge.append(edges)
        for agg in aggs:
            for edge_sw in edges:
                net.connect(agg, edge_sw, bandwidth_bps, delay_s, buffer_pkts)
        # Aggregation switch i connects to cores [i*half, (i+1)*half).
        for i, agg in enumerate(aggs):
            for j in range(half):
                net.connect(core[i * half + j], agg, bandwidth_bps, delay_s, buffer_pkts)
        for e, edge_sw in enumerate(edges):
            for h in range(half):
                host = net.add_host(f"p{pod}e{e}h{h}")
                net.connect(host, edge_sw, bandwidth_bps, delay_s, buffer_pkts)
                hosts.append(host)

    net.finalize_routes()
    return FatTree(net, k, core, aggregation, edge, hosts)
