"""Network substrate: packets, queues, links, nodes, routing, topologies.

This is the data-plane of the NS2 substitute.  A :class:`~repro.net.topology.Network`
owns hosts, switches, and unidirectional links; each link serializes
packets at its configured bandwidth through a drop-tail (optionally
ECN-marking) queue and delivers them after a propagation delay.
"""

from repro.net.link import Link, LinkStats
from repro.net.node import Host, Node, Switch
from repro.net.packet import ACK_BYTES, MSS_BYTES, Packet
from repro.net.queues import (
    DropTailQueue,
    EcnQueue,
    FairQueue,
    QueueStats,
    RedQueue,
)
from repro.net.routing import build_routing_tables
from repro.net.topology import (
    FatTree,
    LeafSpine,
    MultiHopTopology,
    Network,
    StarTopology,
    TwoLevelTree,
    build_fat_tree,
    build_leaf_spine,
    build_multi_hop,
    build_star,
    build_two_level_tree,
)

__all__ = [
    "ACK_BYTES",
    "DropTailQueue",
    "EcnQueue",
    "FairQueue",
    "FatTree",
    "Host",
    "LeafSpine",
    "Link",
    "LinkStats",
    "MSS_BYTES",
    "MultiHopTopology",
    "Network",
    "Node",
    "Packet",
    "QueueStats",
    "RedQueue",
    "StarTopology",
    "Switch",
    "TwoLevelTree",
    "build_fat_tree",
    "build_leaf_spine",
    "build_multi_hop",
    "build_routing_tables",
    "build_star",
    "build_two_level_tree",
]
