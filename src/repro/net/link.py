"""Unidirectional links.

A link serializes one packet at a time at ``bandwidth_bps``, then the
packet propagates for ``delay_s`` before arriving at the destination
node.  Arrivals while the transmitter is busy wait in the link's egress
queue (or are dropped by it).  A full-duplex cable is modelled as two
independent ``Link`` instances sharing nothing, exactly as in NS2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import LinkFaultState
    from repro.net.node import Node

__all__ = ["Link", "LinkStats"]


@dataclass(slots=True)
class LinkStats:
    """Lifetime counters for a link's transmitter."""

    tx_packets: int = 0
    tx_bytes: int = 0
    busy_time: float = 0.0


class Link:
    """One direction of a cable: ``src_node`` → ``dst_node``.

    Parameters
    ----------
    bandwidth_bps:
        Serialization rate in bits per second.
    delay_s:
        One-way propagation delay in seconds.
    queue:
        Egress queue holding packets while the transmitter is busy.
    """

    def __init__(
        self,
        sim: Simulator,
        src_node: "Node",
        dst_node: "Node",
        bandwidth_bps: float,
        delay_s: float,
        queue: DropTailQueue,
        name: str = "",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.src_node = src_node
        self.dst_node = dst_node
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.name = name or f"{src_node.name}->{dst_node.name}"
        self.queue = queue
        self.stats = LinkStats()
        self._busy = False
        #: carrier state: False while a LinkDown fault holds the link.
        self._up = True
        #: impairment windows/counters, attached by a FaultInjector;
        #: None (the common case) costs one identity check per delivery.
        self._faults: Optional["LinkFaultState"] = None
        #: seconds per byte, so ``tx_time`` is one multiply on the hot path.
        self._secs_per_byte = 8.0 / bandwidth_bps
        # Per-delivery observers.  ``on_deliver`` (a property) is the
        # legacy single-hook slot; ``add_observer`` is the supported way
        # to stack several monitors on one link.  ``_deliver_hooks`` is
        # the flattened call list — a tuple rebuilt on every change so
        # ``_arrive`` pays one attribute load when nobody listens.
        self._deliver_legacy: Optional[Callable[[Packet], None]] = None
        self._observers: list[Callable[[Packet], None]] = []
        self._deliver_hooks: tuple[Callable[[Packet], None], ...] = ()

    # ------------------------------------------------------------------
    @property
    def queue(self) -> DropTailQueue:
        """The egress queue.  Assignable (tests swap in RED/ECN queues,
        even mid-run); the setter refreshes the tick-elision flag,
        migrates any resident backlog into the new queue, and registers
        the new queue with the invariant monitor."""
        return self._queue

    @queue.setter
    def queue(self, queue: DropTailQueue) -> None:
        old = getattr(self, "_queue", None)
        ticks = type(queue).tick is not DropTailQueue.tick
        if old is not None and old is not queue and len(old) > 0:
            # Mid-run swap with waiting packets: drain the old queue into
            # the new one in FIFO order.  The new queue's admission policy
            # applies — overflow (or RED early action) is charged to the
            # new queue's stats, and both queues keep their conservation
            # balance (the old one counts the handoff as dequeues).
            if ticks:
                queue.tick(self.sim.now)
            while True:
                pkt = old.dequeue()
                if pkt is None:
                    break
                queue.enqueue(pkt)
        self._queue = queue
        #: skip the per-packet ``queue.tick`` call entirely for queues
        #: that inherit DropTailQueue's no-op (RED is the only
        #: time-driven queue; drop-tail and ECN marking are not).
        self._queue_ticks = ticks
        invariants = getattr(self.sim, "invariants", None)
        if invariants is not None:
            invariants.register_queue(queue, name=self.name)
        telemetry = getattr(self.sim, "telemetry", None)
        tap = (
            telemetry.queue_tap(self.sim, self.name)
            if telemetry is not None
            else None
        )
        #: flight-recorder tap; shared with the queue so its drop/mark/
        #: evict branches can report causes (None when tracing is off).
        self._tap = tap
        queue.tap = tap

    # ------------------------------------------------------------------
    # Delivery observers
    # ------------------------------------------------------------------
    @property
    def on_deliver(self) -> Optional[Callable[[Packet], None]]:
        """Legacy single per-delivery hook (runs before observers).

        Kept assignable for existing code, but new monitors should use
        :meth:`add_observer` — chaining by saving and restoring this
        attribute breaks as soon as hooks detach out of LIFO order
        (simlint's SIM009 flags the idiom).
        """
        return self._deliver_legacy

    @on_deliver.setter
    def on_deliver(self, hook: Optional[Callable[[Packet], None]]) -> None:
        self._deliver_legacy = hook
        self._rebuild_hooks()

    def add_observer(self, fn: Callable[[Packet], None]) -> None:
        """Append a per-delivery observer.  Observers run after the
        legacy ``on_deliver`` hook, in registration order."""
        self._observers.append(fn)
        self._rebuild_hooks()

    def remove_observer(self, fn: Callable[[Packet], None]) -> None:
        """Remove an observer registered with :meth:`add_observer`;
        unknown observers are ignored so teardown is idempotent and
        order-independent."""
        try:
            self._observers.remove(fn)
        except ValueError:
            return
        self._rebuild_hooks()

    def _rebuild_hooks(self) -> None:
        hooks: list[Callable[[Packet], None]] = []
        if self._deliver_legacy is not None:
            hooks.append(self._deliver_legacy)
        hooks.extend(self._observers)
        self._deliver_hooks = tuple(hooks)

    def send(self, pkt: Packet) -> None:
        """Entry point used by the owning node to emit ``pkt``."""
        queue = self._queue
        if self._queue_ticks:
            queue.tick(self.sim.now)
        if self._busy or not self._up:
            queue.enqueue(pkt)
            tap = self._tap
            if tap is not None:
                tap.sample(len(queue))
            return
        self._transmit(pkt)

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def up(self) -> bool:
        """Carrier state; False while a LinkDown fault is in force."""
        return self._up

    # ------------------------------------------------------------------
    # Fault-injection surface (driven by repro.faults.FaultInjector;
    # direct calls from experiment code trip simlint's SIM008).
    # ------------------------------------------------------------------
    def attach_fault_state(self, faults: "LinkFaultState") -> None:
        """Install the per-link impairment state the injector drives."""
        self._faults = faults

    def set_down(self) -> None:
        """Take the carrier down: arrivals keep queueing (up to the
        queue's capacity), the transmitter pauses after the in-service
        packet, and every delivery that lands while down is lost."""
        self._up = False

    def set_up(self) -> None:
        """Restore the carrier and resume draining the egress queue."""
        if self._up:
            return
        self._up = True
        if not self._busy:
            queue = self._queue
            if self._queue_ticks:
                queue.tick(self.sim.now)
            nxt = queue.dequeue()
            if nxt is not None:
                self._transmit(nxt)

    @property
    def backlog_pkts(self) -> int:
        """Packets waiting in the egress queue (excludes the one in service)."""
        return len(self.queue)

    def tx_time(self, pkt: Packet) -> float:
        """Serialization time of ``pkt`` on this link."""
        return pkt.size_bytes * self._secs_per_byte

    # ------------------------------------------------------------------
    def _transmit(self, pkt: Packet) -> None:
        self._busy = True
        size = pkt.size_bytes
        tx = size * self._secs_per_byte
        stats = self.stats
        stats.tx_packets += 1
        stats.tx_bytes += size
        stats.busy_time += tx
        # Transient scheduling: these events are never cancelled and no
        # handle is kept, so the kernel may pool the records.
        schedule = self.sim.schedule_transient
        schedule(tx, self._tx_done)
        schedule(tx + self.delay_s, self._deliver, pkt)

    def _tx_done(self) -> None:
        if not self._up:
            # Outage began while this packet serialized: park the
            # transmitter; set_up() restarts it from the queue.
            self._busy = False
            return
        queue = self._queue
        if self._queue_ticks:
            queue.tick(self.sim.now)
        nxt = queue.dequeue()
        if nxt is None:
            self._busy = False
        else:
            self._transmit(nxt)
            tap = self._tap
            if tap is not None:
                tap.sample(len(queue))

    def _deliver(self, pkt: Packet) -> None:
        if not self._up:
            # The carrier dropped while the packet propagated: it is
            # lost, exactly like a cable yanked mid-flight.
            faults = self._faults
            if faults is not None:
                faults.stats.down_drops += 1
            return
        faults = self._faults
        if faults is not None:
            extra = faults.filter_delivery(pkt, self.sim.now)
            if extra < 0.0:
                return  # injected loss/corruption; counted by the state
            if extra > 0.0:
                self.sim.schedule_transient(extra, self._arrive, pkt)
                return
        self._arrive(pkt)

    def _arrive(self, pkt: Packet) -> None:
        pkt.hops += 1
        for hook in self._deliver_hooks:
            hook(pkt)
        self.dst_node.receive(pkt)
