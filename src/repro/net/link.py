"""Unidirectional links.

A link serializes one packet at a time at ``bandwidth_bps``, then the
packet propagates for ``delay_s`` before arriving at the destination
node.  Arrivals while the transmitter is busy wait in the link's egress
queue (or are dropped by it).  A full-duplex cable is modelled as two
independent ``Link`` instances sharing nothing, exactly as in NS2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

__all__ = ["Link", "LinkStats"]


@dataclass
class LinkStats:
    """Lifetime counters for a link's transmitter."""

    tx_packets: int = 0
    tx_bytes: int = 0
    busy_time: float = 0.0


class Link:
    """One direction of a cable: ``src_node`` → ``dst_node``.

    Parameters
    ----------
    bandwidth_bps:
        Serialization rate in bits per second.
    delay_s:
        One-way propagation delay in seconds.
    queue:
        Egress queue holding packets while the transmitter is busy.
    """

    def __init__(
        self,
        sim: Simulator,
        src_node: "Node",
        dst_node: "Node",
        bandwidth_bps: float,
        delay_s: float,
        queue: DropTailQueue,
        name: str = "",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.src_node = src_node
        self.dst_node = dst_node
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue = queue
        self.name = name or f"{src_node.name}->{dst_node.name}"
        self.stats = LinkStats()
        self._busy = False
        invariants = getattr(sim, "invariants", None)
        if invariants is not None:
            invariants.register_queue(queue, name=self.name)
        # Optional per-delivery hook, e.g. goodput monitors:
        self.on_deliver: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> None:
        """Entry point used by the owning node to emit ``pkt``."""
        self.queue.tick(self.sim.now)
        if self._busy:
            self.queue.enqueue(pkt)
            return
        self._transmit(pkt)

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def backlog_pkts(self) -> int:
        """Packets waiting in the egress queue (excludes the one in service)."""
        return len(self.queue)

    def tx_time(self, pkt: Packet) -> float:
        """Serialization time of ``pkt`` on this link."""
        return pkt.size_bytes * 8.0 / self.bandwidth_bps

    # ------------------------------------------------------------------
    def _transmit(self, pkt: Packet) -> None:
        self._busy = True
        tx = self.tx_time(pkt)
        self.stats.tx_packets += 1
        self.stats.tx_bytes += pkt.size_bytes
        self.stats.busy_time += tx
        self.sim.schedule(tx, self._tx_done)
        self.sim.schedule(tx + self.delay_s, self._deliver, pkt)

    def _tx_done(self) -> None:
        self.queue.tick(self.sim.now)
        nxt = self.queue.dequeue()
        if nxt is None:
            self._busy = False
        else:
            self._transmit(nxt)

    def _deliver(self, pkt: Packet) -> None:
        pkt.hops += 1
        if self.on_deliver is not None:
            self.on_deliver(pkt)
        self.dst_node.receive(pkt)
