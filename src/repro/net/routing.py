"""Static shortest-path routing with equal-cost multipath.

Routes are computed once after the topology is built: for every
destination host, a breadth-first search over reversed links yields hop
counts, and each switch's next hops towards that destination are all
neighbours one hop closer.  Hosts need no table (they have one NIC).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.net.node import Host, Node, Switch

__all__ = ["build_routing_tables"]


def build_routing_tables(nodes: Iterable[Node]) -> None:
    """Populate every switch's route table for every host destination."""
    nodes = list(nodes)
    hosts = [n for n in nodes if isinstance(n, Host)]
    switches = [n for n in nodes if isinstance(n, Switch)]

    # Reverse adjacency: who has an egress link *to* this node?
    predecessors: dict[int, list[Node]] = {n.node_id: [] for n in nodes}
    by_id = {n.node_id: n for n in nodes}
    for node in nodes:
        for neighbour_id in node.egress:
            predecessors[neighbour_id].append(node)

    for dst in hosts:
        dist = _bfs_distances(dst, predecessors)
        for switch in switches:
            d = dist.get(switch.node_id)
            if d is None:
                continue  # destination unreachable from this switch
            next_hops = tuple(
                sorted(
                    neighbour_id
                    for neighbour_id in switch.egress
                    if dist.get(neighbour_id) == d - 1
                )
            )
            if next_hops:
                switch.set_route(dst.node_id, next_hops)
    _ = by_id  # kept for symmetry; ids resolve through egress maps


def _bfs_distances(
    dst: Node, predecessors: dict[int, list[Node]]
) -> dict[int, int]:
    """Hop counts to ``dst`` following links in their forwarding direction."""
    dist = {dst.node_id: 0}
    frontier: deque[Node] = deque([dst])
    while frontier:
        node = frontier.popleft()
        for pred in predecessors[node.node_id]:
            if pred.node_id not in dist:
                dist[pred.node_id] = dist[node.node_id] + 1
                frontier.append(pred)
    return dist
