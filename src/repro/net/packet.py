"""Packets.

Sequence numbers count *segments*, not bytes, mirroring NS2's
``Agent/TCP``: a data packet with ``seq = n`` is the (n+1)-th MSS-sized
segment of its flow.  ACKs carry the highest in-order segment received
(cumulative), plus echo fields used for RTT measurement and TCP-TRIM's
probe bookkeeping.
"""

from __future__ import annotations


MSS_BYTES = 1460
"""Data segment payload size used throughout the paper's experiments."""

ACK_BYTES = 40
"""Size of a pure ACK on the wire."""

DATA = "data"
ACK = "ack"

_INF = float("inf")  # hoisted: Packet.__init__ runs once per packet

__all__ = ["ACK", "ACK_BYTES", "DATA", "MSS_BYTES", "Packet"]


class Packet:
    """A simulated packet.

    Attributes
    ----------
    flow_id:
        Connection identifier; hosts demultiplex on it and ECMP hashes it.
    src, dst:
        Node ids of the originating and destination hosts; switches route
        on ``dst``.
    kind:
        ``"data"`` or ``"ack"``.
    seq:
        Data: this segment's number.  ACK: unused (see ``ack``).
    ack:
        ACK: highest in-order segment received (cumulative ACK).
    for_seq, ts_echo, echo_retx, echo_probe:
        ACK echo fields: the data segment that triggered this ACK, its
        send timestamp, and its retransmission/probe flags.  These give
        the sender per-segment RTT samples with Karn's rule for free.
    ecn_capable / ecn_ce / ece:
        ECN transport bits: ECT on data, CE set by marking queues, and
        the receiver's echo on ACKs (per-packet echo, as DCTCP requires).
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "kind",
        "seq",
        "ack",
        "size_bytes",
        "ts",
        "is_retransmission",
        "is_probe",
        "ecn_capable",
        "ecn_ce",
        "ece",
        "for_seq",
        "ts_echo",
        "echo_retx",
        "echo_probe",
        "sack_blocks",
        "rwnd",
        "hops",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        kind: str,
        seq: int = -1,
        ack: int = -1,
        size_bytes: int = MSS_BYTES,
        ts: float = 0.0,
        is_retransmission: bool = False,
        is_probe: bool = False,
        ecn_capable: bool = False,
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.kind = kind
        self.seq = seq
        self.ack = ack
        self.size_bytes = size_bytes
        self.ts = ts
        self.is_retransmission = is_retransmission
        self.is_probe = is_probe
        self.ecn_capable = ecn_capable
        self.ecn_ce = False
        self.ece = False
        self.for_seq: int = -1
        self.ts_echo: float = 0.0
        self.echo_retx = False
        self.echo_probe = False
        #: ACK: up to 3 ``(start, end_exclusive)`` segment ranges the
        #: receiver holds above the cumulative ACK (SACK option).
        self.sack_blocks: tuple = ()
        #: ACK: receiver's advertised window in segments (flow control).
        self.rwnd: float = _INF
        self.hops = 0

    @property
    def is_data(self) -> bool:
        return self.kind == DATA

    @property
    def is_ack(self) -> bool:
        return self.kind == ACK

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_data:
            flags = "".join(
                f for f, on in (("R", self.is_retransmission), ("P", self.is_probe),
                                ("C", self.ecn_ce)) if on
            )
            return f"Packet(flow={self.flow_id}, data seq={self.seq}{' ' + flags if flags else ''})"
        return f"Packet(flow={self.flow_id}, ack={self.ack} for={self.for_seq})"


def make_ack(
    data_pkt: Packet,
    ack: int,
    now: float,
    sack_blocks: tuple = (),
    rwnd: float = _INF,
) -> Packet:
    """Build the ACK a sink sends in response to ``data_pkt``."""
    pkt = Packet(
        flow_id=data_pkt.flow_id,
        src=data_pkt.dst,
        dst=data_pkt.src,
        kind=ACK,
        ack=ack,
        size_bytes=ACK_BYTES,
        ts=now,
    )
    pkt.for_seq = data_pkt.seq
    pkt.ts_echo = data_pkt.ts
    pkt.echo_retx = data_pkt.is_retransmission
    pkt.echo_probe = data_pkt.is_probe
    pkt.ece = data_pkt.ecn_ce
    pkt.sack_blocks = sack_blocks
    pkt.rwnd = rwnd
    return pkt
