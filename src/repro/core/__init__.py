"""The paper's contribution: TCP-TRIM and its analytical model.

* :class:`~repro.core.trim.TrimSource` — the TCP-TRIM sender
  (Algorithms 1 and 2).
* :mod:`~repro.core.kguide` — the K-threshold guideline, Eqs. (4)–(22).
* :class:`~repro.core.model.SteadyStateModel` — the round-based fluid
  model behind the guideline.
"""

from repro.core import kguide
from repro.core.kguide import k_threshold
from repro.core.model import SteadyStateModel, SteadyStateTrace
from repro.core.trim import TrimSource

__all__ = [
    "SteadyStateModel",
    "SteadyStateTrace",
    "TrimSource",
    "k_threshold",
    "kguide",
]
