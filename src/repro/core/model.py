"""Fluid model of TCP-TRIM's steady state (Section III.B).

A round-based iteration of the paper's Equations (5)–(10): N
synchronized long trains grow additively until the queue crosses the
target ``Q = C·(K − D)``, then each flow applies the Eq. (3) back-off
computed from its own Eq. (8) RTT.  The model is used to validate the K
guideline analytically (queue never drains to zero when K satisfies
Eq. 22) and to drive the ablation bench that sweeps K.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import kguide

__all__ = ["SteadyStateModel", "SteadyStateTrace"]


@dataclass
class SteadyStateTrace:
    """Round-by-round record of the fluid model."""

    rounds: list[int] = field(default_factory=list)
    queue_pkts: list[float] = field(default_factory=list)
    total_window: list[float] = field(default_factory=list)
    utilization_ok: bool = True

    @property
    def min_queue(self) -> float:
        return min(self.queue_pkts)

    @property
    def max_queue(self) -> float:
        return max(self.queue_pkts)


@dataclass
class SteadyStateModel:
    """N synchronized long trains through one bottleneck.

    Parameters mirror the analysis: ``capacity_pps`` (C), ``base_rtt``
    (D), ``n_flows`` (N), and the back-off threshold ``k``.
    """

    capacity_pps: float
    base_rtt: float
    n_flows: int
    k: float

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError("need at least one flow")
        if self.k < self.base_rtt:
            raise ValueError("K must be at least the base RTT")

    @property
    def pipe_pkts(self) -> float:
        """Packets the path holds with the queue at target: ``C·K``."""
        return self.capacity_pps * self.k

    def run(self, n_rounds: int = 50) -> SteadyStateTrace:
        """Iterate rounds of growth and synchronized back-off.

        Each round every flow adds one segment (Eq. 6).  While the total
        outstanding window is at most ``C·D`` the queue is empty; beyond
        that the excess sits in the buffer.  When the queue exceeds the
        target ``Q``, flow j sees RTT ``K + j/C`` (Eq. 8) and cuts by
        Eq. (3); the trace records the queue right after the cut —
        utilization holds iff it never reaches zero (Eq. 11).
        """
        if n_rounds < 1:
            raise ValueError("need at least one round")
        trace = SteadyStateTrace()
        pipe_capacity = self.capacity_pps * self.base_rtt  # C·D, in-flight limit
        q_target = kguide.desired_queue_pkts(self.capacity_pps, self.k, self.base_rtt)
        # Start each flow at its Eq. (5) steady share.
        per_flow = kguide.steady_window_pkts(self.capacity_pps, self.k, self.n_flows)
        windows = [per_flow] * self.n_flows

        for rnd in range(n_rounds):
            # Eq. (6): additive increase of one segment per flow per round.
            windows = [w + 1.0 for w in windows]
            queue = max(0.0, sum(windows) - pipe_capacity)
            if queue > q_target:
                # Synchronized back-off.  Flow j's packets sit behind
                # the standing queue plus the j flows ahead of it, so
                # RTT_j = D + (queue − N + j)/C — which at the paper's
                # Q_max reduces exactly to Eq. (8): K + j/C.
                for j in range(self.n_flows):
                    backlog = max(0.0, queue - self.n_flows + (j + 1))
                    rtt_j = self.base_rtt + backlog / self.capacity_pps
                    ep = kguide.congestion_level(rtt_j, self.k)
                    windows[j] = max(2.0, windows[j] * (1.0 - ep / 2.0))
                queue = max(0.0, sum(windows) - pipe_capacity)
            trace.rounds.append(rnd)
            trace.queue_pkts.append(queue)
            trace.total_window.append(sum(windows))
            if queue <= 0.0 and rnd > 0:
                trace.utilization_ok = False
        return trace
