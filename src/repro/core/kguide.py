"""The K-threshold guideline — Section III.B, Equations (4)–(22).

TCP-TRIM backs off when the measured RTT exceeds a threshold ``K``.
Too small a K starves the bottleneck (buffer underflow); too large a K
lets the queue grow.  The paper derives, for N synchronized long trains
through a bottleneck of capacity ``C`` packets/s with base (queue-free)
RTT ``D`` seconds:

* desired queue          ``Q = C·(K − D)``                       (Eq. 4)
* steady window per flow ``W = C·K / N``                          (Eq. 5)
* peak queue             ``Q_max = C·(K − D) + N``                (Eq. 7)
* per-flow congestion level at peak
                          ``ep_j = j / (C·K + j)``                (Eq. 9)
* total one-round decrement
      ``ΔW = ((C·K + N)/(2N)) · Σ_j j/(C·K + j)``                 (Eq. 10)
* 100%-utilization condition  ``Q_max − ΔW > 0``                  (Eq. 11)
* the closed-form bound   ``K ≥ max(((√(2CD) − 1)²)/C, D)``       (Eq. 22)

All functions below take ``capacity_pps`` (C) and times in seconds.
"""

from __future__ import annotations

import math

__all__ = [
    "congestion_level",
    "desired_queue_pkts",
    "f_bound",
    "f_max",
    "f_stationary_point",
    "k_threshold",
    "max_queue_pkts",
    "steady_window_pkts",
    "total_window_decrement",
    "utilization_holds",
]


def _check_cd(capacity_pps: float, base_rtt: float) -> None:
    if capacity_pps <= 0:
        raise ValueError("capacity must be positive")
    if base_rtt <= 0:
        raise ValueError("base RTT must be positive")


def k_threshold(capacity_pps: float, base_rtt: float) -> float:
    """Equation (22): the smallest safe RTT threshold K.

    ``K = max(((√(2·C·D) − 1)²)/C, D)`` — guarantees the switch queue
    never underflows for any number of synchronized flows, hence 100%
    bottleneck utilization.
    """
    _check_cd(capacity_pps, base_rtt)
    root = math.sqrt(2.0 * capacity_pps * base_rtt)
    if root <= 1.0:
        # Eq. 19 has no positive solution: F(N) is negative for all
        # N > 0, so any K >= D guarantees utilization.
        return base_rtt
    bound = (root - 1.0) ** 2 / capacity_pps
    return max(bound, base_rtt)


def desired_queue_pkts(capacity_pps: float, k: float, base_rtt: float) -> float:
    """Equation (4): target queue ``Q = C·(K − D)`` in packets."""
    _check_cd(capacity_pps, base_rtt)
    if k < base_rtt:
        raise ValueError("K must be at least the base RTT D")
    return capacity_pps * (k - base_rtt)


def steady_window_pkts(capacity_pps: float, k: float, n_flows: int) -> float:
    """Equation (5): per-flow window ``C·K/N`` at the queue target."""
    if n_flows < 1:
        raise ValueError("need at least one flow")
    return capacity_pps * k / n_flows


def max_queue_pkts(capacity_pps: float, k: float, base_rtt: float, n_flows: int) -> float:
    """Equation (7): peak queue ``Q_max = C·(K − D) + N``."""
    return desired_queue_pkts(capacity_pps, k, base_rtt) + n_flows


def congestion_level(rtt: float, k: float) -> float:
    """Equation (2): ``ep = (RTT − K)/RTT``; zero when RTT ≤ K."""
    if rtt <= 0:
        raise ValueError("RTT must be positive")
    if k < 0:
        raise ValueError("K cannot be negative")
    return max(0.0, (rtt - k) / rtt)


def total_window_decrement(capacity_pps: float, k: float, n_flows: int) -> float:
    """Equation (10): the exact sum of one round's window decrements.

    ``((C·K + N)/(2N)) · Σ_{j=1..N} j/(C·K + j)`` — computed exactly
    rather than with the paper's integral approximation (Eq. 13).
    """
    if n_flows < 1:
        raise ValueError("need at least one flow")
    ck = capacity_pps * k
    tail = sum(j / (ck + j) for j in range(1, n_flows + 1))
    return (ck + n_flows) / (2.0 * n_flows) * tail


def utilization_holds(
    capacity_pps: float, k: float, base_rtt: float, n_flows: int
) -> bool:
    """Equation (11)/(12): does the queue stay above zero after the
    synchronized back-off?  Uses the exact decrement sum."""
    q_max = max_queue_pkts(capacity_pps, k, base_rtt, n_flows)
    return q_max - total_window_decrement(capacity_pps, k, n_flows) > 0


def f_bound(n_flows: float, capacity_pps: float, base_rtt: float) -> float:
    """Equation (17): ``F(N) = 2·N·D/(N + 1) − N/C``.

    K must exceed ``F(N)`` for every N; :func:`f_max` is its supremum.
    """
    if n_flows <= 0:
        raise ValueError("N must be positive")
    _check_cd(capacity_pps, base_rtt)
    return 2.0 * n_flows * base_rtt / (n_flows + 1.0) - n_flows / capacity_pps


def f_stationary_point(capacity_pps: float, base_rtt: float) -> float:
    """Equation (19)'s positive root: ``N* = √(2·C·D) − 1``."""
    _check_cd(capacity_pps, base_rtt)
    return math.sqrt(2.0 * capacity_pps * base_rtt) - 1.0


def f_max(capacity_pps: float, base_rtt: float) -> float:
    """Equation (21): ``max_N F(N) = ((√(2·C·D) − 1)²)/C``."""
    _check_cd(capacity_pps, base_rtt)
    return (math.sqrt(2.0 * capacity_pps * base_rtt) - 1.0) ** 2 / capacity_pps
