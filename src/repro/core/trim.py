"""TCP-TRIM — the paper's contribution (Section III).

``TrimSource`` extends the Reno machinery of
:class:`repro.tcp.base.TcpSource` with the two mechanisms of the paper:

**Inter-train gap detection (Algorithm 1).**  Before transmitting a
never-sent segment, if the time since the last transmission exceeds the
smoothed RTT, the sender saves the accumulated window ``s_cwnd``, drops
``cwnd`` to 2, sends (up to) two *probe* segments, and suspends further
transmission.

**ACK action (Algorithm 2).**  Every ACK updates ``smooth_RTT``
(EWMA, α = 0.25), ``min_RTT``, and the threshold ``K`` (Eq. 22 with
``D = min_RTT``).  Then:

* a probe ACK arriving within one ``smooth_RTT`` contributes its RTT;
  when all probes are answered the window is re-inherited as
  ``cwnd = s_cwnd·(1 − (probe_RTT − min_RTT)/min_RTT)``          (Eq. 1)
  and transmission resumes.  If the deadline passes first,
  ``cwnd = 2`` and transmission resumes anyway;
* a normal ACK whose RTT is at least ``K`` computes
  ``ep = (RTT − K)/RTT``                                          (Eq. 2)
  and gently shrinks the window once per window of data:
  ``cwnd ← cwnd·(1 − ep/2)``                                      (Eq. 3).

Implementation notes from Section III.C are honoured: the minimum
window is 2; an Eq. (1) result that is tiny or negative clamps to 2;
trains of one or two packets still probe.

TCP-TRIM assumes per-packet ACKs (the receiver default here): delayed
ACKs stall the ACK clock for up to the delack timer, which Algorithm 1
cannot distinguish from an OFF period and answers with spurious probes.

Beyond the paper's text we make two choices explicit (see DESIGN.md):
the Eq. (3) decrease is applied at most once per window of data (the
paper's own steady-state model assumes one decrement per flow per
round), and ``C`` — needed by Eq. 22 — is the configured access
capacity in packets/s, a deployment parameter of the kernel patch.
When ``capacity_pps`` is not given, K falls back to
``FALLBACK_K_FACTOR × min_RTT``.
"""

from __future__ import annotations

from typing import Optional

from repro.core import kguide
from repro.net.node import Host
from repro.net.packet import Packet
from repro.sim.kernel import Event, Simulator
from repro.tcp.base import TcpConfig, TcpSource
from repro.tcp.rtt import EwmaRtt

__all__ = ["TrimSource"]


class TrimSource(TcpSource):
    """TCP-TRIM sender."""

    protocol_name = "trim"

    SMOOTH_ALPHA = 0.25  # the paper's α for smooth_RTT (Section IV)
    FALLBACK_K_FACTOR = 1.5  # K = factor · min_RTT when C is unknown

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        dst_id: int,
        config: Optional[TcpConfig] = None,
        name: str = "",
        capacity_pps: Optional[float] = None,
        base_rtt: Optional[float] = None,
        smooth_alpha: float = SMOOTH_ALPHA,
    ) -> None:
        super().__init__(sim, host, flow_id, dst_id, config=config, name=name)
        if base_rtt is not None and base_rtt <= 0:
            # Eq. (1) divides by min_RTT, which a configured base_rtt
            # seeds; zero or negative would poison every re-inheritance.
            raise ValueError(f"base_rtt must be positive, got {base_rtt!r}")
        if capacity_pps is not None and capacity_pps <= 0:
            raise ValueError(
                f"capacity_pps must be positive, got {capacity_pps!r}"
            )
        self.capacity_pps = capacity_pps
        self.base_rtt = base_rtt
        self.smooth_rtt = EwmaRtt(smooth_alpha)
        # A configured base_rtt seeds min_RTT with the true queue-free
        # value; measurements can only confirm it (they are never lower).
        self.min_rtt: Optional[float] = base_rtt
        self.k: Optional[float] = None
        if capacity_pps is not None and base_rtt is not None:
            # The paper's deployment: C and D are path constants, so K
            # is configured statically per Eq. 22 ("K is set according
            # to Equation (22)", Sec. IV).  A static K avoids the
            # delay-based latecomer problem: a flow joining a loaded
            # path can never measure the true queue-free D, and a K
            # derived from its inflated min_RTT would let it starve
            # incumbents.
            self.k = kguide.k_threshold(capacity_pps, base_rtt)
        # Probe state
        self.probing = False
        self.probes_completed = 0
        self.probes_timed_out = 0
        self._probe_seqs: set[int] = set()
        self._probe_rtts: list[float] = []
        self._saved_cwnd: float = 0.0
        self._probe_deadline: Optional[Event] = None
        # Eq. (3) once-per-window barrier
        self._decrease_barrier: int = -1
        self.delay_decreases = 0

    # ------------------------------------------------------------------
    # Algorithm 1: inter-train gap detection
    # ------------------------------------------------------------------
    def _before_send_new(self) -> bool:
        gap_threshold = self.smooth_rtt.value
        if (
            self.probing
            or gap_threshold is None
            or self.last_send_time is None
            or self.sim.now - self.last_send_time <= gap_threshold
        ):
            return True
        self._enter_probe_mode()
        return False

    def _enter_probe_mode(self) -> None:
        self._saved_cwnd = max(self.cwnd, self.config.min_cwnd)
        self.cwnd = self.config.min_cwnd  # 2, per Algorithm 1
        self.probing = True
        self.suspended = True
        self._probe_seqs.clear()
        self._probe_rtts.clear()
        n_probes = min(2, self.app_limit - self.t_seqno)
        for _ in range(n_probes):
            self._probe_seqs.add(self.t_seqno)
            self._send_segment(self.t_seqno, probe=True)
            self.t_seqno += 1
        # The paper gives each probe ACK "a smoothed RTT" to return.
        # Both probes leave back-to-back, so the deadline is re-armed
        # when a probe ACK arrives: the second ACK trails the first by a
        # serialization time and must not be condemned by it on an idle
        # path where smooth_RTT has converged to exactly one RTT —
        # while a loaded path, where no ACK returns in time at all,
        # still fails fast after one smooth_RTT.
        deadline = self.smooth_rtt.value
        # Probes are only sent after at least one ACK has seeded the
        # smoothed RTT, so the estimator always has a value here.
        assert deadline is not None
        self._probe_deadline = self.sim.schedule(deadline, self._on_probe_deadline)
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_probe(
                self.sim.now, self.flow_id, "enter",
                saved_cwnd=self._saved_cwnd, n_probes=n_probes,
            )

    def _on_probe_deadline(self) -> None:
        self._probe_deadline = None
        if self.probing:
            self.probes_timed_out += 1
            tel = self.sim.telemetry
            if tel is not None:
                tel.on_probe(self.sim.now, self.flow_id, "timeout")
            self._finish_probe(success=False)

    def _finish_probe(self, success: bool) -> None:
        self.probing = False
        self.suspended = False
        if self._probe_deadline is not None:
            self._probe_deadline.cancel()
            self._probe_deadline = None
        factor: Optional[float] = None
        # ``is not None`` rather than truthiness: a (pathological but
        # valid) measured min_RTT could be arbitrarily small, and the
        # construction-time check guarantees a seeded value is positive —
        # a falsy 0.0 must not silently demote a successful probe round.
        if success and self._probe_rtts and self.min_rtt is not None:
            self.probes_completed += 1
            probe_rtt = sum(self._probe_rtts) / len(self._probe_rtts)
            factor = 1.0 - (probe_rtt - self.min_rtt) / self.min_rtt  # Eq. (1)
            tuned = self._saved_cwnd * factor
            # Sec. III.C: tiny/negative results clamp to the minimum window;
            # the inherited window is never *larger* than what was saved.
            self.cwnd = min(self._saved_cwnd, max(self.config.min_cwnd, tuned))
            if factor < 1.0:
                # The probes observed queueing: continue in congestion
                # avoidance, the +1/RTT growth the Sec. III.B model
                # assumes.  (Slow-starting back to the saved window was
                # tried and oscillates under contention: each burst
                # inflates the RTT, retriggering gap detection.)
                self.ssthresh = max(self.cwnd, self.config.min_cwnd)
        else:
            self.cwnd = self.config.min_cwnd
            self.ssthresh = max(self.cwnd, self.config.min_cwnd)
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_probe(
                self.sim.now, self.flow_id, "inherit",
                success=success, factor=factor, cwnd=self.cwnd,
                saved_cwnd=self._saved_cwnd,
            )
            tel.on_cwnd(self.sim.now, self.flow_id, self.cwnd, self.ssthresh)
        self._probe_seqs.clear()
        self._probe_rtts.clear()
        # Restart the gap clock: the probe round trip itself must not
        # read as an OFF period, or the sender probe-locks — resume,
        # measure ti ≈ one RTT > smooth_RTT, probe again, forever,
        # shipping the whole train as probe pairs.
        self.last_send_time = self.sim.now
        self._try_send()

    # ------------------------------------------------------------------
    # Algorithm 2: ACK action
    # ------------------------------------------------------------------
    def _on_rtt_sample(self, rtt: float, pkt: Packet) -> None:
        self.smooth_rtt.update(rtt)
        if self.min_rtt is None or rtt < self.min_rtt:
            self.min_rtt = rtt
            self._update_k()

    def _update_k(self) -> None:
        if self.base_rtt is not None and self.capacity_pps is not None:
            return  # statically configured K (Eq. 22 with known C, D)
        assert self.min_rtt is not None
        if self.capacity_pps is not None:
            self.k = kguide.k_threshold(self.capacity_pps, self.min_rtt)
        else:
            self.k = self.FALLBACK_K_FACTOR * self.min_rtt

    def _on_ack_pre_increase(self, newly_acked: int, pkt: Packet) -> bool:
        if pkt.echo_probe and self.probing and pkt.for_seq in self._probe_seqs:
            self._probe_seqs.discard(pkt.for_seq)
            sample = None if pkt.echo_retx else self.sim.now - pkt.ts_echo
            if sample is not None:
                self._probe_rtts.append(sample)
            tel = self.sim.telemetry
            if tel is not None:
                tel.on_probe(self.sim.now, self.flow_id, "ack", rtt=sample)
            if not self._probe_seqs:
                self._finish_probe(success=True)
            elif self._probe_deadline is not None and self.smooth_rtt.value:
                # Re-arm the deadline for the remaining probe ACK(s).
                self._probe_deadline.cancel()
                self._probe_deadline = self.sim.schedule(
                    self.smooth_rtt.value, self._on_probe_deadline
                )
            return True  # probe ACKs never grow the window
        # Queuing-control phase (Algorithm 2, else branch).
        if pkt.echo_retx or self.k is None:
            return False
        rtt = self.sim.now - pkt.ts_echo
        if rtt >= self.k and pkt.ack >= self._decrease_barrier:
            ep = kguide.congestion_level(rtt, self.k)  # Eq. (2)
            self.cwnd = max(self.config.min_cwnd, self.cwnd * (1.0 - ep / 2.0))
            # A delay signal is a congestion signal: leave slow start so
            # subsequent growth is the model's +1 per RTT (Eq. 6).
            self.ssthresh = self.cwnd
            self._decrease_barrier = self.t_seqno  # once per window of data
            self.delay_decreases += 1
            return True
        return False

    def _after_timeout(self) -> None:
        # An RTO aborts any probe in progress: its state is stale.
        if self.probing:
            self._probe_seqs.clear()
            self._probe_rtts.clear()
            self.probing = False
        self.suspended = False
        if self._probe_deadline is not None:
            self._probe_deadline.cancel()
            self._probe_deadline = None
