"""Figure 10 — convergence and fairness of staggered long trains.

Five flows start 2 s apart and stop 2 s apart; the receiver link is the
single bottleneck.  The paper: TCP-TRIM converges quickly to the fair
share at every arrival/departure; TCP is fair only on average, with
large variation.  The quick preset compresses time and rate 10×.
"""

from benchmarks.paperbench import header, row, run_once
from repro.experiments.fairness import FairnessParams, run_fairness


def test_fig10_fairness(benchmark):
    def both():
        return {
            protocol: run_fairness(FairnessParams.quick(protocol))
            for protocol in ("reno", "trim")
        }

    results = run_once(benchmark, both)

    header("Fig. 10: all-flows-active plateau (shares in Mbps)")
    for protocol, result in results.items():
        shares = " ".join(f"{s / 1e6:6.1f}" for s in result.plateau_shares)
        row(f"{protocol:5s}  shares=[{shares}]  Jain={result.plateau_fairness:.4f}  "
            f"timeouts={result.timeouts}")

    trim = results["trim"]
    reno = results["reno"]
    assert trim.plateau_fairness > 0.99  # converges to fair share
    assert trim.plateau_fairness >= reno.plateau_fairness
    assert trim.timeouts == 0
    # The five TRIM flows together saturate the bottleneck.
    assert sum(trim.plateau_shares) > 0.9 * 1e8
