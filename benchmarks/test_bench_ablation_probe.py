"""Ablation — the probe mechanism versus its alternatives.

Four window-inheritance policies on the motivation scenario:

* ``reno``:  blind inheritance (the paper's problem statement);
* ``vegas``: delay-based congestion avoidance *without* probing (related
  work [21]) — shows delay sensitivity alone does not fix inheritance;
* ``gip``:   restart at 2 on every train (related work [13] — safe but
  conservative; the paper argues it underutilizes ample capacity);
* ``trim``:  probe-then-tune (the contribution).

TRIM should match GIP's safety (no timeouts) while finishing the long
trains no slower — the probe reclaims capacity GIP gives up.
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.experiments.motivation import MotivationParams, run_motivation

PROTOCOLS = ("reno", "vegas", "gip", "trim")


def test_ablation_probe_mechanism(benchmark):
    def sweep():
        return {
            p: run_motivation(MotivationParams.quick(p)) for p in PROTOCOLS
        }

    results = run_once(benchmark, sweep)

    header("Ablation: window-inheritance policy on the motivation scenario")
    for protocol, r in results.items():
        mean_lpt = sum(r.lpt_completion_times) / len(r.lpt_completion_times)
        row(f"{protocol:5s}  timeouts={r.total_timeouts:2d}  "
            f"drops={r.dropped_packets:5d}  mean LPT ct={mean_lpt * MS:7.1f} ms  "
            f"done@{r.all_done_time:6.3f} s")

    trim, gip, reno = results["trim"], results["gip"], results["reno"]
    vegas = results["vegas"]
    assert trim.total_timeouts == 0
    assert trim.total_timeouts <= gip.total_timeouts
    assert trim.all_done_time < reno.all_done_time
    assert trim.all_done_time <= gip.all_done_time * 1.05
    # Delay-based CC without the probe still drops on inheritance.
    assert vegas.dropped_packets > 0
    assert trim.all_done_time < vegas.all_done_time
