"""Figure 8 — large-scale HTTP concurrency on the two-level tree.

The paper sweeps 210–1050 servers (5–25 edge switches × 42 servers) and
reports the ACT of SPTs: TCP-TRIM reduces TCP's ACT by up to 80%, and
still ≥50% past 840 servers.  The quick preset shrinks the fan-in
(12 servers/switch, 10× slower links) while keeping the structure; run
``python -m repro.experiments fig8 --preset paper`` for full scale.
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.experiments.large_scale import LargeScaleParams, run_large_scale_sweep


def test_fig08_large_scale(benchmark):
    def sweep():
        out = {}
        for protocol in ("reno", "trim"):
            for distribution in ("uniform", "exponential"):
                params = LargeScaleParams.quick(
                    protocol, repeats=2, distribution=distribution
                )
                out[(protocol, distribution)] = run_large_scale_sweep(params)
        return out

    results = run_once(benchmark, sweep)

    reductions = []
    for distribution in ("uniform", "exponential"):
        header(f"Fig. 8(b): ACT of SPTs at scale — TCP vs TCP-TRIM "
               f"({distribution} arrivals)")
        pairs = zip(
            results[("reno", distribution)], results[("trim", distribution)]
        )
        for reno, trim in pairs:
            reduction = 1.0 - trim.act / reno.act
            reductions.append(reduction)
            row(f"servers={reno.n_servers:5d}  TCP={reno.act * MS:8.2f} ms "
                f"(to={reno.timeouts})  TRIM={trim.act * MS:8.2f} ms "
                f"(to={trim.timeouts})  reduction={reduction:6.1%}")

    # Shape: TRIM always wins, with a large reduction somewhere in the
    # sweep (paper: up to 80%, >=50% at the high end), under both
    # arrival distributions.
    assert all(r > 0.1 for r in reductions)
    assert max(reductions) > 0.4
    for distribution in ("uniform", "exponential"):
        assert all(t.timeouts == 0 for t in results[("trim", distribution)])
