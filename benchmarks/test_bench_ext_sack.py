"""Extension — does SACK on the baseline close the gap to TCP-TRIM?

The paper's testbed CUBIC runs on a Linux stack with SACK.  This bench
re-runs the Fig. 13(b)–(e) web-service scenario with SACK enabled on
the CUBIC baseline, against TCP-TRIM: better loss recovery trims the
extreme RTO tail but cannot prevent the drops themselves, so TRIM's
completion-time distribution still dominates — loss *avoidance* beats
loss *repair* for tail latency.
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.experiments.testbed import WebServiceParams, run_web_service
from repro.tcp.factory import default_config


def test_ext_sack_on_baseline(benchmark):
    def sweep():
        out = {}
        out["cubic"] = run_web_service(WebServiceParams.quick("cubic"))
        sack_params = WebServiceParams.quick("cubic")
        # Same scenario, SACK-enabled baseline.
        original_min_rto = sack_params.min_rto
        result = _run_with_sack(sack_params, original_min_rto)
        out["cubic+sack"] = result
        out["trim"] = run_web_service(WebServiceParams.quick("trim"))
        return out

    results = run_once(benchmark, sweep)

    header("Extension: SACK on the web-service baseline vs TCP-TRIM")
    for name, r in results.items():
        row(f"{name:11s}  ARCT={r.arct * MS:7.2f} ms  p99={r.p99 * MS:7.2f} ms  "
            f"64-256KB max={r.band_max * MS:7.2f} ms  "
            f"<25ms={r.fraction_under_threshold:6.1%}  timeouts={r.timeouts}")

    cubic = results["cubic"]
    sack = results["cubic+sack"]
    trim = results["trim"]
    # SACK repairs faster: the baseline's ARCT improves or holds...
    assert sack.arct <= cubic.arct * 1.1
    # ...but TRIM still dominates mean and tail: it avoided the losses.
    assert trim.arct < sack.arct
    assert trim.p99 < sack.p99
    assert trim.timeouts == 0


def _run_with_sack(params, min_rto):
    """run_web_service with a SACK-enabled config for the protocol."""
    import repro.experiments.testbed as testbed

    original = testbed.default_config

    def sack_config(protocol, **overrides):
        overrides.setdefault("sack", True)
        return original(protocol, **overrides)

    testbed.default_config = sack_config
    try:
        return testbed.run_web_service(params)
    finally:
        testbed.default_config = original
