"""Figure 1 — packet-train structure of one server's HTTP traffic.

The paper plots the packet-sequence staircase of a selected web server:
short trains burst intermittently while long trains stream.  We
regenerate the trace from the Fig. 2 samplers and report the SPT/LPT
composition the figure narrates (SPTs carry a few to dozens of packets,
LPTs about a hundred or more).
"""

from benchmarks.paperbench import header, row, run_once
from repro.experiments.workload_figs import characterize_workload


def test_fig01_packet_trains(benchmark):
    wl = run_once(benchmark, lambda: characterize_workload(seed=1, duration=10.0))

    trains = wl.trains
    spts = [t for t in trains if not t.is_long]
    lpts = [t for t in trains if t.is_long]
    header("Fig. 1: packet trains of one web server (10 s of traffic)")
    row(f"trains: {len(trains)} total, {len(spts)} SPT, {len(lpts)} LPT")
    spt_packets = sorted(t.n_packets for t in spts)
    row(f"SPT packets: min={spt_packets[0]}, median={spt_packets[len(spt_packets) // 2]}, "
        f"max={spt_packets[-1]}  (paper: a few to dozens)")
    lpt_packets = sorted(t.n_packets for t in lpts)
    row(f"LPT packets: min={lpt_packets[0]}, max={lpt_packets[-1]}  "
        f"(paper: ~one hundred or more)")

    # Shape assertions: SPTs are small bursts, LPTs carry ~90+ packets.
    assert spt_packets[len(spt_packets) // 2] <= 50
    assert lpt_packets[0] >= 88  # 128 KB / 1460 B
    assert len(lpts) < len(spts)
