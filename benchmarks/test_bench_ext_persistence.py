"""Extension — the persistence tension the paper's introduction poses.

Non-persistent HTTP pays a handshake round trip and a cold congestion
window on every request (why persistence exists); persistent
connections amortize both but *inherit* stale windows across OFF
periods (the paper's problem); TCP-TRIM keeps persistence and fixes the
inheritance.  One bench, three policies, same contended workload.
"""

import numpy as np

from benchmarks.paperbench import MS, header, row, run_once
from repro.experiments.scenarios import packets_per_second, warm_config
from repro.http.apps import HttpSession, LongTrainSender
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig, TcpSink
from repro.tcp.factory import create_source, default_config

N_REQUESTS = 60
GAP_MEAN = 4e-3


def run_policy(protocol: str, persistent: bool, seed: int = 2):
    sim = Simulator()
    star = build_star(sim, 2, delay_s=200e-6)
    rng = np.random.default_rng(seed)

    bg_kwargs = {}
    if protocol == "trim":
        bg_kwargs["capacity_pps"] = packets_per_second(1e9)
    bg = create_source(
        protocol, sim, star.servers[1], star.frontend.node_id,
        flow_id=9,
        config=warm_config(default_config(protocol, min_rto=0.2, initial_rto=0.2)),
        **bg_kwargs,
    )
    TcpSink(sim, star.frontend, flow_id=9)
    LongTrainSender(sim, bg, 0.0).start()

    session = HttpSession(
        sim, star.frontend, star.servers[0], protocol,
        request_flow_id=100, response_flow_id=200,
        config=default_config(protocol, min_rto=0.2, initial_rto=0.2),
        persistent=persistent,
        **bg_kwargs,
    )

    def issue(_exchange=None):
        if len(session.exchanges) >= N_REQUESTS:
            return
        size = int(rng.uniform(20_000, 200_000))
        sim.schedule(
            float(rng.exponential(GAP_MEAN)),
            lambda: session.request(size, on_complete=issue),
        )

    issue()
    sim.run(until=20.0)
    times = session.completion_times()
    return {
        "mean": float(np.mean(times)),
        "p99": float(np.percentile(times, 99)),
        "done": len(times),
    }


def test_ext_persistence_tension(benchmark):
    def sweep():
        return {
            "reno non-persistent": run_policy("reno", persistent=False),
            "reno persistent": run_policy("reno", persistent=True),
            "trim persistent": run_policy("trim", persistent=True),
        }

    results = run_once(benchmark, sweep)

    header("Extension: the persistence tension (contended 1 Gbps star)")
    for name, r in results.items():
        row(f"{name:22s}  mean={r['mean'] * MS:7.2f} ms  "
            f"p99={r['p99'] * MS:8.2f} ms  done={r['done']}")

    nonp = results["reno non-persistent"]
    pers = results["reno persistent"]
    trim = results["trim persistent"]
    assert all(r["done"] == N_REQUESTS for r in results.values())
    # Persistence beats per-request handshakes on the mean...
    assert pers["mean"] < nonp["mean"]
    # ...but its inherited windows create an RTO tail that TRIM removes.
    assert trim["p99"] < pers["p99"]
    assert trim["p99"] < nonp["p99"]
