"""Figure 2 — CDFs of packet-train size and inter-train gap.

Validates that the synthetic workload reproduces the published anchor
points: train sizes 0.5–256 KB with ≲20% under 4 KB and ~90% under
128 KB; inter-train gaps from hundreds of microseconds to several
milliseconds.
"""

import numpy as np

from benchmarks.paperbench import header, row, run_once
from repro.http.workload import gap_sampler, pt_size_sampler


def test_fig02_workload_cdfs(benchmark):
    def sample():
        rng = np.random.default_rng(2)
        sizes = pt_size_sampler().sample(rng, 50_000)
        gaps = gap_sampler().sample(rng, 50_000)
        return sizes, gaps

    sizes, gaps = run_once(benchmark, sample)

    header("Fig. 2(a): CDF of packet-train size")
    for kb in (0.5, 4, 16, 64, 128, 256):
        frac = float(np.mean(sizes <= kb * 1024))
        row(f"P[size <= {kb:5.1f} KB] = {frac:.3f}")
    header("Fig. 2(b): CDF of inter-train gap")
    for us in (200, 500, 1000, 2000, 5000):
        frac = float(np.mean(gaps <= us * 1e-6))
        row(f"P[gap <= {us:4d} us] = {frac:.3f}")

    assert abs(float(np.mean(sizes <= 4096)) - 0.20) < 0.02
    assert abs(float(np.mean(sizes <= 131072)) - 0.90) < 0.02
    assert sizes.min() >= 512 and sizes.max() <= 262144
    assert gaps.min() >= 2e-4 - 1e-9 and gaps.max() <= 5e-3 + 1e-9
