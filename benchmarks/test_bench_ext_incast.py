"""Extension — the incast goodput-collapse curve (related work [13]).

N synchronized 64 KB blocks into one front-end behind a 64-packet
buffer.  Loss-based TCP's batch goodput collapses once the fan-in's
synchronized tails exceed what the buffer absorbs (whole flows park on
200 ms RTOs); TCP-TRIM's delay back-off keeps headroom and defers the
collapse to the point where N × min_cwnd alone overruns the pipe.
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.experiments.incast import IncastParams, run_incast_sweep


def test_ext_incast_collapse(benchmark):
    def sweep():
        return {
            protocol: run_incast_sweep(IncastParams.quick(protocol))
            for protocol in ("reno", "trim")
        }

    results = run_once(benchmark, sweep)

    header("Extension: incast goodput vs fan-in (64 KB blocks, 64-pkt buffer)")
    for reno, trim in zip(results["reno"], results["trim"]):
        row(f"n={reno.n_senders:3d}  "
            f"TCP={reno.goodput_bps / 1e6:7.1f} Mbps (to={reno.timeouts:3d})  "
            f"TRIM={trim.goodput_bps / 1e6:7.1f} Mbps (to={trim.timeouts:3d})")

    reno_by_n = {c.n_senders: c for c in results["reno"]}
    trim_by_n = {c.n_senders: c for c in results["trim"]}
    # TCP has collapsed by fan-in 8 (goodput well under 10% of line rate).
    assert reno_by_n[8].goodput_bps < 0.1 * 1e9
    assert reno_by_n[8].timeouts > 0
    # TRIM still delivers most of the line rate at fan-ins 8 and 24.
    assert trim_by_n[8].goodput_bps > 0.5 * 1e9
    assert trim_by_n[24].goodput_bps > 0.5 * 1e9
    assert trim_by_n[24].timeouts == 0
    # Every block eventually completes for both protocols.
    for cases in results.values():
        assert all(c.completed == c.n_senders for c in cases)
