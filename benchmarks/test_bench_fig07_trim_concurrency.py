"""Figure 7 — TCP-TRIM under concurrent HTTP connections (2 LPTs).

The paper: TRIM's SPT ACT is a few milliseconds in every case, while
TCP's is up to two orders of magnitude higher (except the single-SPT
case); TRIM's delay-based back-off keeps buffer headroom to absorb the
burst, avoiding loss and RTOs.
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.experiments.concurrency import ConcurrencyParams, run_concurrency_sweep


def test_fig07_trim_concurrency(benchmark):
    def sweep():
        out = {}
        for protocol in ("reno", "trim"):
            params = ConcurrencyParams.quick(protocol, n_lpts=2, deadline=3.0)
            out[protocol] = run_concurrency_sweep(params)
        return out

    results = run_once(benchmark, sweep)

    header("Fig. 7: ACT of SPTs with 2 LPTs — TCP vs TCP-TRIM")
    for n_idx in range(len(results["reno"])):
        reno = results["reno"][n_idx]
        trim = results["trim"][n_idx]
        ratio = reno.act / trim.act
        row(f"n_spt={reno.n_spts:3d}  TCP={reno.act * MS:9.2f} ms  "
            f"TRIM={trim.act * MS:6.2f} ms  ratio={ratio:6.1f}x")

    for trim_case in results["trim"]:
        assert trim_case.act < 0.01  # a few milliseconds
        assert trim_case.spt_timeouts == 0
        assert trim_case.dropped_packets == 0
    # Two orders of magnitude at high concurrency.
    assert results["reno"][-1].act / results["trim"][-1].act > 20
