"""Ablation — sensitivity to the smooth-RTT gain α (paper uses 0.25).

α controls both the inter-train gap threshold and the probe deadline.
On a path with varying RTT (a loss-based background transfer shares the
bottleneck), a sluggish α under-tracks the saw-tooth: smooth_RTT goes
stale, probes are condemned by out-of-date deadlines, and the stream
slows.  The paper's 0.25 sits in the flat, safe region.
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.core.trim import TrimSource
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig, TcpSink

ALPHAS = (0.1, 0.25, 0.5, 0.9)
CAPACITY = 1e9 / (8 * 1460)


def test_ablation_smooth_alpha(benchmark):
    from repro.experiments.ablation import run_alpha_sweep

    results = run_once(
        benchmark,
        lambda: {c.alpha: c for c in run_alpha_sweep(alphas=ALPHAS)},
    )

    header("Ablation: smooth-RTT gain α (contended 20-train ON/OFF stream)")
    for alpha, c in results.items():
        row(f"alpha={alpha:4.2f}  probes={c.probes_completed:3d}  "
            f"probe_deadline_misses={c.probe_deadline_misses:3d}  "
            f"rto={c.timeouts:2d}  stream done@{c.stream_finish_time * MS:7.1f} ms")

    # Every α delivers the full stream; the paper's 0.25 sits in the
    # flat region, while the sluggish extreme goes stale and slows.
    for c in results.values():
        assert c.delivered_segments == 20 * 40
    paper = results[0.25]
    assert paper.probe_deadline_misses <= 2
    assert paper.stream_finish_time <= results[0.9].stream_finish_time * 1.05
    assert results[0.1].probe_deadline_misses > 5 * (paper.probe_deadline_misses + 1)
    assert results[0.1].stream_finish_time > paper.stream_finish_time
