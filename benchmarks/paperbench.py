"""Shared helpers for the figure/table benchmarks."""

from __future__ import annotations

MS = 1e3
MBPS = 1e-6


def header(title: str) -> None:
    print(f"\n=== {title} ===")


def row(text: str) -> None:
    print(f"  {text}")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
