"""Figure 5 — TCP's concurrency impairment.

ACT, and min/max completion times, of synchronized 10-packet SPTs
bursting into a bottleneck occupied by 0/1/2 long trains (RTO 200 ms).
The paper: ACT rises with the LPT count and becomes "unacceptably high"
with 2 LPTs; the worst SPT suffers two timeouts beyond 6 SPTs.
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.experiments.concurrency import ConcurrencyParams, run_concurrency_sweep


def test_fig05_tcp_concurrency(benchmark):
    def sweep():
        results = {}
        for n_lpts in (0, 1, 2):
            params = ConcurrencyParams.quick("reno", n_lpts=n_lpts, deadline=3.0)
            results[n_lpts] = run_concurrency_sweep(params)
        return results

    results = run_once(benchmark, sweep)

    header("Fig. 5(a): ACT of concurrent SPTs under TCP Reno")
    for n_lpts, cases in results.items():
        for case in cases:
            row(f"lpts={n_lpts}  n_spt={case.n_spts:3d}  "
                f"ACT={case.act * MS:9.2f} ms  min={case.min_ct * MS:7.2f}  "
                f"max={case.max_ct * MS:9.2f}  spt_timeouts={case.spt_timeouts}")

    def act_at_max_spts(n_lpts):
        return results[n_lpts][-1].act

    # Shape: more LPTs => dramatically worse SPT completion.
    assert act_at_max_spts(2) > act_at_max_spts(0) * 5
    # With 2 LPTs and many SPTs, RTOs dominate (hundreds of ms).
    assert act_at_max_spts(2) > 0.05
    assert results[2][-1].spt_timeouts > 0
